//! End-to-end acceptance test of the serving subsystem: a server on an
//! ephemeral TCP port serves ≥ 64 requests from ≥ 4 concurrent TCP clients
//! with zero dropped responses, and every reply's logits are bit-identical
//! to the single-threaded offline `SnnNetwork::simulate_with` path.
//!
//! The served model is a *trained* converted SNN (tiny MNIST-like MLP →
//! TTAS(5) + weight scaling under 50 % deletion — the paper's proposed
//! configuration), registered through the on-disk binary (`NRSM`) model
//! file path a deployment would use, and driven by a mix of JSON and
//! binary-framing TCP clients on the same port.

use std::sync::Arc;
use std::time::Duration;

use nrsnn::prelude::*;
use nrsnn_runtime::derive_seed;
use nrsnn_serve::{ModelRegistry, ModelSpec, NoiseSpec, Server, ServerConfig, TcpClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "mnist-ttas5-ws";
const MASTER_SEED: u64 = 424_242;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 16; // 4 x 16 = 64 total

struct Fixture {
    network: SnnNetwork,
    cfg: CodingConfig,
    inputs: Vec<Vec<f32>>,
}

fn fixture() -> Fixture {
    let pipeline_config = PipelineConfig {
        dataset: DatasetSpec::mnist_like().with_samples(96, 48),
        model: ModelKind::Mlp,
        dropout: 0.1,
        epochs: 5,
        batch_size: 16,
        learning_rate: 2e-3,
        percentile: 99.9,
        seed: 13,
    };
    let pipeline = TrainedPipeline::build(&pipeline_config).expect("train pipeline");
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("scaling");
    let network = pipeline.to_snn(&scaling).expect("convert");
    let cfg = pipeline.coding_config(CodingKind::Ttas(5), 64);
    let rows = pipeline.dataset().test.inputs.dims()[0];
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let inputs = (0..total)
        .map(|i| {
            pipeline
                .dataset()
                .test
                .inputs
                .row_slice(i % rows)
                .expect("row")
                .to_vec()
        })
        .collect();
    Fixture {
        network,
        cfg,
        inputs,
    }
}

/// Offline single-threaded reference for request `seed`.
fn offline_reference(f: &Fixture, input: &[f32], seed: u64) -> (usize, Vec<u32>) {
    let coding = CodingKind::Ttas(5).build();
    let noise = DeletionNoise::new(0.5).expect("noise");
    let mut ws = SimWorkspace::new();
    let mut rng = StdRng::seed_from_u64(derive_seed(MASTER_SEED, seed));
    let outcome = f
        .network
        .simulate_with(input, coding.as_ref(), &f.cfg, &noise, &mut rng, &mut ws)
        .expect("simulate");
    (
        outcome.predicted,
        ws.logits().iter().map(|l| l.to_bits()).collect(),
    )
}

#[test]
fn tcp_server_serves_64_concurrent_requests_bit_identically() {
    let f = Arc::new(fixture());

    let spec = ModelSpec::from_network(
        MODEL,
        &f.network,
        CodingKind::Ttas(5),
        &f.cfg,
        NoiseSpec::Deletion(0.5),
        2.0,
        MASTER_SEED,
    );
    // Register through the on-disk **binary** model path (write → sniff →
    // decode → build), and check it agrees with the JSON path bit-for-bit
    // at the spec level.
    let binary_bytes = spec.to_binary().expect("encode binary model");
    let reloaded = ModelSpec::from_binary(&binary_bytes).expect("decode binary model");
    assert_eq!(
        reloaded.to_json(),
        spec.to_json(),
        "binary model round-trip"
    );
    let model_path = std::env::temp_dir().join("nrsnn_serve_e2e_model.nrsm");
    std::fs::write(&model_path, &binary_bytes).expect("write model file");
    let mut registry = ModelRegistry::new();
    registry.load_file(&model_path).expect("load model");
    std::fs::remove_file(&model_path).ok();

    let mut server = Server::start(
        registry,
        ServerConfig {
            workers: 0, // auto: honours NRSNN_THREADS like the sweep engine
            max_batch: 8,
            batch_window: Duration::from_micros(200),
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server
        .serve_tcp(("127.0.0.1", 0))
        .expect("bind ephemeral port");
    assert_ne!(addr.port(), 0);

    // >= 4 concurrent TCP clients, each issuing its share of the >= 64
    // requests over one connection.  Half speak JSON, half speak the binary
    // framing: the formats negotiate per connection and must interleave.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client_index| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let mut client = if client_index % 2 == 0 {
                    TcpClient::connect(addr).expect("connect")
                } else {
                    TcpClient::connect_binary(addr).expect("connect binary")
                };
                client.ping().expect("ping");
                (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        let index = client_index * REQUESTS_PER_CLIENT + r;
                        let reply = client
                            .infer_retrying(MODEL, &f.inputs[index], index as u64)
                            .expect("infer");
                        (index, reply)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut total_replies = 0usize;
    for client in clients {
        for (index, reply) in client.join().expect("client thread") {
            total_replies += 1;
            assert_eq!(reply.model, MODEL);
            let (expected_predicted, expected_bits) =
                offline_reference(&f, &f.inputs[index], index as u64);
            assert_eq!(reply.predicted, expected_predicted, "request {index}");
            let bits: Vec<u32> = reply.logits.iter().map(|l| l.to_bits()).collect();
            assert_eq!(
                bits, expected_bits,
                "request {index}: served logits diverged from offline simulate_with"
            );
            assert!(
                reply.total_spikes > 0,
                "request {index} transmitted no spikes"
            );
        }
    }
    // Zero dropped responses: every request came back.
    assert_eq!(total_replies, CLIENTS * REQUESTS_PER_CLIENT);

    // The server agrees nothing was dropped and exposes its metrics.
    let mut probe = TcpClient::connect(addr).expect("connect probe");
    assert_eq!(probe.models().expect("models"), vec![MODEL.to_string()]);
    let stats = probe.stats().expect("stats");
    assert_eq!(
        stats.requests_served,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.requests_received,
        stats.requests_served + stats.rejected_busy
    );
    assert!(stats.batches > 0 && stats.batches <= stats.requests_served);
    assert!(stats.mean_batch_size >= 1.0);
    assert!(stats.p99_latency_us >= stats.p50_latency_us);
    assert!(stats.spikes_per_inference > 0.0);
    let histogram_total: u64 = stats.batch_size_histogram.iter().sum();
    assert_eq!(histogram_total, stats.batches);

    server.shutdown();

    // After graceful shutdown the port no longer accepts service.
    assert!(
        TcpClient::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "server should be gone after shutdown"
    );
}
