//! Cross-crate integration tests: the full train → convert → corrupt →
//! simulate pipeline, exercised end to end at a miniature scale.

use nrsnn::prelude::*;
use nrsnn_data::DatasetSpec;
use nrsnn_noise::paper_table_deletion_points;

fn tiny_pipeline(seed: u64) -> TrainedPipeline {
    let config = PipelineConfig {
        dataset: DatasetSpec::mnist_like().with_samples(100, 40),
        model: ModelKind::Mlp,
        dropout: 0.15,
        epochs: 8,
        batch_size: 20,
        learning_rate: 2e-3,
        percentile: 99.9,
        seed,
    };
    TrainedPipeline::build(&config).expect("pipeline must build")
}

fn tiny_sweep() -> SweepConfig {
    SweepConfig {
        time_steps: 64,
        eval_samples: 24,
        seed: 99,
    }
}

#[test]
fn dnn_to_snn_conversion_preserves_most_accuracy_for_every_coding() {
    let pipeline = tiny_pipeline(1);
    let dnn_acc = pipeline.dnn_test_accuracy();
    assert!(dnn_acc > 0.5, "source DNN too weak: {dnn_acc}");
    for kind in [
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ] {
        let summary = pipeline
            .evaluate_snn(kind, 96, &IdentityTransform, &WeightScaling::none(), 24, 0)
            .expect("clean evaluation");
        assert!(
            summary.accuracy >= dnn_acc - 0.3,
            "{}: clean SNN accuracy {} too far below DNN {}",
            kind.label(),
            summary.accuracy,
            dnn_acc
        );
    }
}

#[test]
fn deletion_noise_reduces_both_accuracy_and_spike_count() {
    let pipeline = tiny_pipeline(2);
    let clean = pipeline
        .evaluate_snn(
            CodingKind::Rate,
            64,
            &IdentityTransform,
            &WeightScaling::none(),
            24,
            0,
        )
        .expect("clean");
    let heavy = DeletionNoise::new(0.8).expect("noise");
    let noisy = pipeline
        .evaluate_snn(CodingKind::Rate, 64, &heavy, &WeightScaling::none(), 24, 0)
        .expect("noisy");
    assert!(noisy.mean_spikes_per_sample < clean.mean_spikes_per_sample * 0.5);
    assert!(noisy.accuracy <= clean.accuracy + 1e-6);
}

#[test]
fn weight_scaling_recovers_accuracy_under_deletion() {
    let pipeline = tiny_pipeline(3);
    let p = 0.5;
    let noise = DeletionNoise::new(p).expect("noise");
    let unscaled = pipeline
        .evaluate_snn(CodingKind::Rate, 96, &noise, &WeightScaling::none(), 32, 7)
        .expect("unscaled");
    let scaled = pipeline
        .evaluate_snn(
            CodingKind::Rate,
            96,
            &noise,
            &WeightScaling::for_deletion_probability(p).expect("ws"),
            32,
            7,
        )
        .expect("scaled");
    assert!(
        scaled.accuracy >= unscaled.accuracy,
        "WS should not hurt under matched deletion: {} vs {}",
        scaled.accuracy,
        unscaled.accuracy
    );
}

#[test]
fn ttas_with_ws_beats_ttfs_with_ws_under_heavy_deletion() {
    // The paper's headline comparison (Fig. 7 / Table I): under substantial
    // deletion the proposed TTAS+WS retains more accuracy than TTFS+WS.
    let pipeline = tiny_pipeline(4);
    let p = 0.5;
    let noise = DeletionNoise::new(p).expect("noise");
    let ws = WeightScaling::for_deletion_probability(p).expect("ws");
    let ttfs = pipeline
        .evaluate_snn(CodingKind::Ttfs, 96, &noise, &ws, 40, 11)
        .expect("ttfs");
    let ttas = pipeline
        .evaluate_snn(CodingKind::Ttas(5), 96, &noise, &ws, 40, 11)
        .expect("ttas");
    assert!(
        ttas.accuracy >= ttfs.accuracy,
        "TTAS(5)+WS {} should be at least as robust as TTFS+WS {}",
        ttas.accuracy,
        ttfs.accuracy
    );
}

#[test]
fn rate_coding_is_unaffected_by_jitter_while_phase_degrades() {
    // Fig. 3's two extremes.
    let pipeline = tiny_pipeline(5);
    let jitter = JitterNoise::new(3.0).expect("noise");
    let rate_clean = pipeline
        .evaluate_snn(
            CodingKind::Rate,
            64,
            &IdentityTransform,
            &WeightScaling::none(),
            32,
            3,
        )
        .expect("rate clean");
    let rate_jittered = pipeline
        .evaluate_snn(CodingKind::Rate, 64, &jitter, &WeightScaling::none(), 32, 3)
        .expect("rate jitter");
    assert!(
        (rate_clean.accuracy - rate_jittered.accuracy).abs() < 0.15,
        "rate coding should be nearly flat under jitter: {} vs {}",
        rate_clean.accuracy,
        rate_jittered.accuracy
    );

    let phase_clean = pipeline
        .evaluate_snn(
            CodingKind::Phase,
            64,
            &IdentityTransform,
            &WeightScaling::none(),
            32,
            3,
        )
        .expect("phase clean");
    let phase_jittered = pipeline
        .evaluate_snn(
            CodingKind::Phase,
            64,
            &jitter,
            &WeightScaling::none(),
            32,
            3,
        )
        .expect("phase jitter");
    assert!(
        phase_jittered.accuracy < phase_clean.accuracy,
        "phase coding should degrade under σ=3 jitter: {} vs {}",
        phase_jittered.accuracy,
        phase_clean.accuracy
    );
}

#[test]
fn sweep_results_do_not_depend_on_thread_count() {
    // The determinism contract of the parallel sweep engine, end to end:
    // identical SweepPoint vectors at 1 and 4 worker threads for a fixed
    // seed, for both noise families.
    let pipeline = tiny_pipeline(8);
    let codings = [CodingKind::Rate, CodingKind::Ttfs, CodingKind::Ttas(5)];

    let deletion = |threads: usize| {
        DeletionSweep::new(&codings, &paper_table_deletion_points())
            .weight_scaling(true)
            .config(tiny_sweep())
            .parallel(ParallelConfig::with_threads(threads))
            .run(&pipeline)
            .expect("deletion sweep")
    };
    assert_eq!(deletion(1), deletion(4));

    let jitter = |threads: usize| {
        JitterSweep::new(&codings, &[0.0, 1.0, 2.0])
            .config(tiny_sweep())
            .parallel(ParallelConfig::with_threads(threads))
            .run(&pipeline)
            .expect("jitter sweep")
    };
    assert_eq!(jitter(1), jitter(4));
}

#[test]
fn robust_builder_and_sweeps_compose() {
    let pipeline = tiny_pipeline(6);
    let robust = RobustSnnBuilder::new()
        .burst_duration(4)
        .expected_deletion(0.2)
        .time_steps(64)
        .build(&pipeline)
        .expect("robust build");
    let summary = robust
        .evaluate_under_deletion(&pipeline, 0.2, 24, 0)
        .expect("robust eval");
    assert!(summary.accuracy > 0.3);

    let points = deletion_sweep(
        &pipeline,
        &[CodingKind::Ttas(4)],
        &paper_table_deletion_points(),
        true,
        &tiny_sweep(),
    )
    .expect("sweep");
    assert_eq!(points.len(), 4);
    let table = format_sweep_table(&points, "Deletion p");
    assert!(table.contains("TTAS(4)+WS"));
}

#[test]
fn spike_counts_follow_the_paper_efficiency_ordering() {
    // Table I: TTFS ≪ TTAS ≪ burst ≪ rate/phase in spikes per inference.
    let pipeline = tiny_pipeline(7);
    let count = |kind: CodingKind| {
        pipeline
            .evaluate_snn(kind, 96, &IdentityTransform, &WeightScaling::none(), 16, 0)
            .expect("eval")
            .mean_spikes_per_sample
    };
    let rate = count(CodingKind::Rate);
    let burst = count(CodingKind::Burst);
    let ttfs = count(CodingKind::Ttfs);
    let ttas = count(CodingKind::Ttas(5));
    assert!(ttfs < ttas, "ttfs {ttfs} < ttas {ttas}");
    assert!(
        ttas < burst * 2.0,
        "ttas {ttas} should be close to burst {burst}"
    );
    assert!(burst < rate, "burst {burst} < rate {rate}");
    assert!(rate / ttfs > 5.0, "rate/ttfs ratio {}", rate / ttfs);
}
