//! Bit-identity contract of the allocation-free simulation engine.
//!
//! The workspace path (`simulate_with` / `simulate_batch` and the chunked
//! sweep engine built on them) must produce **byte-for-byte** the same
//! results as the seed per-sample path, which is preserved verbatim as
//! [`SnnNetwork::simulate_unbuffered`].  These tests pin that contract at
//! three levels: single inference, batched inference with workspace reuse,
//! and full sweep grids (`SweepPoint`s) at 1 and 4 worker threads.

use nrsnn::prelude::*;
use nrsnn_data::DatasetSpec;
use nrsnn_runtime::{derive_seed, parallel_map, ParallelConfig};
use nrsnn_snn::{SimulationOutcome, SnnLayer, SparsityPolicy};
use nrsnn_tensor::{Conv2dGeometry, Pool2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_pipeline() -> TrainedPipeline {
    let config = PipelineConfig {
        dataset: DatasetSpec::mnist_like().with_samples(90, 36),
        model: ModelKind::Mlp,
        dropout: 0.1,
        epochs: 6,
        batch_size: 18,
        learning_rate: 2e-3,
        percentile: 99.9,
        seed: 13,
    };
    TrainedPipeline::build(&config).expect("pipeline must build")
}

fn tiny_sweep() -> SweepConfig {
    SweepConfig {
        time_steps: 48,
        eval_samples: 20,
        seed: 77,
    }
}

fn all_codings() -> Vec<CodingKind> {
    vec![
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ]
}

fn noise_models() -> Vec<(&'static str, Box<dyn SpikeTransform>)> {
    vec![
        ("identity", Box::new(IdentityTransform)),
        ("deletion0", Box::new(DeletionNoise::new(0.0).unwrap())),
        ("deletion", Box::new(DeletionNoise::new(0.35).unwrap())),
        ("jitter", Box::new(JitterNoise::new(1.5).unwrap())),
        (
            "composite",
            Box::new(
                CompositeNoise::new()
                    .then(DeletionNoise::new(0.2).unwrap())
                    .then(JitterNoise::new(1.0).unwrap()),
            ),
        ),
    ]
}

fn assert_outcomes_byte_identical(a: &SimulationOutcome, b: &SimulationOutcome, context: &str) {
    assert_eq!(a.predicted, b.predicted, "{context}: predicted");
    assert_eq!(a.total_spikes, b.total_spikes, "{context}: total spikes");
    assert_eq!(
        a.spikes_per_layer, b.spikes_per_layer,
        "{context}: spikes per layer"
    );
    let a_bits: Vec<u32> = a.logits.iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u32> = b.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{context}: logit bits");
}

/// Property-style sweep: for every (coding × noise × sample), the workspace
/// wrapper `simulate` must reproduce the reference `simulate_unbuffered`
/// byte for byte, including the RNG stream it leaves behind.
#[test]
fn simulate_matches_unbuffered_reference_bitwise() {
    let pipeline = tiny_pipeline();
    let network = pipeline.to_snn(&WeightScaling::none()).unwrap();
    let cfg = CodingConfig::new(48, 1.0);
    let inputs = &pipeline.dataset().test.inputs;

    for kind in all_codings() {
        let coding = kind.build();
        for (noise_name, noise) in noise_models() {
            for sample in 0..6 {
                let row = inputs.row(sample).unwrap();
                let seed = derive_seed(999, sample as u64);
                let mut rng_ref = StdRng::seed_from_u64(seed);
                let mut rng_ws = StdRng::seed_from_u64(seed);
                let reference = network
                    .simulate_unbuffered(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng_ref,
                    )
                    .unwrap();
                let outcome = network
                    .simulate(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng_ws,
                    )
                    .unwrap();
                let context = format!("{} under {noise_name} sample {sample}", kind.label());
                assert_outcomes_byte_identical(&reference, &outcome, &context);
                assert_eq!(rng_ref, rng_ws, "{context}: RNG stream diverged");
            }
        }
    }
}

/// A deterministic Conv → AvgPool → Linear network: exercises the
/// convolution (`im2col` + transpose + matmul scratch) and pooling arms of
/// `forward_analog_into`, which the MLP pipelines never touch.
fn conv_network() -> SnnNetwork {
    let fill = |rows: usize, cols: usize, scale: f32| -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31 + 7) % 19) as f32 / 19.0 * scale - scale / 4.0)
            .collect();
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    };
    // 1x6x6 input -> conv(2ch, k3, s1, p1) -> 2x6x6 -> avgpool(2x2) ->
    // 2x3x3 -> linear -> 4 logits.
    let conv_geom = Conv2dGeometry::new(1, 6, 6, 3, 1, 1).unwrap();
    let pool_geom = Pool2dGeometry::new(2, 6, 6, 2, 2).unwrap();
    SnnNetwork::new(vec![
        SnnLayer::Conv {
            weights: fill(2, conv_geom.patch_len(), 0.5),
            bias: Tensor::from_slice(&[0.05, -0.02]),
            geometry: conv_geom,
        },
        SnnLayer::AvgPool {
            geometry: pool_geom,
        },
        SnnLayer::Linear {
            weights: fill(4, pool_geom.out_len(), 0.7),
            bias: Tensor::zeros(&[4]),
        },
    ])
    .unwrap()
}

/// The convolution and pooling arms of the workspace path must match the
/// allocating reference byte for byte, one-shot and batched, across every
/// coding and noise model.
#[test]
fn conv_and_pool_layers_match_unbuffered_reference_bitwise() {
    let network = conv_network();
    let cfg = CodingConfig::new(40, 1.0);
    let samples = 5usize;
    let inputs = Tensor::from_vec(
        (0..samples * 36)
            .map(|i| ((i * 17 + 3) % 23) as f32 / 23.0)
            .collect(),
        &[samples, 36],
    )
    .unwrap();

    let mut ws = SimWorkspace::new();
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    for kind in all_codings() {
        let coding = kind.build();
        for (noise_name, noise) in noise_models() {
            // One-shot wrapper vs reference, byte for byte.
            for sample in 0..samples {
                let row = inputs.row(sample).unwrap();
                let seed = derive_seed(31, sample as u64);
                let mut rng_ref = StdRng::seed_from_u64(seed);
                let mut rng_ws = StdRng::seed_from_u64(seed);
                let reference = network
                    .simulate_unbuffered(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng_ref,
                    )
                    .unwrap();
                let outcome = network
                    .simulate(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng_ws,
                    )
                    .unwrap();
                let context = format!("conv {} under {noise_name} sample {sample}", kind.label());
                assert_outcomes_byte_identical(&reference, &outcome, &context);
                assert_eq!(rng_ref, rng_ws, "{context}: RNG stream diverged");
            }
            // Batched path with a workspace reused across everything.
            network
                .simulate_batch(
                    &inputs,
                    0..samples,
                    coding.as_ref(),
                    &cfg,
                    noise.as_ref(),
                    |sample| StdRng::seed_from_u64(derive_seed(31, sample as u64)),
                    &mut ws,
                    &mut outcomes,
                )
                .unwrap();
            for (sample, outcome) in outcomes.iter().enumerate() {
                let row = inputs.row(sample).unwrap();
                let mut rng = StdRng::seed_from_u64(derive_seed(31, sample as u64));
                let reference = network
                    .simulate_unbuffered(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng,
                    )
                    .unwrap();
                assert_eq!(
                    (outcome.predicted, outcome.total_spikes),
                    (reference.predicted, reference.total_spikes),
                    "conv batch: {} under {noise_name} sample {sample}",
                    kind.label()
                );
            }
        }
    }
}

/// One workspace reused across a whole batch — and across codings and noise
/// models — must equal the reference path sample by sample.
#[test]
fn simulate_batch_with_reused_workspace_matches_reference() {
    let pipeline = tiny_pipeline();
    let network = pipeline.to_snn(&WeightScaling::none()).unwrap();
    let cfg = CodingConfig::new(48, 1.0);
    let inputs = &pipeline.dataset().test.inputs;
    let samples = 12usize;
    let base_seed = 4242u64;

    // Deliberately one workspace and one outcome buffer for everything.
    let mut ws = SimWorkspace::new();
    let mut outcomes: Vec<BatchOutcome> = Vec::new();

    for kind in all_codings() {
        let coding = kind.build();
        for (noise_name, noise) in noise_models() {
            network
                .simulate_batch(
                    inputs,
                    0..samples,
                    coding.as_ref(),
                    &cfg,
                    noise.as_ref(),
                    |sample| StdRng::seed_from_u64(derive_seed(base_seed, sample as u64)),
                    &mut ws,
                    &mut outcomes,
                )
                .unwrap();
            assert_eq!(outcomes.len(), samples);
            for (sample, outcome) in outcomes.iter().enumerate() {
                let row = inputs.row(sample).unwrap();
                let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, sample as u64));
                let reference = network
                    .simulate_unbuffered(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng,
                    )
                    .unwrap();
                assert_eq!(
                    outcome.predicted,
                    reference.predicted,
                    "{} under {noise_name} sample {sample}",
                    kind.label()
                );
                assert_eq!(
                    outcome.total_spikes,
                    reference.total_spikes,
                    "{} under {noise_name} sample {sample}",
                    kind.label()
                );
            }
        }
    }
}

/// A deterministic hand-built MLP for the sparse/dense kernel matrix: small
/// enough that the full `(coding × noise × batch) × thread-count` grid runs
/// in seconds, with signed weights, a signed-zero bias entry and inputs
/// containing exact zeros so the sparse kernels' skip set is non-trivial.
fn matrix_network() -> SnnNetwork {
    let fill = |rows: usize, cols: usize, scale: f32| -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37 + 11) % 23) as f32 / 23.0 * scale - scale / 3.0)
            .collect();
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    };
    let mut bias0 = vec![0.01f32; 18];
    bias0[3] = -0.0; // the signed-zero corner rides through every combo
    SnnNetwork::new(vec![
        SnnLayer::Linear {
            weights: fill(18, 24, 0.6),
            bias: Tensor::from_vec(bias0, &[18]).unwrap(),
        },
        SnnLayer::Linear {
            weights: fill(6, 18, 0.8),
            bias: Tensor::zeros(&[6]),
        },
    ])
    .unwrap()
}

fn matrix_inputs(samples: usize, width: usize) -> Tensor {
    let data: Vec<f32> = (0..samples * width)
        .map(|i| match i % 5 {
            0 => 0.0, // exact zeros: silent input neurons
            r => ((i * 13 + 5) % 29) as f32 / 29.0 * (r as f32 / 4.0),
        })
        .collect();
    Tensor::from_vec(data, &[samples, width]).unwrap()
}

/// Property-style matrix for the sparsity-aware engine: 5 codings ×
/// {deletion, jitter, composite} × batch sizes 1..=16, each simulated under
/// the forced-dense, forced-sparse and auto kernel policies, asserting
/// byte-equal logits, equal outcomes/spike counts and identical RNG streams.
/// The whole matrix then re-runs fanned over 1 and 4 worker threads and the
/// two runs' digests must agree bit for bit.
#[test]
fn sparse_and_dense_kernels_are_byte_identical_across_the_matrix() {
    let base = matrix_network();
    let inputs = matrix_inputs(16, 24);
    let cfg = CodingConfig::new(48, 1.0);
    let noise_names = ["deletion", "jitter", "composite"];
    let build_noise = |name: &str| -> Box<dyn SpikeTransform> {
        match name {
            "deletion" => Box::new(DeletionNoise::new(0.5).unwrap()),
            "jitter" => Box::new(JitterNoise::new(1.5).unwrap()),
            "composite" => Box::new(
                CompositeNoise::new()
                    .then(DeletionNoise::new(0.3).unwrap())
                    .then(JitterNoise::new(1.0).unwrap()),
            ),
            other => panic!("unknown noise {other}"),
        }
    };
    let combos: Vec<(CodingKind, &str)> = all_codings()
        .into_iter()
        .flat_map(|kind| noise_names.iter().map(move |&n| (kind, n)))
        .collect();

    // One combo = one pool task; returns the digest of every logit bit the
    // combo produced (under the auto policy) for the cross-thread check.
    let run_combo = |&(kind, noise_name): &(CodingKind, &str)| -> Vec<u32> {
        let coding = kind.build();
        let noise = build_noise(noise_name);
        let policies = [
            ("dense", base.clone().with_sparsity(SparsityPolicy::Dense)),
            ("sparse", base.clone().with_sparsity(SparsityPolicy::Sparse)),
            ("auto", base.clone().with_sparsity(SparsityPolicy::auto())),
        ];
        let mut digest = Vec::new();
        for batch in 1..=16usize {
            let seed = derive_seed(4096, batch as u64);
            // (outcome, logit bits) per sample, per policy.
            let mut per_policy: Vec<Vec<(BatchOutcome, Vec<u32>)>> = Vec::new();
            for (policy_name, network) in &policies {
                let mut ws = SimWorkspace::new();
                let mut seen = Vec::new();
                network
                    .simulate_batch_each(
                        &inputs,
                        0..batch,
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        |sample| StdRng::seed_from_u64(derive_seed(seed, sample as u64)),
                        &mut ws,
                        |_, outcome, ws| {
                            seen.push((
                                outcome,
                                ws.logits().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            ));
                        },
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} {noise_name} batch {batch} {policy_name}: {e}",
                            kind.label()
                        )
                    });
                per_policy.push(seen);
            }
            let (dense, rest) = per_policy.split_first().unwrap();
            for (results, (policy_name, _)) in rest.iter().zip(&policies[1..]) {
                assert_eq!(
                    dense,
                    results,
                    "{} under {noise_name}, batch {batch}: {policy_name} diverged from dense",
                    kind.label()
                );
            }
            digest.extend(
                per_policy[2]
                    .iter()
                    .flat_map(|(_, bits)| bits.iter().copied()),
            );
        }
        // RNG-stream identity: after simulating the same sample, the dense
        // and sparse engines must leave the generator in the same state.
        let row = inputs.row_slice(0).unwrap();
        let mut ws = SimWorkspace::new();
        let mut rng_dense = StdRng::seed_from_u64(derive_seed(7, 7));
        let mut rng_sparse = StdRng::seed_from_u64(derive_seed(7, 7));
        policies[0]
            .1
            .simulate_with(
                row,
                coding.as_ref(),
                &cfg,
                noise.as_ref(),
                &mut rng_dense,
                &mut ws,
            )
            .unwrap();
        policies[1]
            .1
            .simulate_with(
                row,
                coding.as_ref(),
                &cfg,
                noise.as_ref(),
                &mut rng_sparse,
                &mut ws,
            )
            .unwrap();
        assert_eq!(
            rng_dense,
            rng_sparse,
            "{} under {noise_name}: RNG stream diverged between kernels",
            kind.label()
        );
        digest
    };

    let serial = parallel_map(&ParallelConfig::with_threads(1), &combos, |_, combo| {
        run_combo(combo)
    });
    let threaded = parallel_map(&ParallelConfig::with_threads(4), &combos, |_, combo| {
        run_combo(combo)
    });
    assert_eq!(
        serial, threaded,
        "matrix digests differ across thread counts"
    );
    assert!(serial.iter().all(|digest| !digest.is_empty()));
}

/// Scalar-vs-SIMD matrix: 5 codings × {deletion, jitter, composite} ×
/// batch sizes 1..=16 × {dense, sparse, auto} kernel policies × every ISA
/// the host CPU supports.  For each ISA the three policies must agree byte
/// for byte (outcomes + logit bits), and the per-ISA digests — logit bits,
/// a few draws from the post-simulation RNG (so stream divergence is
/// caught), and a conv → pool → linear probe (so the `im2col`/pooling arms
/// ride through the same matrix) — must be identical to the scalar
/// backend's digest.  Together with the lane-blocked coding layer this
/// covers the *entire* noisy pipeline per ISA: block encode → noise →
/// block decode → dense/sparse forward.  This is the end-to-end half of
/// the SIMD bit-identity contract; the kernel-level half lives in
/// `crates/tensor/tests/simd_kernel_proptest.rs` and the coding-layer half
/// in `crates/snn/tests/coding_simd_proptest.rs`.
#[test]
fn scalar_and_simd_backends_are_byte_identical_across_the_matrix() {
    use nrsnn_tensor::simd::{available_backends, set_backend, SimdBackend};
    use rand::Rng;

    let base = matrix_network();
    let inputs = matrix_inputs(16, 24);
    let conv_net = conv_network();
    let conv_inputs = matrix_inputs(2, 36);
    let conv_cfg = CodingConfig::new(40, 1.0);
    let cfg = CodingConfig::new(48, 1.0);
    let noise_names = ["deletion", "jitter", "composite"];
    let build_noise = |name: &str| -> Box<dyn SpikeTransform> {
        match name {
            "deletion" => Box::new(DeletionNoise::new(0.5).unwrap()),
            "jitter" => Box::new(JitterNoise::new(1.5).unwrap()),
            "composite" => Box::new(
                CompositeNoise::new()
                    .then(DeletionNoise::new(0.3).unwrap())
                    .then(JitterNoise::new(1.0).unwrap()),
            ),
            other => panic!("unknown noise {other}"),
        }
    };
    let combos: Vec<(CodingKind, &str)> = all_codings()
        .into_iter()
        .flat_map(|kind| noise_names.iter().map(move |&n| (kind, n)))
        .collect();

    // Runs the whole (coding × noise × batch × policy) grid on the current
    // backend; returns one digest per combo of every logit bit plus the
    // RNG-stream probe.
    let digest_all = |isa: SimdBackend| -> Vec<Vec<u32>> {
        combos
            .iter()
            .map(|&(kind, noise_name)| {
                let coding = kind.build();
                let noise = build_noise(noise_name);
                let policies = [
                    ("dense", base.clone().with_sparsity(SparsityPolicy::Dense)),
                    ("sparse", base.clone().with_sparsity(SparsityPolicy::Sparse)),
                    ("auto", base.clone().with_sparsity(SparsityPolicy::auto())),
                ];
                let mut digest = Vec::new();
                for batch in 1..=16usize {
                    let seed = derive_seed(8192, batch as u64);
                    let mut per_policy: Vec<Vec<(BatchOutcome, Vec<u32>)>> = Vec::new();
                    for (policy_name, network) in &policies {
                        let mut ws = SimWorkspace::new();
                        let mut seen = Vec::new();
                        network
                            .simulate_batch_each(
                                &inputs,
                                0..batch,
                                coding.as_ref(),
                                &cfg,
                                noise.as_ref(),
                                |sample| StdRng::seed_from_u64(derive_seed(seed, sample as u64)),
                                &mut ws,
                                |_, outcome, ws| {
                                    seen.push((
                                        outcome,
                                        ws.logits().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                    ));
                                },
                            )
                            .unwrap_or_else(|e| {
                                panic!(
                                    "{isa:?} {} {noise_name} batch {batch} {policy_name}: {e}",
                                    kind.label()
                                )
                            });
                        per_policy.push(seen);
                    }
                    let (dense, rest) = per_policy.split_first().unwrap();
                    for (results, (policy_name, _)) in rest.iter().zip(&policies[1..]) {
                        assert_eq!(
                            dense,
                            results,
                            "{isa:?}: {} under {noise_name}, batch {batch}: {policy_name} \
                             diverged from dense",
                            kind.label()
                        );
                    }
                    digest.extend(
                        per_policy[2]
                            .iter()
                            .flat_map(|(_, bits)| bits.iter().copied()),
                    );
                }
                // RNG-stream probe: simulate one sample, then append a few
                // draws — if any backend consumed a different number of
                // random values, the cross-ISA digest comparison fails here.
                let row = inputs.row_slice(0).unwrap();
                let mut ws = SimWorkspace::new();
                let mut rng = StdRng::seed_from_u64(derive_seed(99, 1));
                policies[2]
                    .1
                    .simulate_with(
                        row,
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng,
                        &mut ws,
                    )
                    .unwrap();
                digest.extend((0..4).map(|_| rng.gen::<u32>()));
                // Conv/pool probe: the `im2col` + kernel-transpose + matmul
                // and pooling arms under the same coding, noise and ISA.
                let mut conv_ws = SimWorkspace::new();
                for sample in 0..2 {
                    let row = conv_inputs.row_slice(sample).unwrap();
                    let mut rng = StdRng::seed_from_u64(derive_seed(123, sample as u64));
                    let outcome = conv_net
                        .simulate_with(
                            row,
                            coding.as_ref(),
                            &conv_cfg,
                            noise.as_ref(),
                            &mut rng,
                            &mut conv_ws,
                        )
                        .unwrap();
                    digest.push(outcome.total_spikes as u32);
                    digest.extend(conv_ws.logits().iter().map(|v| v.to_bits()));
                }
                digest
            })
            .collect()
    };

    let isas = available_backends();
    assert!(isas.contains(&SimdBackend::Scalar));
    let previous = set_backend(SimdBackend::Scalar);
    let reference = digest_all(SimdBackend::Scalar);
    assert!(reference.iter().all(|digest| !digest.is_empty()));
    for &isa in isas.iter().filter(|&&b| b != SimdBackend::Scalar) {
        assert_eq!(set_backend(isa), isa, "requested ISA must run unresolved");
        let digest = digest_all(isa);
        for ((combo_digest, scalar_digest), &(kind, noise_name)) in
            digest.iter().zip(&reference).zip(&combos)
        {
            assert_eq!(
                combo_digest,
                scalar_digest,
                "{isa:?} digest diverged from scalar for {} under {noise_name}",
                kind.label()
            );
        }
    }
    set_backend(previous);
}

/// Rebuilds a deletion sweep with a hand-rolled per-sample loop over the
/// allocating reference simulator — exactly the seed engine's algorithm —
/// and requires the production sweep to match it byte for byte at 1 and 4
/// worker threads and for sample-level batching.
#[test]
fn sweep_points_match_seed_per_sample_reference_at_1_and_4_threads() {
    let pipeline = tiny_pipeline();
    let sweep = tiny_sweep();
    let codings = [CodingKind::Rate, CodingKind::Ttfs, CodingKind::Ttas(3)];
    let levels = [0.0, 0.3, 0.6];

    // --- reference: the seed per-sample path ---------------------------
    let subset = pipeline.test_subset(sweep.eval_samples).unwrap();
    let samples = subset.labels.len();
    let mut reference: Vec<SweepPoint> = Vec::new();
    for &coding_kind in &codings {
        for &p in &levels {
            let scaling = if p > 0.0 && p < 1.0 {
                WeightScaling::for_deletion_probability(p).unwrap()
            } else {
                WeightScaling::none()
            };
            let network = pipeline.to_snn(&scaling).unwrap();
            let coding = coding_kind.build();
            let cfg = pipeline.coding_config(coding_kind, sweep.time_steps);
            let noise: Box<dyn SpikeTransform> = if p <= 0.0 {
                Box::new(IdentityTransform)
            } else {
                Box::new(DeletionNoise::new(p).unwrap())
            };
            let mut correct = 0usize;
            let mut total_spikes = 0usize;
            for sample in 0..samples {
                let row = subset.inputs.row(sample).unwrap();
                let mut rng = StdRng::seed_from_u64(derive_seed(sweep.seed, sample as u64));
                let outcome = network
                    .simulate_unbuffered(
                        row.as_slice(),
                        coding.as_ref(),
                        &cfg,
                        noise.as_ref(),
                        &mut rng,
                    )
                    .unwrap();
                if outcome.predicted == subset.labels[sample] {
                    correct += 1;
                }
                total_spikes += outcome.total_spikes;
            }
            let denom = samples.max(1) as f32;
            reference.push(SweepPoint {
                coding: coding_kind,
                weight_scaled: true,
                noise_level: p,
                accuracy_percent: (correct as f32 / denom) * 100.0,
                mean_spikes: total_spikes as f32 / denom,
            });
        }
    }
    // Canonical result order: (noise level, coding, weight scaling).
    reference.sort_by(|a, b| {
        a.noise_level
            .partial_cmp(&b.noise_level)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.coding.order_index().cmp(&b.coding.order_index()))
            .then_with(|| a.weight_scaled.cmp(&b.weight_scaled))
    });

    // --- production engine at several scheduling configurations --------
    let run = |parallel: ParallelConfig| {
        DeletionSweep::new(&codings, &levels)
            .weight_scaling(true)
            .config(sweep)
            .parallel(parallel)
            .run(&pipeline)
            .unwrap()
    };
    for (label, parallel) in [
        ("1 thread", ParallelConfig::with_threads(1)),
        ("4 threads", ParallelConfig::with_threads(4)),
        (
            "4 threads, sample-sized chunks",
            ParallelConfig::with_threads(4).with_batch_size(1),
        ),
    ] {
        let points = run(parallel);
        assert_eq!(points.len(), reference.len(), "{label}: point count");
        for (point, expected) in points.iter().zip(&reference) {
            assert_eq!(point.coding, expected.coding, "{label}");
            assert_eq!(point.weight_scaled, expected.weight_scaled, "{label}");
            assert_eq!(
                point.noise_level.to_bits(),
                expected.noise_level.to_bits(),
                "{label}"
            );
            assert_eq!(
                point.accuracy_percent.to_bits(),
                expected.accuracy_percent.to_bits(),
                "{label}: accuracy bits for {} @ {}",
                expected.coding.label(),
                expected.noise_level
            );
            assert_eq!(
                point.mean_spikes.to_bits(),
                expected.mean_spikes.to_bits(),
                "{label}: spike bits for {} @ {}",
                expected.coding.label(),
                expected.noise_level
            );
        }
    }
}
