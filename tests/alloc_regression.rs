//! Steady-state allocation regression test for the batched simulation
//! engine.
//!
//! This binary installs a counting global allocator (per-thread counters,
//! toggled only around the measured region) and asserts that, after one
//! warm-up pass has grown the [`SimWorkspace`] buffers, re-simulating the
//! same batch performs **zero** heap allocations per sample.  Any new
//! allocation sneaking into the hot loop (an accidental `clone`, a fresh
//! `Vec`, a tensor temp) fails this test rather than silently eating the
//! workspace refactor's win.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use nrsnn::prelude::*;
use nrsnn_runtime::derive_seed;
use nrsnn_snn::{SnnLayer, SnnNetwork};
use nrsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts allocations (alloc + realloc) on the current thread while enabled.
struct CountingAllocator;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: pure pass-through to `System` — every GlobalAlloc contract
// (layout validity, pointer provenance) is exactly the one `System`
// already upholds; the counter bump touches only thread-local Cells and
// never allocates or unwinds (`try_with`).
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    // SAFETY: forwards ptr/layout, which the caller obtained from `alloc`
    // on this same allocator (i.e. from `System`), unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards ptr/layout/new_size from the caller's contract
    // straight to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

fn count_one() {
    // `try_with` so allocations during thread teardown never panic.
    let _ = ENABLED.try_with(|enabled| {
        if enabled.get() {
            let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread and returns the
/// number of allocations it performed.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    ALLOCATIONS.with(|count| count.set(0));
    ENABLED.with(|enabled| enabled.set(true));
    f();
    ENABLED.with(|enabled| enabled.set(false));
    ALLOCATIONS.with(|count| count.get())
}

/// A deterministic hand-built MLP (no training needed, keeps this binary
/// fast and dependency-light).
fn build_network(inputs: usize, hidden: usize, outputs: usize) -> SnnNetwork {
    let fill = |rows: usize, cols: usize, scale: f32| -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37 + 11) % 23) as f32 / 23.0 * scale - scale / 3.0)
            .collect();
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    };
    SnnNetwork::new(vec![
        SnnLayer::Linear {
            weights: fill(hidden, inputs, 0.6),
            bias: Tensor::zeros(&[hidden]),
        },
        SnnLayer::Linear {
            weights: fill(outputs, hidden, 0.8),
            bias: Tensor::zeros(&[outputs]),
        },
    ])
    .unwrap()
}

fn build_inputs(samples: usize, width: usize) -> Tensor {
    let data: Vec<f32> = (0..samples * width)
        .map(|i| ((i * 13 + 5) % 29) as f32 / 29.0)
        .collect();
    Tensor::from_vec(data, &[samples, width]).unwrap()
}

#[test]
fn steady_state_simulate_batch_allocates_zero_per_sample() {
    let base = build_network(24, 18, 6);
    let inputs = build_inputs(32, 24);
    let cfg = CodingConfig::new(64, 1.0);
    let seed = 2468u64;

    // Cover the no-noise fast path, both random noise models and a
    // multi-stage composite: every combination must be allocation-free in
    // steady state (the composite applies stages after the first in place,
    // so it needs no scratch raster).
    let noises: Vec<(&str, Box<dyn SpikeTransform>)> = vec![
        ("identity", Box::new(IdentityTransform)),
        ("deletion", Box::new(DeletionNoise::new(0.3).unwrap())),
        ("jitter", Box::new(JitterNoise::new(1.2).unwrap())),
        (
            "composite",
            Box::new(
                CompositeNoise::new()
                    .then(DeletionNoise::new(0.2).unwrap())
                    .then(JitterNoise::new(1.0).unwrap()),
            ),
        ),
    ];
    let codings = [
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ];
    // Every kernel policy must be allocation-free: the sparse path's
    // active-index scratch lives in the workspace and reaches a fixed
    // capacity during warm-up, exactly like the rasters.
    let policies = [
        ("auto", base.clone().with_sparsity(SparsityPolicy::auto())),
        ("dense", base.clone().with_sparsity(SparsityPolicy::Dense)),
        ("sparse", base.with_sparsity(SparsityPolicy::Sparse)),
    ];

    for (policy_name, network) in &policies {
        for kind in codings {
            let coding = kind.build();
            for (noise_name, noise) in &noises {
                let mut ws = SimWorkspace::new();
                let mut outcomes: Vec<BatchOutcome> = Vec::new();
                let run = |ws: &mut SimWorkspace, out: &mut Vec<BatchOutcome>| {
                    network
                        .simulate_batch(
                            &inputs,
                            0..32,
                            coding.as_ref(),
                            &cfg,
                            noise.as_ref(),
                            |sample| StdRng::seed_from_u64(derive_seed(seed, sample as u64)),
                            ws,
                            out,
                        )
                        .unwrap();
                };

                // Warm-up: grows every workspace buffer to its steady-state
                // size (identical samples and seeds, so later passes need no
                // growth).
                let warmup = allocations_during(|| run(&mut ws, &mut outcomes));
                assert!(
                    warmup > 0,
                    "{} under {noise_name} ({policy_name}): warm-up should \
                     allocate (counter wired up?)",
                    kind.label()
                );
                let reference = outcomes.clone();

                // Steady state: the same batch twice more, zero allocations.
                for pass in 0..2 {
                    let steady = allocations_during(|| run(&mut ws, &mut outcomes));
                    assert_eq!(
                        steady,
                        0,
                        "{} under {noise_name} ({policy_name}): pass {pass} \
                         allocated {steady} times for 32 samples (expected zero)",
                        kind.label()
                    );
                    assert_eq!(
                        outcomes,
                        reference,
                        "{} under {noise_name} ({policy_name}): steady-state \
                         results diverged",
                        kind.label()
                    );
                }
            }
        }
    }
}

/// The observability hot path must be equally allocation-free: stage-event
/// capture inside the simulation workspace, the sharded metric sinks, and
/// the flight recorder's ring push may not cost a single heap allocation
/// once their buffers are warm — otherwise "tracing on" silently taxes the
/// serving path the ≤ 2 % overhead budget is supposed to protect.
#[test]
fn steady_state_observability_hot_path_allocates_zero() {
    use nrsnn_obs::{
        FlightRecorder, KernelPath, RecorderConfig, ShardedCounter, ShardedHistogram, Span, Stage,
        TraceRecord,
    };

    // 1. Stage tracing in the workspace: same batch contract as above, but
    //    with per-stage event capture enabled.
    let network = build_network(24, 18, 6);
    let inputs = build_inputs(32, 24);
    let cfg = CodingConfig::new(64, 1.0);
    let coding = CodingKind::Ttas(5).build();
    let noise = DeletionNoise::new(0.3).unwrap();
    let mut ws = SimWorkspace::new();
    ws.set_stage_tracing(true);
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    let run = |ws: &mut SimWorkspace, out: &mut Vec<BatchOutcome>| {
        network
            .simulate_batch(
                &inputs,
                0..32,
                coding.as_ref(),
                &cfg,
                &noise,
                |sample| StdRng::seed_from_u64(derive_seed(97, sample as u64)),
                ws,
                out,
            )
            .unwrap();
        assert!(!ws.stage_events().is_empty(), "tracing captured no events");
    };
    let warmup = allocations_during(|| run(&mut ws, &mut outcomes));
    assert!(warmup > 0, "warm-up should allocate (counter wired up?)");
    for pass in 0..2 {
        let steady = allocations_during(|| run(&mut ws, &mut outcomes));
        assert_eq!(
            steady, 0,
            "stage tracing pass {pass} allocated {steady} times (expected zero)"
        );
    }

    // 2. Sharded sinks: counters and histograms are preallocated atomics —
    //    zero allocations from the very first record.
    let counter = ShardedCounter::new(4);
    let histogram = ShardedHistogram::new(4);
    let sink_allocs = allocations_during(|| {
        for i in 0..1000u64 {
            counter.incr((i % 4) as usize);
            histogram.record((i % 4) as usize, i * 31);
        }
    });
    assert_eq!(sink_allocs, 0, "sharded sinks allocated on the record path");

    // 3. The flight recorder: once every preallocated ring slot's span
    //    buffer has grown to the workload's span count, re-recording is a
    //    clear + extend_from_slice — no allocation.
    let recorder = FlightRecorder::new(RecorderConfig {
        shards: 1,
        recent_capacity: 4,
        outlier_capacity: 2,
        slow_threshold_ns: 0, // no slow outliers: the recent ring is the subject
    });
    let trace = TraceRecord {
        trace_id: 1,
        ok: true,
        backend: "scalar",
        start_ns: 0,
        end_ns: 5_000,
        spans: (0..8)
            .map(|i| Span {
                stage: Stage::Simulate,
                layer: Some(i),
                start_ns: u64::from(i) * 500,
                end_ns: (u64::from(i) + 1) * 500,
                kernel: KernelPath::Dense,
                density: 0.5,
            })
            .collect(),
        ..TraceRecord::default()
    };
    // Warm-up: one pass over every ring slot.
    for _ in 0..4 {
        recorder.record(0, &trace);
    }
    let record_allocs = allocations_during(|| {
        for _ in 0..100 {
            recorder.record(0, &trace);
        }
    });
    assert_eq!(
        record_allocs, 0,
        "flight-recorder record path allocated in steady state"
    );
}

/// The one-shot `simulate` wrapper must stay correct (it allocates by
/// design — one workspace per call); contrast documented here so the
/// steady-state guarantee above is clearly about the batched path.
#[test]
fn one_shot_simulate_allocates_but_matches_batch_results() {
    let network = build_network(16, 12, 4);
    let inputs = build_inputs(4, 16);
    let cfg = CodingConfig::new(48, 1.0);
    let coding = CodingKind::Ttas(4).build();
    let noise = DeletionNoise::new(0.25).unwrap();

    let mut ws = SimWorkspace::new();
    let mut outcomes = Vec::new();
    network
        .simulate_batch(
            &inputs,
            0..4,
            coding.as_ref(),
            &cfg,
            &noise,
            |sample| StdRng::seed_from_u64(derive_seed(1, sample as u64)),
            &mut ws,
            &mut outcomes,
        )
        .unwrap();

    for (sample, outcome) in outcomes.iter().enumerate() {
        let row = inputs.row(sample).unwrap();
        let mut rng = StdRng::seed_from_u64(derive_seed(1, sample as u64));
        let one_shot = network
            .simulate(row.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
            .unwrap();
        assert_eq!(one_shot.predicted, outcome.predicted);
        assert_eq!(one_shot.total_spikes, outcome.total_spikes);
    }
}
