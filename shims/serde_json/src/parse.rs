//! A small recursive-descent JSON parser producing [`Value`]s.

use serde::value::Value;

use crate::Error;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{literal}')")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs: JSON escapes astral-plane chars as
                        // two \uXXXX units.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b).ok_or_else(|| self.error("invalid UTF-8"))?;
                        let end = start + len;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.error("truncated UTF-8"))?;
                        let s =
                            std::str::from_utf8(slice).map_err(|_| self.error("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first_byte: u8) -> Option<usize> {
    match first_byte {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}
