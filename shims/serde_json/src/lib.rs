//! Offline shim for the `serde_json` crate (see `shims/README.md`).
//!
//! Provides [`to_string`], [`from_str`], the [`json!`] macro and the shared
//! [`Value`] type over the shim `serde` data model.
//!
//! ```
//! let v = serde_json::json!({ "xs": vec![1.0f32, 2.0], "n": 3usize });
//! assert_eq!(v.to_string(), r#"{"xs":[1,2],"n":3}"#);
//! let back: serde_json::Value = serde_json::from_str(&v.to_string()).unwrap();
//! assert_eq!(back, v);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde::value::Value;

use serde::{Deserialize, Serialize};

mod parse;

/// Error produced by [`to_string`] / [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any [`Serialize`] type into a [`Value`] (used by [`json!`]).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
/// Infallible for the shim data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Parses JSON text and reconstructs a `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or when the parsed value does not
/// have the shape `T` expects.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supported subset: `null`, object literals `{ "key": expr, .. }`, array
/// literals `[expr, ..]` and any expression whose type implements the shim
/// `Serialize` trait. Unlike the real `serde_json::json!`, object/array
/// literals do not nest textually — bind the inner literal to a variable
/// first.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let entries: Vec<(String, $crate::Value)> = vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ];
        $crate::Value::Object(entries)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($value:expr) => {
        $crate::to_value(&$value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": [true, false, null]}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Value::Number(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        let reparsed: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f32, -2.25, 0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "k": 1.0f32, "s": "hi" });
        assert_eq!(v.to_string(), r#"{"k":1,"s":"hi"}"#);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1usize, 2usize]).to_string(), "[1,2]");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }
}
