//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Supports the subset used by the workspace's property tests: the
//! [`proptest!`] macro over functions with `arg in strategy` bindings,
//! [`Strategy`] implementations for numeric ranges, [`collection::vec`] and
//! the `prop_assert*` macros. Each property runs [`CASES`] deterministic
//! cases from a seed derived from the test name (no shrinking).
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[allow(dead_code)]
//!     fn squares_are_non_negative(x in -10.0f32..10.0) {
//!         prop_assert!(x * x >= 0.0);
//!     }
//! }
//! squares_are_non_negative();
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of deterministic cases each property runs.
pub const CASES: u32 = 64;

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for a property, seeded from its name so
/// distinct properties exercise distinct streams.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact `usize` or a
    /// `Range<usize>` of lengths (mirrors proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty length range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty length range");
            SizeRange {
                min: *range.start(),
                max: *range.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` (an exact `usize`
    /// or a range) with elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-style function running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::rng_for(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Shim for `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Shim for `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn floats_stay_in_range(x in -5.0f32..5.0) {
            prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn multiple_bindings_work(a in 0usize..10, b in 10usize..20) {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        use rand::Rng;
        let mut a = crate::rng_for("alpha");
        let mut b = crate::rng_for("beta");
        let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }
}
