//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset of the `rand` 0.8 API used by the workspace:
//! [`RngCore`], [`Rng`], [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom`].
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f32 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

/// A low-level source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits, backing
/// [`Rng::gen`]. (Stands in for `Standard: Distribution<T>`.)
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (floats are in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64.
    ///
    /// Note: the real `rand::rngs::StdRng` is ChaCha12-based, so seeded
    /// streams differ between the shim and the real crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0f32..7.5);
            assert!((-3.0..7.5).contains(&x));
            let i = rng.gen_range(-5isize..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_range_covers_small_int_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
