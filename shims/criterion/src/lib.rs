//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! A timing harness, not a statistics engine: each benchmark runs one warmup
//! iteration plus `sample_size` measured iterations and reports mean/min/max
//! wall-clock time. Good enough to spot coarse regressions and to keep the
//! `cargo bench` CLI contract (`--no-run`, `--bench <name>`) intact.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("demo");
//! group.sample_size(3);
//! group.bench_function("add", |b| b.iter(|| criterion::black_box(1 + 1)));
//! group.finish();
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computation whose result is unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a standalone benchmark (a group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measures `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over one warmup plus `sample_size` measured runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {group}/{id}: no samples (Bencher::iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "bench {group}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        samples.len()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; a real
            // statistical harness parses them, the shim just runs everything.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(4);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // one warmup + four measured runs
        assert_eq!(calls, 5);
    }
}
