//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! Both derives are deliberate **no-ops**: `#[derive(Serialize, Deserialize)]`
//! parses and compiles but generates no trait impl. Types that are actually
//! persisted implement the shim `serde` traits by hand next to their
//! definition; every other derive in the tree is inert metadata that keeps
//! the source identical to what it would be with the real serde.

#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
