//! Offline shim for the `serde` crate (see `shims/README.md`).
//!
//! Instead of serde's serializer/deserializer visitor machinery, this shim
//! (de)serializes through a single JSON-like [`Value`] data model:
//!
//! * [`Serialize`] — convert `self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`].
//!
//! The derive macros re-exported here are **no-ops** (see the
//! `serde_derive` shim); persisted types implement the traits by hand.
//!
//! ```
//! use serde::{Serialize, Value};
//!
//! let v = vec![1.0f32, 2.0].to_value();
//! assert_eq!(v, Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the shim's [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns [`DeError`] when the value has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {value:?}")))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {value:?}")))
    }
}

macro_rules! impl_deserialize_num {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {value:?}")))
            }
        }
    )*};
}
impl_deserialize_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {value:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
