//! The JSON-like data model shared by the `serde` and `serde_json` shims.

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entries if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an `Object` (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Renders the value as compact JSON text.
///
/// Non-finite numbers (which JSON cannot represent) render as `null`.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn renders_compact_json() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a\"b".to_string())),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"a\"b","xs":[1,2.5,null],"ok":true}"#
        );
    }

    #[test]
    fn get_finds_object_keys() {
        let v = Value::Object(vec![("k".to_string(), Value::Number(3.0))]);
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }
}
