//! Workspace-level umbrella package hosting the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//!
//! The actual library API lives in the [`nrsnn`] crate (re-exported here for
//! convenience).

#![deny(rustdoc::broken_intra_doc_links)]

pub use nrsnn;
