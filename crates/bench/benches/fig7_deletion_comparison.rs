//! Fig. 7 — comparison of all neural codings with and without weight scaling
//! against the proposed TTAS(5)+WS under spike deletion (CIFAR-10-like).

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    let levels = paper_deletion_probabilities();

    let unscaled = deletion_sweep(pipeline, &CodingKind::baselines(), &levels, false, &sweep)
        .expect("fig7 unscaled sweep");
    print_figure(
        "Fig. 7 (left): baselines without WS",
        &unscaled,
        "Deletion p",
    );

    let mut with_ws = CodingKind::baselines();
    with_ws.push(CodingKind::Ttas(5));
    let scaled =
        deletion_sweep(pipeline, &with_ws, &levels, true, &sweep).expect("fig7 scaled sweep");
    print_figure(
        "Fig. 7 (right): baselines + TTAS(5) with WS",
        &scaled,
        "Deletion p",
    );
}

/// Serial vs parallel wall-clock on the Fig. 7 grid (baselines + TTAS(5),
/// Table I's deletion points, weight scaling on).  The two runs produce
/// bit-identical points; only throughput differs.  On a multi-core host the
/// 4-thread run should be ≥1.5× the serial one.
fn bench_sweep_scaling(c: &mut Criterion) {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    let levels = nrsnn_noise::paper_table_deletion_points();
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(5));

    let run = |parallel: ParallelConfig| {
        DeletionSweep::new(&codings, &levels)
            .weight_scaling(true)
            .config(sweep)
            .parallel(parallel)
            .run(pipeline)
            .expect("fig7 scaling sweep")
    };
    assert_eq!(
        run(ParallelConfig::serial()),
        run(ParallelConfig::with_threads(4)),
        "parallel sweep must be bit-identical to serial"
    );

    let mut group = c.benchmark_group("fig7_sweep_scaling");
    group.sample_size(2);
    group.bench_function("sweep_serial", |b| b.iter(|| run(ParallelConfig::serial())));
    group.bench_function("sweep_parallel_4", |b| {
        b.iter(|| run(ParallelConfig::with_threads(4)))
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    bench_sweep_scaling(c);

    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let snn = pipeline.to_snn(&scaling).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = DeletionNoise::new(0.5).expect("noise");
    let kind = CodingKind::Ttas(5);
    let coding = kind.build();
    let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);

    let mut group = c.benchmark_group("fig7_comparison");
    group.sample_size(10);
    group.bench_function("inference_ttas5_ws_p0.5", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                .expect("simulate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
