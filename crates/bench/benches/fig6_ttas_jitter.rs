//! Fig. 6 — inference accuracy of TTFS and TTAS(t_a) under spike jitter on
//! the CIFAR-10-like dataset, showing how the burst averages the jitter out
//! as the target duration grows.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let codings = vec![
        CodingKind::Ttfs,
        CodingKind::Ttas(1),
        CodingKind::Ttas(2),
        CodingKind::Ttas(3),
        CodingKind::Ttas(4),
        CodingKind::Ttas(5),
        CodingKind::Ttas(10),
    ];
    let points = jitter_sweep(
        pipeline,
        &codings,
        &paper_jitter_intensities(),
        &bench_sweep_config(),
    )
    .expect("fig6 sweep");
    print_figure(
        "Fig. 6: TTFS vs TTAS(t_a) under jitter",
        &points,
        "Jitter sigma",
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let pipeline = cifar10_pipeline();
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = JitterNoise::new(2.0).expect("noise");

    let mut group = c.benchmark_group("fig6_ttas_jitter");
    group.sample_size(10);
    for duration in [1u32, 5, 10] {
        let kind = CodingKind::Ttas(duration);
        let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);
        let coding = kind.build();
        group.bench_function(format!("inference_ttas{duration}_sigma2"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| {
                snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                    .expect("simulate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
