//! Wire-protocol throughput: binary framing vs line-delimited JSON over the
//! same TCP front-end, request-at-a-time (batch 1).
//!
//! The served model is deliberately tiny (one linear layer, few time steps)
//! while the input vector is wide, so the per-request cost is dominated by
//! the protocol — encoding, parsing and socket traffic — rather than by
//! simulation.  That is the regime the binary framing exists for.
//!
//! Before any timing, every reply from both transports is asserted
//! **bit-identical** to the offline `simulate_with` reference: the wire
//! format is transport, never semantics.
//!
//! Reported into `BENCH_sim.json`: requests/s for each format, the binary
//! speedup, and mean bytes/request (request + reply) for each format.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench protocol_throughput
//! ```

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn_bench::record_bench_summary;
use nrsnn_runtime::derive_seed;
use nrsnn_serve::{
    binary, protocol, InferenceReply, ModelRegistry, NoiseSpec, Request, Response, ServedModel,
    Server, ServerConfig, TcpClient,
};
use nrsnn_snn::{CodingConfig, CodingKind, SimWorkspace, SnnLayer, SnnNetwork};
use nrsnn_tensor::Tensor;
use nrsnn_wire::encode_frame;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "wide-input-mlp";
const MASTER_SEED: u64 = 0xF0F0;
const INPUT_DIM: usize = 1024;
const CLASSES: usize = 10;
const TIME_STEPS: u32 = 12;
const REQUESTS: usize = 64;

fn toy_network() -> SnnNetwork {
    // Deterministic, structured weights: no RNG so the bench workload is
    // identical run to run.
    let weights: Vec<f32> = (0..CLASSES * INPUT_DIM)
        .map(|i| {
            let row = i / INPUT_DIM;
            let col = i % INPUT_DIM;
            (((row * 31 + col * 7) % 97) as f32 / 97.0 - 0.5) * 0.2
        })
        .collect();
    let bias: Vec<f32> = (0..CLASSES).map(|i| i as f32 * 0.01).collect();
    SnnNetwork::new(vec![SnnLayer::Linear {
        weights: Tensor::from_vec(weights, &[CLASSES, INPUT_DIM]).unwrap(),
        bias: Tensor::from_vec(bias, &[CLASSES]).unwrap(),
    }])
    .unwrap()
}

fn coding_config() -> CodingConfig {
    CodingConfig::new(TIME_STEPS, 1.0)
}

fn inputs() -> Vec<Vec<f32>> {
    (0..REQUESTS)
        .map(|r| {
            (0..INPUT_DIM)
                .map(|j| ((derive_seed(r as u64, j as u64) % 1000) as f32) / 1000.0)
                .collect()
        })
        .collect()
}

fn start_server() -> (Server, SocketAddr) {
    let mut registry = ModelRegistry::new();
    registry
        .insert(
            ServedModel::new(
                MODEL,
                toy_network(),
                CodingKind::Rate,
                coding_config(),
                NoiseSpec::Clean,
                1.0,
                MASTER_SEED,
            )
            .unwrap(),
        )
        .unwrap();
    let mut server = Server::start(
        registry,
        ServerConfig {
            workers: 1,
            max_batch: 1, // batch 1: the protocol tax is the subject
            batch_window: Duration::ZERO,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.serve_tcp(("127.0.0.1", 0)).expect("bind");
    (server, addr)
}

fn offline_reference(inputs: &[Vec<f32>]) -> Vec<(usize, Vec<u32>)> {
    let network = toy_network();
    let coding = CodingKind::Rate.build();
    let cfg = coding_config();
    let noise = NoiseSpec::Clean.build().unwrap();
    let mut ws = SimWorkspace::new();
    inputs
        .iter()
        .enumerate()
        .map(|(seed, input)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(MASTER_SEED, seed as u64));
            let outcome = network
                .simulate_with(
                    input,
                    coding.as_ref(),
                    &cfg,
                    noise.as_ref(),
                    &mut rng,
                    &mut ws,
                )
                .unwrap();
            let bits = ws.logits().iter().map(|l| l.to_bits()).collect();
            (outcome.predicted, bits)
        })
        .collect()
}

fn run_round(client: &mut TcpClient, inputs: &[Vec<f32>]) -> Vec<InferenceReply> {
    inputs
        .iter()
        .enumerate()
        .map(|(seed, input)| {
            client
                .infer_retrying(MODEL, input, seed as u64)
                .expect("infer")
        })
        .collect()
}

/// Mean bytes per request on each wire: encoded request + encoded reply,
/// measured with the exact encoders the client and server use.
fn bytes_per_request(inputs: &[Vec<f32>], replies: &[InferenceReply]) -> (f64, f64) {
    let mut json_total = 0usize;
    let mut binary_total = 0usize;
    for (seed, (input, reply)) in inputs.iter().zip(replies.iter()).enumerate() {
        let request = Request::Infer {
            model: MODEL.to_string(),
            seed: seed as u64,
            input: input.clone(),
        };
        let response = Response::Infer(reply.clone());
        // The JSON transport sends one newline-terminated line each way.
        json_total += protocol::encode_line(&request).len() + 1;
        json_total += protocol::encode_line(&response).len() + 1;
        binary_total += encode_frame(&binary::request_to_frame(&request))
            .unwrap()
            .len();
        binary_total += encode_frame(&binary::response_to_frame(&response))
            .unwrap()
            .len();
    }
    (
        json_total as f64 / inputs.len() as f64,
        binary_total as f64 / inputs.len() as f64,
    )
}

fn equality_gate(replies: &[InferenceReply], reference: &[(usize, Vec<u32>)], label: &str) {
    assert_eq!(replies.len(), reference.len());
    for (index, reply) in replies.iter().enumerate() {
        assert_eq!(
            reply.predicted, reference[index].0,
            "{label} request {index}"
        );
        let bits: Vec<u32> = reply.logits.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            bits, reference[index].1,
            "{label} request {index}: reply depends on the wire format"
        );
    }
}

fn throughput_report() {
    let inputs = inputs();
    let reference = offline_reference(&inputs);
    let (server, addr) = start_server();

    let mut json_client = TcpClient::connect(addr).expect("json connect");
    let mut binary_client = TcpClient::connect_binary(addr).expect("binary connect");

    // Equality gate before any timing.
    let json_replies = run_round(&mut json_client, &inputs);
    let binary_replies = run_round(&mut binary_client, &inputs);
    equality_gate(&json_replies, &reference, "json");
    equality_gate(&binary_replies, &reference, "binary");

    let (json_bytes, binary_bytes) = bytes_per_request(&inputs, &json_replies);

    let rounds = 8;
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(run_round(&mut json_client, &inputs));
    }
    let json_rps = (rounds * REQUESTS) as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..rounds {
        black_box(run_round(&mut binary_client, &inputs));
    }
    let binary_rps = (rounds * REQUESTS) as f64 / start.elapsed().as_secs_f64();

    let speedup = binary_rps / json_rps;
    println!(
        "\n==== Protocol throughput (batch 1, {INPUT_DIM}-wide input, {CLASSES}-class toy) ===="
    );
    println!(
        "{:<24}{:>14}{:>18}",
        "wire format", "requests/s", "bytes/request"
    );
    println!("{:<24}{:>14.1}{:>18.1}", "json lines", json_rps, json_bytes);
    println!(
        "{:<24}{:>14.1}{:>18.1}",
        "binary frames", binary_rps, binary_bytes
    );
    println!(
        "binary speedup: {speedup:.2}x requests/s, {:.2}x smaller on the wire\n",
        json_bytes / binary_bytes
    );

    record_bench_summary(
        "protocol_throughput",
        &[
            ("json_rps", json_rps),
            ("binary_rps", binary_rps),
            ("binary_speedup", speedup),
            ("json_bytes_per_request", json_bytes),
            ("binary_bytes_per_request", binary_bytes),
        ],
    );

    drop(json_client);
    drop(binary_client);
    server.shutdown();
}

fn bench(c: &mut Criterion) {
    throughput_report();

    let inputs = inputs();
    let (server, addr) = start_server();
    let mut json_client = TcpClient::connect(addr).expect("json connect");
    let mut binary_client = TcpClient::connect_binary(addr).expect("binary connect");

    let mut group = c.benchmark_group("protocol_throughput");
    group.sample_size(10);
    group.bench_function("json_64_requests", |b| {
        b.iter(|| black_box(run_round(&mut json_client, &inputs)))
    });
    group.bench_function("binary_64_requests", |b| {
        b.iter(|| black_box(run_round(&mut binary_client, &inputs)))
    });
    group.finish();

    drop(json_client);
    drop(binary_client);
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
