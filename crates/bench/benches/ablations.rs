//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * `ablation_ws_factor` — weight-scaling factor choice: none vs. fixed
//!   `C = 2` vs. matched `C = 1/(1−p)`;
//! * `ablation_ttas_duration` — saturation of TTAS robustness with the burst
//!   duration `t_a`;
//! * `ablation_threshold` — encoding-ceiling (θ) sensitivity, comparing our
//!   default θ = 1.0 with the paper's VGG16 values;
//! * `ablation_kernel` — PSC-kernel steepness for TTFS/TTAS (τ as a fraction
//!   of the window).

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablation_ws_factor() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    let p = 0.5;
    let noise = DeletionNoise::new(p).expect("noise");
    println!("\n==== Ablation: weight-scaling factor at deletion p = {p} ====");
    for (label, scaling) in [
        ("no scaling (C=1)", WeightScaling::none()),
        ("fixed C=2", WeightScaling::with_factor(2.0).expect("ws")),
        (
            "matched C=1/(1-p)",
            WeightScaling::for_deletion_probability(p).expect("ws"),
        ),
    ] {
        let summary = pipeline
            .evaluate_snn(
                CodingKind::Ttas(5),
                sweep.time_steps,
                &noise,
                &scaling,
                sweep.eval_samples,
                sweep.seed,
            )
            .expect("evaluate");
        println!("  {label:<22} accuracy {:.2}%", summary.accuracy_percent());
    }
}

fn ablation_ttas_duration() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    println!("\n==== Ablation: TTAS burst duration saturation (deletion p=0.5, jitter σ=2) ====");
    let deletion = DeletionNoise::new(0.5).expect("noise");
    let jitter = JitterNoise::new(2.0).expect("noise");
    for duration in [1u32, 2, 3, 5, 8, 10, 16] {
        let ws = WeightScaling::for_deletion_probability(0.5).expect("ws");
        let del = pipeline
            .evaluate_snn(
                CodingKind::Ttas(duration),
                sweep.time_steps,
                &deletion,
                &ws,
                sweep.eval_samples,
                sweep.seed,
            )
            .expect("evaluate");
        let jit = pipeline
            .evaluate_snn(
                CodingKind::Ttas(duration),
                sweep.time_steps,
                &jitter,
                &WeightScaling::none(),
                sweep.eval_samples,
                sweep.seed,
            )
            .expect("evaluate");
        println!(
            "  t_a = {duration:<3} deletion {:.2}%   jitter {:.2}%   spikes/inference {:.2e}",
            del.accuracy_percent(),
            jit.accuracy_percent(),
            del.mean_spikes_per_sample
        );
    }
}

fn ablation_threshold() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    println!("\n==== Ablation: encoding ceiling θ (clean accuracy vs spikes, rate coding) ====");
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let subset = pipeline.test_subset(sweep.eval_samples).expect("subset");
    for theta in [0.2f32, 0.4, 0.8, 1.0, 1.2] {
        let cfg = CodingConfig::new(sweep.time_steps, theta);
        let coding = CodingKind::Rate.build();
        let mut rng = StdRng::seed_from_u64(sweep.seed);
        let summary = snn
            .evaluate(
                &subset.inputs,
                &subset.labels,
                coding.as_ref(),
                &cfg,
                &IdentityTransform,
                &mut rng,
            )
            .expect("evaluate");
        println!(
            "  θ = {theta:<4} accuracy {:.2}%   spikes/inference {:.2e}",
            summary.accuracy_percent(),
            summary.mean_spikes_per_sample
        );
    }
}

fn ablation_kernel() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    println!("\n==== Ablation: TTFS kernel time constant τ/T under jitter σ=2 ====");
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let subset = pipeline.test_subset(sweep.eval_samples).expect("subset");
    let noise = JitterNoise::new(2.0).expect("noise");
    for fraction in [0.03f32, 0.05, 0.1, 0.2, 0.4] {
        let mut cfg = CodingConfig::new(sweep.time_steps, 1.0);
        cfg.ttfs_tau_fraction = fraction;
        let coding = CodingKind::Ttfs.build();
        let mut rng = StdRng::seed_from_u64(sweep.seed);
        let summary = snn
            .evaluate(
                &subset.inputs,
                &subset.labels,
                coding.as_ref(),
                &cfg,
                &noise,
                &mut rng,
            )
            .expect("evaluate");
        println!(
            "  τ/T = {fraction:<5} accuracy {:.2}%",
            summary.accuracy_percent()
        );
    }
}

fn bench(c: &mut Criterion) {
    ablation_ws_factor();
    ablation_ttas_duration();
    ablation_threshold();
    ablation_kernel();

    // Micro-benchmarks of the two counter-measures' overheads.
    let pipeline = cifar10_pipeline();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("conversion_with_ws", |b| {
        let ws = WeightScaling::for_deletion_probability(0.5).expect("ws");
        b.iter(|| pipeline.to_snn(&ws).expect("convert"))
    });
    group.bench_function("conversion_without_ws", |b| {
        b.iter(|| pipeline.to_snn(&WeightScaling::none()).expect("convert"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
