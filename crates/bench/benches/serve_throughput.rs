//! Serving throughput: dynamic batching vs one-request-per-call, on the
//! Fig. 7 workload (CIFAR-10-like pipeline, TTAS(5) with weight scaling
//! under 50 % spike deletion).
//!
//! * **request-at-a-time** — the naive serving loop the repo offered before
//!   `nrsnn-serve`: every request is one `SnnNetwork::simulate` call with a
//!   one-shot workspace.
//! * **dynamic batching** — the real server: 4 concurrent in-process
//!   clients, one batcher worker with a warm `SimWorkspace`, same-model
//!   requests coalesced into batched simulation calls.
//!
//! Every server reply is asserted **bit-identical** to the request-at-a-time
//! reference before any timing happens — batching buys throughput, never
//! different results.  A single batcher worker is used so the comparison
//! isolates the batching/workspace effect from thread-level parallelism.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench serve_throughput
//! ```

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use nrsnn_serve::{ModelRegistry, ModelSpec, NoiseSpec, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "fig7-ttas5-ws";
const MASTER_SEED: u64 = 2021;
const REQUESTS: usize = 48;
const CLIENTS: usize = 4;

struct Workload {
    network: SnnNetwork,
    coding: Box<dyn NeuralCoding>,
    cfg: CodingConfig,
    noise: DeletionNoise,
    inputs: Vec<Vec<f32>>,
}

fn workload() -> Workload {
    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let kind = CodingKind::Ttas(5);
    let test_inputs = &pipeline.dataset().test.inputs;
    let rows = test_inputs.dims()[0];
    let inputs = (0..REQUESTS)
        .map(|i| test_inputs.row_slice(i % rows).expect("row").to_vec())
        .collect();
    Workload {
        network: pipeline.to_snn(&scaling).expect("convert"),
        coding: kind.build(),
        cfg: pipeline.coding_config(kind, bench_sweep_config().time_steps),
        noise: DeletionNoise::new(0.5).expect("noise"),
        inputs,
    }
}

/// Registers the workload as a servable model, round-tripping through the
/// serialized `ModelSpec` (the same path `serve_loadgen` and deployments
/// use).
fn registry(w: &Workload) -> ModelRegistry {
    let spec = ModelSpec::from_network(
        MODEL,
        &w.network,
        CodingKind::Ttas(5),
        &w.cfg,
        NoiseSpec::Deletion(0.5),
        2.0,
        MASTER_SEED,
    );
    let mut registry = ModelRegistry::new();
    registry
        .load_json(&spec.to_json())
        .expect("register model spec");
    registry
}

/// The naive serving loop: one allocate-a-workspace `simulate` call per
/// request, seeds derived exactly as the server derives them.
fn run_request_at_a_time(w: &Workload) -> Vec<(usize, Vec<u32>)> {
    w.inputs
        .iter()
        .enumerate()
        .map(|(seed, input)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(MASTER_SEED, seed as u64));
            let outcome = w
                .network
                .simulate(input, w.coding.as_ref(), &w.cfg, &w.noise, &mut rng)
                .expect("simulate");
            let bits = outcome.logits.iter().map(|l| l.to_bits()).collect();
            (outcome.predicted, bits)
        })
        .collect()
}

/// Drives the running server with `CLIENTS` concurrent in-process clients
/// and returns the replies as `(request index, predicted, logit bits)`.
fn run_server_round(server: &Server, w: &Workload) -> Vec<(usize, usize, Vec<u32>)> {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client_index| {
            let client = server.client();
            let inputs: Vec<(usize, Vec<f32>)> = w
                .inputs
                .iter()
                .enumerate()
                .skip(client_index)
                .step_by(CLIENTS)
                .map(|(index, input)| (index, input.clone()))
                .collect();
            std::thread::spawn(move || {
                inputs
                    .into_iter()
                    .map(|(index, input)| {
                        let reply = client
                            .infer_retrying(MODEL, &input, index as u64)
                            .expect("serve");
                        let bits = reply.logits.iter().map(|l| l.to_bits()).collect();
                        (index, reply.predicted, bits)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut replies: Vec<(usize, usize, Vec<u32>)> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    replies.sort_by_key(|(index, _, _)| *index);
    replies
}

fn throughput_report(w: &Workload) -> Server {
    let server = Server::start(
        registry(w),
        ServerConfig {
            workers: 1,
            max_batch: 16,
            batch_window: Duration::ZERO,
            queue_capacity: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("start server");

    // Equality gate before timing: every served reply must be bit-identical
    // to the request-at-a-time reference.
    let reference = run_request_at_a_time(w);
    let served = run_server_round(&server, w);
    assert_eq!(served.len(), reference.len());
    for (index, predicted, bits) in &served {
        assert_eq!(*predicted, reference[*index].0, "request {index}");
        assert_eq!(
            *bits, reference[*index].1,
            "request {index} logits diverged"
        );
    }

    let rounds = 3;
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(run_request_at_a_time(w));
    }
    let unbatched_rps = (rounds * REQUESTS) as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..rounds {
        black_box(run_server_round(&server, w));
    }
    let batched_rps = (rounds * REQUESTS) as f64 / start.elapsed().as_secs_f64();

    let stats = server.stats();
    let speedup = batched_rps / unbatched_rps;
    println!("\n==== Serving throughput (fig7 workload: TTAS(5)+WS, deletion p=0.5) ====");
    println!("{:<32}{:>14}", "path", "requests/s");
    println!(
        "{:<32}{:>14.1}",
        "request-at-a-time (simulate)", unbatched_rps
    );
    println!(
        "{:<32}{:>14.1}",
        format!("dynamic batching ({CLIENTS} clients)"),
        batched_rps
    );
    println!("dynamic batching speedup: {speedup:.2}x");
    println!(
        "served {} requests in {} batches (mean batch {:.1}, p50 {} us, p99 {} us, {:.0} spikes/inf)\n",
        stats.requests_served,
        stats.batches,
        stats.mean_batch_size,
        stats.p50_latency_us,
        stats.p99_latency_us,
        stats.spikes_per_inference,
    );

    record_bench_summary(
        "serve_throughput",
        &[
            ("unbatched_rps", unbatched_rps),
            ("batched_rps", batched_rps),
            ("batching_speedup", speedup),
            ("mean_batch_size", stats.mean_batch_size),
            ("p50_latency_us", stats.p50_latency_us as f64),
            ("p99_latency_us", stats.p99_latency_us as f64),
            ("spikes_per_inference", stats.spikes_per_inference),
        ],
    );
    server
}

fn bench(c: &mut Criterion) {
    let w = workload();
    let server = throughput_report(&w);

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("request_at_a_time_48", |b| {
        b.iter(|| black_box(run_request_at_a_time(&w)))
    });
    group.bench_function("dynamic_batching_48", |b| {
        b.iter(|| black_box(run_server_round(&server, &w)))
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
