//! Table I — accuracy and number of spikes under spike deletion
//! (clean / 0.2 / 0.5 / 0.8) for every coding + weight scaling on the
//! MNIST-like, CIFAR-10-like and CIFAR-100-like datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar100_pipeline, cifar10_pipeline, mnist_pipeline};
use nrsnn_noise::paper_table_deletion_points;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_table() {
    let sweep = bench_sweep_config();
    let levels = paper_table_deletion_points();
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(5));

    let datasets: Vec<(&str, &TrainedPipeline)> = vec![
        ("mnist-like", mnist_pipeline()),
        ("cifar10-like", cifar10_pipeline()),
        ("cifar100-like", cifar100_pipeline()),
    ];

    let mut rows = Vec::new();
    for (name, pipeline) in datasets {
        println!(
            "{name}: DNN test accuracy {:.1}%",
            pipeline.dnn_test_accuracy() * 100.0
        );
        let points =
            deletion_sweep(pipeline, &codings, &levels, true, &sweep).expect("table1 sweep");
        for &coding in &codings {
            rows.push(Table1Row::from_points(name, &points, coding));
        }
    }
    println!("\n{}", format_table1(&rows, &levels));
}

/// Serial vs parallel wall-clock on the Table I MNIST-like grid.  Results
/// are bit-identical; on a multi-core host the 4-thread run should be
/// ≥1.5× the serial one.
fn bench_sweep_scaling(c: &mut Criterion) {
    let pipeline = mnist_pipeline();
    let sweep = bench_sweep_config();
    let levels = paper_table_deletion_points();
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(5));

    let run = |parallel: ParallelConfig| {
        DeletionSweep::new(&codings, &levels)
            .weight_scaling(true)
            .config(sweep)
            .parallel(parallel)
            .run(pipeline)
            .expect("table1 scaling sweep")
    };
    assert_eq!(
        run(ParallelConfig::serial()),
        run(ParallelConfig::with_threads(4)),
        "parallel sweep must be bit-identical to serial"
    );

    let mut group = c.benchmark_group("table1_sweep_scaling");
    group.sample_size(2);
    group.bench_function("sweep_serial", |b| b.iter(|| run(ParallelConfig::serial())));
    group.bench_function("sweep_parallel_4", |b| {
        b.iter(|| run(ParallelConfig::with_threads(4)))
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    bench_sweep_scaling(c);

    let pipeline = mnist_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let snn = pipeline.to_snn(&scaling).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = DeletionNoise::new(0.5).expect("noise");
    let kind = CodingKind::Ttas(5);
    let coding = kind.build();
    let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);

    let mut group = c.benchmark_group("table1_deletion");
    group.sample_size(10);
    group.bench_function("mnist_inference_ttas5_ws_p0.5", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                .expect("simulate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
