//! Thread-scaling study of the sweep execution engine.
//!
//! Runs the Table I MNIST-like deletion grid (5 codings × 4 levels ×
//! `eval_samples` samples) at 1, 2, 4 and 8 worker threads, verifies that
//! every run returns bit-identical [`SweepPoint`]s, and reports throughput
//! (grid cells per second) and speedup over the serial reference.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench parallel_scaling
//! NRSNN_THREADS=4 cargo bench -p nrsnn-bench --bench parallel_scaling
//! ```
//!
//! Expected shape on an N-core host: near-linear speedup up to N threads
//! (≥1.5× at 4 threads on ≥2 physical cores), flat beyond.  On a single
//! core all rows time alike — the engine never pays for parallelism with
//! changed results, only with scheduling overhead in the few-percent range.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, mnist_pipeline};
use nrsnn_noise::paper_table_deletion_points;

fn grid_codings() -> Vec<CodingKind> {
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(5));
    codings
}

fn run_grid(parallel: ParallelConfig) -> Vec<SweepPoint> {
    DeletionSweep::new(&grid_codings(), &paper_table_deletion_points())
        .weight_scaling(true)
        .config(bench_sweep_config())
        .parallel(parallel)
        .run(mnist_pipeline())
        .expect("scaling sweep")
}

fn scaling_report() {
    let sweep = bench_sweep_config();
    let cells = grid_codings().len() * paper_table_deletion_points().len() * sweep.eval_samples;

    println!("\n==== Sweep engine thread scaling (Table I grid, {cells} grid cells) ====");
    println!(
        "host parallelism: {} | NRSNN_THREADS: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::var("NRSNN_THREADS").unwrap_or_else(|_| "unset".to_string()),
    );

    let reference = run_grid(ParallelConfig::serial());
    let mut serial_secs = None;
    println!(
        "{:<10}{:>12}{:>16}{:>10}",
        "threads", "seconds", "cells/s", "speedup"
    );
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let points = run_grid(ParallelConfig::with_threads(threads));
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            points, reference,
            "{threads}-thread run diverged from serial"
        );
        let serial = *serial_secs.get_or_insert(secs);
        println!(
            "{threads:<10}{secs:>12.3}{:>16.1}{:>9.2}x",
            cells as f64 / secs,
            serial / secs,
        );
    }
    println!("all runs bit-identical to the serial reference ✓\n");
}

fn bench(c: &mut Criterion) {
    scaling_report();

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(2);
    group.bench_function("table1_grid_serial", |b| {
        b.iter(|| run_grid(ParallelConfig::serial()))
    });
    group.bench_function("table1_grid_auto", |b| {
        b.iter(|| run_grid(ParallelConfig::auto()))
    });
    group.bench_function("table1_grid_4_threads", |b| {
        b.iter(|| run_grid(ParallelConfig::with_threads(4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
