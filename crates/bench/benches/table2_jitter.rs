//! Table II — accuracy under spike jitter (clean / 1.0 / 2.0 / 3.0) for the
//! temporal codings and TTAS on the MNIST-like, CIFAR-10-like and
//! CIFAR-100-like datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar100_pipeline, cifar10_pipeline, mnist_pipeline};
use nrsnn_noise::paper_table_jitter_points;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_table() {
    let sweep = bench_sweep_config();
    let levels = paper_table_jitter_points();
    let codings = vec![
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(10),
    ];

    let datasets: Vec<(&str, &TrainedPipeline)> = vec![
        ("mnist-like", mnist_pipeline()),
        ("cifar10-like", cifar10_pipeline()),
        ("cifar100-like", cifar100_pipeline()),
    ];

    let mut rows = Vec::new();
    for (name, pipeline) in datasets {
        let points = jitter_sweep(pipeline, &codings, &levels, &sweep).expect("table2 sweep");
        for &coding in &codings {
            rows.push(Table2Row::from_points(name, &points, coding));
        }
    }
    println!("\n{}", format_table2(&rows, &levels));
}

fn bench(c: &mut Criterion) {
    regenerate_table();

    let pipeline = mnist_pipeline();
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = JitterNoise::new(2.0).expect("noise");
    let kind = CodingKind::Ttas(10);
    let coding = kind.build();
    let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);

    let mut group = c.benchmark_group("table2_jitter");
    group.sample_size(10);
    group.bench_function("mnist_inference_ttas10_sigma2", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                .expect("simulate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
