//! Simulation-engine throughput: allocating reference path vs the
//! allocation-free workspace path, on the Fig. 7 deletion-sweep workload
//! (CIFAR-10-like pipeline, TTAS(5) with weight scaling under 50 % spike
//! deletion).
//!
//! Both paths simulate the same samples with the same per-sample derived
//! seeds and are asserted to produce identical predictions and spike counts
//! before any timing happens — the workspace path buys throughput, never
//! different results.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench sim_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 24;
const SEED: u64 = 2021;

struct Workload {
    network: SnnNetwork,
    coding: Box<dyn NeuralCoding>,
    cfg: CodingConfig,
    noise: DeletionNoise,
}

fn workload() -> Workload {
    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let kind = CodingKind::Ttas(5);
    Workload {
        network: pipeline.to_snn(&scaling).expect("convert"),
        coding: kind.build(),
        cfg: pipeline.coding_config(kind, bench_sweep_config().time_steps),
        noise: DeletionNoise::new(0.5).expect("noise"),
    }
}

/// The seed engine's inner loop: allocate-per-call simulation, one fresh
/// RNG per sample.
fn run_allocating(w: &Workload) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    let mut correct_spikes = (0usize, 0usize);
    for sample in 0..SAMPLES {
        let row = inputs.row(sample).expect("row");
        let mut rng = StdRng::seed_from_u64(derive_seed(SEED, sample as u64));
        let outcome = w
            .network
            .simulate_unbuffered(
                row.as_slice(),
                w.coding.as_ref(),
                &w.cfg,
                &w.noise,
                &mut rng,
            )
            .expect("simulate");
        correct_spikes.0 += outcome.predicted;
        correct_spikes.1 += outcome.total_spikes;
    }
    correct_spikes
}

/// The workspace engine's inner loop: one reusable workspace, zero
/// steady-state allocations per sample.
fn run_workspace(
    w: &Workload,
    ws: &mut SimWorkspace,
    out: &mut Vec<BatchOutcome>,
) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    w.network
        .simulate_batch(
            inputs,
            0..SAMPLES,
            w.coding.as_ref(),
            &w.cfg,
            &w.noise,
            |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
            ws,
            out,
        )
        .expect("simulate_batch");
    out.iter()
        .fold((0, 0), |(p, s), o| (p + o.predicted, s + o.total_spikes))
}

fn throughput_report(w: &Workload) {
    let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
    let mut out = Vec::new();

    // Equality gate before timing: both paths must agree exactly.
    let reference = run_allocating(w);
    let workspace = run_workspace(w, &mut ws, &mut out);
    assert_eq!(
        reference, workspace,
        "workspace path diverged from the allocating reference"
    );

    let time = |mut f: Box<dyn FnMut() -> (usize, usize)>| -> f64 {
        let rounds = 5;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
    };
    let alloc_rate = time(Box::new(|| run_allocating(w)));
    let ws_rate = time(Box::new(|| run_workspace(w, &mut ws, &mut out)));

    println!("\n==== Simulation throughput (fig7 workload: TTAS(5)+WS, deletion p=0.5) ====");
    println!("{:<24}{:>16}", "path", "samples/s");
    println!("{:<24}{:>16.1}", "allocating (reference)", alloc_rate);
    println!("{:<24}{:>16.1}", "workspace (batched)", ws_rate);
    println!("workspace speedup: {:.2}x\n", ws_rate / alloc_rate);

    // Machine-readable perf trajectory, tracked across PRs.
    record_bench_summary(
        "sim_throughput",
        &[
            ("allocating_samples_per_s", alloc_rate),
            ("workspace_samples_per_s", ws_rate),
            ("workspace_speedup", ws_rate / alloc_rate),
        ],
    );
}

fn bench(c: &mut Criterion) {
    let w = workload();
    throughput_report(&w);

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("allocating_24_samples", |b| {
        b.iter(|| black_box(run_allocating(&w)))
    });
    group.bench_function("workspace_24_samples", |b| {
        let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
        let mut out = Vec::new();
        b.iter(|| black_box(run_workspace(&w, &mut ws, &mut out)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
