//! Simulation-engine throughput: allocating reference path vs the
//! allocation-free workspace path, on the Fig. 7 deletion-sweep workload
//! (CIFAR-10-like pipeline, TTAS(5) with weight scaling under 50 % spike
//! deletion) — plus the per-ISA SIMD backend comparison on the
//! kernel-bound clean MLP workload.
//!
//! Both paths simulate the same samples with the same per-sample derived
//! seeds and are asserted to produce identical predictions and spike counts
//! before any timing happens — the workspace path buys throughput, never
//! different results.  The SIMD section applies the same discipline along
//! the instruction-set axis: every available backend (scalar / SSE2 /
//! AVX2) must produce **byte-equal logits** for every sample before it is
//! timed.  On AVX2 hosts the dense forward pass AND the rate/phase
//! end-to-end simulations must clear a 1.5x speedup floor over the
//! forced-scalar kernels — the end-to-end floor became enforceable once
//! the coding layer itself went lane-blocked, removing the scalar
//! encode/decode term from Amdahl's denominator.  A third section times
//! the coding layer in isolation: per-coding, per-ISA encode-only and
//! decode-only rows, equality-gated train-for-train before timing.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench sim_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, mnist_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use nrsnn_snn::{CodingScratch, SpikeRaster};
use nrsnn_tensor::simd::{available_backends, set_backend, SimdBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 24;
const SEED: u64 = 2021;
/// Minimum wall-clock per measurement window of the SIMD comparison, so
/// fast backends still accumulate a stable measurement.
const SIMD_MIN_TIME_S: f64 = 0.25;
/// Measurement windows per timed (workload x backend) cell; the best
/// window wins (see [`best_rates`]).
const SIMD_REPEATS: usize = 3;

/// Best-of-[`SIMD_REPEATS`] throughput per backend, with the measurement
/// windows interleaved round-robin across backends.  Each window runs `f`
/// repeatedly (under the window's backend) until [`SIMD_MIN_TIME_S`] of
/// wall clock has accumulated, and the highest observed rate per backend
/// is kept.  On a shared host, interference can only ever slow a window
/// down — never speed it up — so the max over several short windows
/// estimates the achievable rate far more robustly than one long window,
/// which averages the interference in.  Interleaving matters for the same
/// reason: a multi-second slow patch that lands while one backend owns
/// the clock would silently bias every ratio against it, whereas
/// round-robin windows spread any drift across all backends.  The speedup
/// floors below gate on ratios of these estimates.
fn best_rates(
    isas: &[SimdBackend],
    per_round: usize,
    mut f: impl FnMut(),
) -> Vec<(SimdBackend, f64)> {
    let mut best = vec![0.0f64; isas.len()];
    for _ in 0..SIMD_REPEATS {
        for (slot, &isa) in best.iter_mut().zip(isas) {
            assert_eq!(set_backend(isa), isa, "requested backend must stick");
            let start = Instant::now();
            let mut rounds = 0usize;
            while start.elapsed().as_secs_f64() < SIMD_MIN_TIME_S {
                f();
                rounds += 1;
            }
            let rate = (rounds * per_round) as f64 / start.elapsed().as_secs_f64();
            *slot = slot.max(rate);
        }
    }
    isas.iter().copied().zip(best).collect()
}

struct Workload {
    network: SnnNetwork,
    coding: Box<dyn NeuralCoding>,
    cfg: CodingConfig,
    noise: DeletionNoise,
}

fn workload() -> Workload {
    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let kind = CodingKind::Ttas(5);
    Workload {
        network: pipeline.to_snn(&scaling).expect("convert"),
        coding: kind.build(),
        cfg: pipeline.coding_config(kind, bench_sweep_config().time_steps),
        noise: DeletionNoise::new(0.5).expect("noise"),
    }
}

/// The seed engine's inner loop: allocate-per-call simulation, one fresh
/// RNG per sample.
fn run_allocating(w: &Workload) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    let mut correct_spikes = (0usize, 0usize);
    for sample in 0..SAMPLES {
        let row = inputs.row(sample).expect("row");
        let mut rng = StdRng::seed_from_u64(derive_seed(SEED, sample as u64));
        let outcome = w
            .network
            .simulate_unbuffered(
                row.as_slice(),
                w.coding.as_ref(),
                &w.cfg,
                &w.noise,
                &mut rng,
            )
            .expect("simulate");
        correct_spikes.0 += outcome.predicted;
        correct_spikes.1 += outcome.total_spikes;
    }
    correct_spikes
}

/// The workspace engine's inner loop: one reusable workspace, zero
/// steady-state allocations per sample.
fn run_workspace(
    w: &Workload,
    ws: &mut SimWorkspace,
    out: &mut Vec<BatchOutcome>,
) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    w.network
        .simulate_batch(
            inputs,
            0..SAMPLES,
            w.coding.as_ref(),
            &w.cfg,
            &w.noise,
            |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
            ws,
            out,
        )
        .expect("simulate_batch");
    out.iter()
        .fold((0, 0), |(p, s), o| (p + o.predicted, s + o.total_spikes))
}

fn throughput_report(w: &Workload) {
    let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
    let mut out = Vec::new();

    // Equality gate before timing: both paths must agree exactly.
    let reference = run_allocating(w);
    let workspace = run_workspace(w, &mut ws, &mut out);
    assert_eq!(
        reference, workspace,
        "workspace path diverged from the allocating reference"
    );

    let time = |mut f: Box<dyn FnMut() -> (usize, usize)>| -> f64 {
        let rounds = 5;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
    };
    let alloc_rate = time(Box::new(|| run_allocating(w)));
    let ws_rate = time(Box::new(|| run_workspace(w, &mut ws, &mut out)));

    println!("\n==== Simulation throughput (fig7 workload: TTAS(5)+WS, deletion p=0.5) ====");
    println!("{:<24}{:>16}", "path", "samples/s");
    println!("{:<24}{:>16.1}", "allocating (reference)", alloc_rate);
    println!("{:<24}{:>16.1}", "workspace (batched)", ws_rate);
    println!("workspace speedup: {:.2}x\n", ws_rate / alloc_rate);

    // Machine-readable perf trajectory, tracked across PRs.
    record_bench_summary(
        "sim_throughput",
        &[
            ("allocating_samples_per_s", alloc_rate),
            ("workspace_samples_per_s", ws_rate),
            ("workspace_speedup", ws_rate / alloc_rate),
        ],
    );
}

/// Per-ISA throughput of the SIMD dispatch on the rate/phase dense-path
/// workload: the MNIST-like MLP (784->256->128->10, pure `matvec`) under
/// the clean condition (`p = 0`, so decode feeds the layers dense
/// activation vectors and the dense kernel branch runs every layer).
///
/// Two measurements per backend, both behind byte-equality gates:
///
/// 1. **End-to-end simulation** (encode + decode + kernels + everything):
///    the scalar backend is simulated first as the reference, and every
///    other backend must reproduce its logits byte-for-byte on all
///    samples before it is timed.  Gated to >= 1.5x AVX2-over-scalar for
///    both codings: with the coding layer lane-blocked (counts, bit
///    patterns and ratios computed 8 neurons per block, only the
///    variable-length train materialisation left scalar), the end-to-end
///    path no longer hides behind Amdahl's law.
/// 2. **Dense kernel pass** ([`SnnNetwork::analog_forward`], the exact
///    matvec sequence the dense branch runs per layer, on the converted
///    weights): gated to >= 1.5x AVX2-over-scalar — this is the part the
///    dispatch machinery exists for, and a floor here fails loudly if a
///    future refactor quietly routes the hot path back through portable
///    code.
/// 3. **Coding microbenches**: encode-only (`encode_raster_into`) and
///    decode-only (`decode_active_into`) rows per coding and per ISA on
///    the 784-wide input rows, equality-gated train-for-train and
///    bit-for-bit against the scalar backend.  These isolate the coding
///    layer's own speedup from the kernel-dominated end-to-end number.
fn simd_throughput_report() {
    let pipeline = mnist_pipeline();
    let time_steps = bench_sweep_config().time_steps;
    let scaling = WeightScaling::for_deletion_probability(0.0).expect("ws");
    let noise = DeletionNoise::new(0.0).expect("noise");
    let isas = available_backends();
    let previous = nrsnn_tensor::simd::active_backend();
    let network = pipeline
        .to_snn(&scaling)
        .expect("convert")
        .with_sparsity(SparsityPolicy::Dense);
    let inputs = &pipeline.dataset().test.inputs;

    let mut entries: Vec<(String, f64)> = Vec::new();
    // Floor violations are collected and raised only after the whole report
    // (including the coding microbenches) has printed, so a regression
    // always comes with the numbers needed to diagnose it.
    let mut floor_failures: Vec<String> = Vec::new();
    println!("\n==== SIMD backend throughput (MLP dense path, clean, per ISA) ====");
    println!(
        "{:<16}{:<10}{:>14}{:>12}",
        "workload", "backend", "samples/s", "speedup"
    );
    for kind in [CodingKind::Rate, CodingKind::Phase] {
        let coding = kind.build();
        let cfg = pipeline.coding_config(kind, time_steps);
        let mut ws = SimWorkspace::for_network(&network, &cfg);

        // Byte-equality gate: one logits digest per sample, per backend.
        let digest = |ws: &mut SimWorkspace| -> Vec<Vec<u32>> {
            let mut seen = Vec::new();
            network
                .simulate_batch_each(
                    inputs,
                    0..SAMPLES,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                    ws,
                    |_, _, ws| seen.push(ws.logits().iter().map(|v| v.to_bits()).collect()),
                )
                .expect("simd equality gate");
            seen
        };
        assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
        let reference = digest(&mut ws);

        for &isa in &isas {
            assert_eq!(set_backend(isa), isa, "requested backend must stick");
            assert_eq!(
                digest(&mut ws),
                reference,
                "{}: {} logits diverged from the scalar reference",
                kind.label(),
                isa.name()
            );
        }
        let mut out = Vec::new();
        let rates = best_rates(&isas, SAMPLES, || {
            network
                .simulate_batch(
                    inputs,
                    0..SAMPLES,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                    &mut ws,
                    &mut out,
                )
                .expect("simd timing run");
            black_box(&out);
        });

        let label = kind.label().to_lowercase();
        let scalar_rate = rates[0].1;
        for &(isa, rate) in &rates {
            let speedup = rate / scalar_rate;
            println!(
                "{:<16}{:<10}{:>14.1}{:>11.2}x",
                format!("{label} e2e"),
                isa.name(),
                rate,
                speedup
            );
            entries.push((format!("{label}_{}_samples_per_s", isa.name()), rate));
            if isa != SimdBackend::Scalar {
                entries.push((format!("{label}_{}_speedup_vs_scalar", isa.name()), speedup));
            }
            if isa == SimdBackend::Avx2 && speedup < 1.5 {
                floor_failures.push(format!(
                    "{label} e2e: AVX2 speedup {speedup:.2}x < 1.5x floor"
                ));
            }
        }
    }

    // Dense kernel pass: the per-layer matvec sequence both codings run on
    // their dense branch, timed in isolation on the same samples.
    let forward_digest = || -> Vec<Vec<u32>> {
        (0..SAMPLES)
            .map(|sample| {
                let row = inputs.row(sample).expect("row");
                network
                    .analog_forward(row.as_slice())
                    .expect("analog forward")
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };
    assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
    let forward_reference = forward_digest();
    for &isa in &isas {
        assert_eq!(set_backend(isa), isa, "requested backend must stick");
        assert_eq!(
            forward_digest(),
            forward_reference,
            "{} dense forward diverged from the scalar reference",
            isa.name()
        );
    }
    let kernel_rates = best_rates(&isas, SAMPLES, || {
        for sample in 0..SAMPLES {
            let row = inputs.row(sample).expect("row");
            black_box(network.analog_forward(row.as_slice()).expect("timing"));
        }
    });
    let kernel_scalar = kernel_rates[0].1;
    for &(isa, rate) in &kernel_rates {
        let speedup = rate / kernel_scalar;
        println!(
            "{:<16}{:<10}{:>14.1}{:>11.2}x",
            "dense forward",
            isa.name(),
            rate,
            speedup
        );
        entries.push((format!("dense_forward_{}_samples_per_s", isa.name()), rate));
        if isa != SimdBackend::Scalar {
            entries.push((
                format!("dense_forward_{}_speedup_vs_scalar", isa.name()),
                speedup,
            ));
        }
        if isa == SimdBackend::Avx2 && speedup < 1.5 {
            floor_failures.push(format!(
                "dense forward: AVX2 speedup {speedup:.2}x < 1.5x floor"
            ));
        }
    }

    // Coding-layer microbenches: block encode and decode in isolation.
    coding_micro_report(pipeline, time_steps, &isas, &mut entries);
    assert_eq!(set_backend(previous), previous);

    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_bench_summary("simd_throughput", &borrowed);
    assert!(
        floor_failures.is_empty(),
        "SIMD speedup floors violated:\n  {}",
        floor_failures.join("\n  ")
    );
}

/// Encode-only and decode-only rows per coding, per ISA, on the MLP's
/// 784-wide input rows: `encode_raster_into` (block encode into a reused
/// raster + scratch) and `decode_active_into` (block decode of the encoded
/// rasters).  Every ISA is equality-gated — trains and decoded bits must
/// match the scalar backend exactly — before it is timed.  Keys land in
/// the same `simd_throughput` summary section as the end-to-end rows.
fn coding_micro_report(
    pipeline: &TrainedPipeline,
    time_steps: u32,
    isas: &[SimdBackend],
    entries: &mut Vec<(String, f64)>,
) {
    let inputs = &pipeline.dataset().test.inputs;
    println!("\n==== Coding-layer microbenches (784-wide rows, per ISA) ====");
    println!(
        "{:<16}{:<10}{:>14}{:>12}",
        "workload", "backend", "rows/s", "speedup"
    );
    let kinds = [
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ];
    for kind in kinds {
        let coding = kind.build();
        let cfg = pipeline.coding_config(kind, time_steps);
        let key = kind.label().to_lowercase().replace(['(', ')'], "");
        let rows: Vec<&[f32]> = (0..SAMPLES)
            .map(|s| inputs.row_slice(s).expect("row"))
            .collect();
        let mut scratch = CodingScratch::new();
        let mut raster = SpikeRaster::new(0, 1);
        let mut decoded = Vec::new();
        let mut active = Vec::new();
        let mut dscratch = Vec::new();

        // Scalar reference: encoded rasters and their decoded bits.
        assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
        let reference: Vec<SpikeRaster> = rows
            .iter()
            .map(|row| {
                coding.encode_raster_into(row, &cfg, &mut raster, &mut scratch);
                raster.clone()
            })
            .collect();
        let reference_bits: Vec<Vec<u32>> = reference
            .iter()
            .map(|r| {
                coding.decode_active_into(r, &cfg, &mut decoded, &mut active, &mut dscratch);
                decoded.iter().map(|v| v.to_bits()).collect()
            })
            .collect();

        for &isa in isas {
            assert_eq!(set_backend(isa), isa, "requested backend must stick");
            // Equality gates before timing.
            for (row, expected) in rows.iter().zip(&reference) {
                coding.encode_raster_into(row, &cfg, &mut raster, &mut scratch);
                assert_eq!(
                    &raster,
                    expected,
                    "{}: {} block encode diverged from scalar",
                    kind.label(),
                    isa.name()
                );
            }
            for (r, expected) in reference.iter().zip(&reference_bits) {
                coding.decode_active_into(r, &cfg, &mut decoded, &mut active, &mut dscratch);
                let got: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    &got,
                    expected,
                    "{}: {} block decode diverged from scalar",
                    kind.label(),
                    isa.name()
                );
            }
        }
        let encode_rates = best_rates(isas, SAMPLES, || {
            for row in &rows {
                coding.encode_raster_into(row, &cfg, &mut raster, &mut scratch);
                black_box(&raster);
            }
        });
        let decode_rates = best_rates(isas, SAMPLES, || {
            for r in &reference {
                coding.decode_active_into(r, &cfg, &mut decoded, &mut active, &mut dscratch);
                black_box(&decoded);
            }
        });
        for (op, rates) in [("encode", &encode_rates), ("decode", &decode_rates)] {
            let scalar_rate = rates[0].1;
            for &(isa, rate) in rates {
                let speedup = rate / scalar_rate;
                println!(
                    "{:<16}{:<10}{:>14.1}{:>11.2}x",
                    format!("{key} {op}"),
                    isa.name(),
                    rate,
                    speedup
                );
                entries.push((format!("{op}_{key}_{}_rows_per_s", isa.name()), rate));
                if isa != SimdBackend::Scalar {
                    entries.push((
                        format!("{op}_{key}_{}_speedup_vs_scalar", isa.name()),
                        speedup,
                    ));
                }
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    let w = workload();
    throughput_report(&w);
    simd_throughput_report();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("allocating_24_samples", |b| {
        b.iter(|| black_box(run_allocating(&w)))
    });
    group.bench_function("workspace_24_samples", |b| {
        let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
        let mut out = Vec::new();
        b.iter(|| black_box(run_workspace(&w, &mut ws, &mut out)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
