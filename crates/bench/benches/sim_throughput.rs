//! Simulation-engine throughput: allocating reference path vs the
//! allocation-free workspace path, on the Fig. 7 deletion-sweep workload
//! (CIFAR-10-like pipeline, TTAS(5) with weight scaling under 50 % spike
//! deletion) — plus the per-ISA SIMD backend comparison on the
//! kernel-bound clean MLP workload.
//!
//! Both paths simulate the same samples with the same per-sample derived
//! seeds and are asserted to produce identical predictions and spike counts
//! before any timing happens — the workspace path buys throughput, never
//! different results.  The SIMD section applies the same discipline along
//! the instruction-set axis: every available backend (scalar / SSE2 /
//! AVX2) must produce **byte-equal logits** for every sample before it is
//! timed, and on AVX2 hosts the dense rate/phase workloads must clear a
//! 1.5x end-to-end speedup floor over the forced-scalar kernels.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench sim_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, mnist_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use nrsnn_tensor::simd::{available_backends, set_backend, SimdBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 24;
const SEED: u64 = 2021;
/// Minimum wall-clock per timed (coding x backend) side of the SIMD
/// comparison, so fast backends still accumulate a stable measurement.
const SIMD_MIN_TIME_S: f64 = 0.4;

struct Workload {
    network: SnnNetwork,
    coding: Box<dyn NeuralCoding>,
    cfg: CodingConfig,
    noise: DeletionNoise,
}

fn workload() -> Workload {
    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let kind = CodingKind::Ttas(5);
    Workload {
        network: pipeline.to_snn(&scaling).expect("convert"),
        coding: kind.build(),
        cfg: pipeline.coding_config(kind, bench_sweep_config().time_steps),
        noise: DeletionNoise::new(0.5).expect("noise"),
    }
}

/// The seed engine's inner loop: allocate-per-call simulation, one fresh
/// RNG per sample.
fn run_allocating(w: &Workload) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    let mut correct_spikes = (0usize, 0usize);
    for sample in 0..SAMPLES {
        let row = inputs.row(sample).expect("row");
        let mut rng = StdRng::seed_from_u64(derive_seed(SEED, sample as u64));
        let outcome = w
            .network
            .simulate_unbuffered(
                row.as_slice(),
                w.coding.as_ref(),
                &w.cfg,
                &w.noise,
                &mut rng,
            )
            .expect("simulate");
        correct_spikes.0 += outcome.predicted;
        correct_spikes.1 += outcome.total_spikes;
    }
    correct_spikes
}

/// The workspace engine's inner loop: one reusable workspace, zero
/// steady-state allocations per sample.
fn run_workspace(
    w: &Workload,
    ws: &mut SimWorkspace,
    out: &mut Vec<BatchOutcome>,
) -> (usize, usize) {
    let inputs = &cifar10_pipeline().dataset().test.inputs;
    w.network
        .simulate_batch(
            inputs,
            0..SAMPLES,
            w.coding.as_ref(),
            &w.cfg,
            &w.noise,
            |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
            ws,
            out,
        )
        .expect("simulate_batch");
    out.iter()
        .fold((0, 0), |(p, s), o| (p + o.predicted, s + o.total_spikes))
}

fn throughput_report(w: &Workload) {
    let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
    let mut out = Vec::new();

    // Equality gate before timing: both paths must agree exactly.
    let reference = run_allocating(w);
    let workspace = run_workspace(w, &mut ws, &mut out);
    assert_eq!(
        reference, workspace,
        "workspace path diverged from the allocating reference"
    );

    let time = |mut f: Box<dyn FnMut() -> (usize, usize)>| -> f64 {
        let rounds = 5;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
    };
    let alloc_rate = time(Box::new(|| run_allocating(w)));
    let ws_rate = time(Box::new(|| run_workspace(w, &mut ws, &mut out)));

    println!("\n==== Simulation throughput (fig7 workload: TTAS(5)+WS, deletion p=0.5) ====");
    println!("{:<24}{:>16}", "path", "samples/s");
    println!("{:<24}{:>16.1}", "allocating (reference)", alloc_rate);
    println!("{:<24}{:>16.1}", "workspace (batched)", ws_rate);
    println!("workspace speedup: {:.2}x\n", ws_rate / alloc_rate);

    // Machine-readable perf trajectory, tracked across PRs.
    record_bench_summary(
        "sim_throughput",
        &[
            ("allocating_samples_per_s", alloc_rate),
            ("workspace_samples_per_s", ws_rate),
            ("workspace_speedup", ws_rate / alloc_rate),
        ],
    );
}

/// Per-ISA throughput of the SIMD dispatch on the rate/phase dense-path
/// workload: the MNIST-like MLP (784->256->128->10, pure `matvec`) under
/// the clean condition (`p = 0`, so decode feeds the layers dense
/// activation vectors and the dense kernel branch runs every layer).
///
/// Two measurements per backend, both behind byte-equality gates:
///
/// 1. **End-to-end simulation** (encode + decode + kernels + everything):
///    the scalar backend is simulated first as the reference, and every
///    other backend must reproduce its logits byte-for-byte on all
///    samples before it is timed.  Recorded without a floor — spike-train
///    encoding is deliberately backend-independent scalar work (one
///    integer division per emitted spike), so Amdahl caps what the
///    kernels can show through here.
/// 2. **Dense kernel pass** ([`SnnNetwork::analog_forward`], the exact
///    matvec sequence the dense branch runs per layer, on the converted
///    weights): gated to >= 1.5x AVX2-over-scalar — this is the part the
///    dispatch machinery exists for, and a floor here fails loudly if a
///    future refactor quietly routes the hot path back through portable
///    code.
fn simd_throughput_report() {
    let pipeline = mnist_pipeline();
    let time_steps = bench_sweep_config().time_steps;
    let scaling = WeightScaling::for_deletion_probability(0.0).expect("ws");
    let noise = DeletionNoise::new(0.0).expect("noise");
    let isas = available_backends();
    let previous = nrsnn_tensor::simd::active_backend();
    let network = pipeline
        .to_snn(&scaling)
        .expect("convert")
        .with_sparsity(SparsityPolicy::Dense);
    let inputs = &pipeline.dataset().test.inputs;

    let mut entries: Vec<(String, f64)> = Vec::new();
    println!("\n==== SIMD backend throughput (MLP dense path, clean, per ISA) ====");
    println!(
        "{:<16}{:<10}{:>14}{:>12}",
        "workload", "backend", "samples/s", "speedup"
    );
    for kind in [CodingKind::Rate, CodingKind::Phase] {
        let coding = kind.build();
        let cfg = pipeline.coding_config(kind, time_steps);
        let mut ws = SimWorkspace::for_network(&network, &cfg);

        // Byte-equality gate: one logits digest per sample, per backend.
        let digest = |ws: &mut SimWorkspace| -> Vec<Vec<u32>> {
            let mut seen = Vec::new();
            network
                .simulate_batch_each(
                    inputs,
                    0..SAMPLES,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                    ws,
                    |_, _, ws| seen.push(ws.logits().iter().map(|v| v.to_bits()).collect()),
                )
                .expect("simd equality gate");
            seen
        };
        assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
        let reference = digest(&mut ws);

        let mut rates: Vec<(SimdBackend, f64)> = Vec::new();
        for &isa in &isas {
            assert_eq!(set_backend(isa), isa, "requested backend must stick");
            assert_eq!(
                digest(&mut ws),
                reference,
                "{}: {} logits diverged from the scalar reference",
                kind.label(),
                isa.name()
            );
            let mut out = Vec::new();
            let start = Instant::now();
            let mut rounds = 0usize;
            while start.elapsed().as_secs_f64() < SIMD_MIN_TIME_S {
                network
                    .simulate_batch(
                        inputs,
                        0..SAMPLES,
                        coding.as_ref(),
                        &cfg,
                        &noise,
                        |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                        &mut ws,
                        &mut out,
                    )
                    .expect("simd timing run");
                black_box(&out);
                rounds += 1;
            }
            let rate = (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64();
            rates.push((isa, rate));
        }

        let label = kind.label().to_lowercase();
        let scalar_rate = rates[0].1;
        for &(isa, rate) in &rates {
            let speedup = rate / scalar_rate;
            println!(
                "{:<16}{:<10}{:>14.1}{:>11.2}x",
                format!("{label} e2e"),
                isa.name(),
                rate,
                speedup
            );
            entries.push((format!("{label}_{}_samples_per_s", isa.name()), rate));
            if isa != SimdBackend::Scalar {
                entries.push((format!("{label}_{}_speedup_vs_scalar", isa.name()), speedup));
            }
        }
    }

    // Dense kernel pass: the per-layer matvec sequence both codings run on
    // their dense branch, timed in isolation on the same samples.
    let forward_digest = || -> Vec<Vec<u32>> {
        (0..SAMPLES)
            .map(|sample| {
                let row = inputs.row(sample).expect("row");
                network
                    .analog_forward(row.as_slice())
                    .expect("analog forward")
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };
    assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
    let forward_reference = forward_digest();
    let mut kernel_rates: Vec<(SimdBackend, f64)> = Vec::new();
    for &isa in &isas {
        assert_eq!(set_backend(isa), isa, "requested backend must stick");
        assert_eq!(
            forward_digest(),
            forward_reference,
            "{} dense forward diverged from the scalar reference",
            isa.name()
        );
        let start = Instant::now();
        let mut rounds = 0usize;
        while start.elapsed().as_secs_f64() < SIMD_MIN_TIME_S {
            for sample in 0..SAMPLES {
                let row = inputs.row(sample).expect("row");
                black_box(network.analog_forward(row.as_slice()).expect("timing"));
            }
            rounds += 1;
        }
        kernel_rates.push((
            isa,
            (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64(),
        ));
    }
    let kernel_scalar = kernel_rates[0].1;
    for &(isa, rate) in &kernel_rates {
        let speedup = rate / kernel_scalar;
        println!(
            "{:<16}{:<10}{:>14.1}{:>11.2}x",
            "dense forward",
            isa.name(),
            rate,
            speedup
        );
        entries.push((format!("dense_forward_{}_samples_per_s", isa.name()), rate));
        if isa != SimdBackend::Scalar {
            entries.push((
                format!("dense_forward_{}_speedup_vs_scalar", isa.name()),
                speedup,
            ));
        }
        if isa == SimdBackend::Avx2 {
            assert!(
                speedup >= 1.5,
                "dense forward: AVX2 speedup {speedup:.2}x is below the 1.5x floor"
            );
        }
    }
    assert_eq!(set_backend(previous), previous);

    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_bench_summary("simd_throughput", &borrowed);
}

fn bench(c: &mut Criterion) {
    let w = workload();
    throughput_report(&w);
    simd_throughput_report();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("allocating_24_samples", |b| {
        b.iter(|| black_box(run_allocating(&w)))
    });
    group.bench_function("workspace_24_samples", |b| {
        let mut ws = SimWorkspace::for_network(&w.network, &w.cfg);
        let mut out = Vec::new();
        b.iter(|| black_box(run_workspace(&w, &mut ws, &mut out)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
