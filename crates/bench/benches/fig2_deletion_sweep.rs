//! Fig. 2 — inference accuracy and number of spikes with spike deletion on
//! the CIFAR-10-like dataset for the four baseline codings (no compensation).
//!
//! Running `cargo bench -p nrsnn-bench --bench fig2_deletion_sweep` prints
//! the regenerated series and benchmarks one noisy inference per coding.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let sweep = bench_sweep_config();
    let points = deletion_sweep(
        pipeline,
        &CodingKind::baselines(),
        &paper_deletion_probabilities(),
        false,
        &sweep,
    )
    .expect("fig2 sweep");
    print_figure(
        "Fig. 2: accuracy vs deletion probability (no WS)",
        &points,
        "Deletion p",
    );
    println!("mean spikes per inference at p=0 / p=0.5:");
    for coding in CodingKind::baselines() {
        let s: Vec<f32> = points
            .iter()
            .filter(|p| p.coding == coding && (p.noise_level == 0.0 || p.noise_level == 0.5))
            .map(|p| p.mean_spikes)
            .collect();
        println!("  {:<6} {:?}", coding.label(), s);
    }
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let pipeline = cifar10_pipeline();
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = DeletionNoise::new(0.5).expect("noise");

    let mut group = c.benchmark_group("fig2_deletion");
    group.sample_size(10);
    for coding in CodingKind::baselines() {
        let cfg = pipeline.coding_config(coding, bench_sweep_config().time_steps);
        let built = coding.build();
        group.bench_function(format!("inference_{}_p0.5", coding.label()), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| {
                snn.simulate(input.as_slice(), built.as_ref(), &cfg, &noise, &mut rng)
                    .expect("simulate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
