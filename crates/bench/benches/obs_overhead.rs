//! Observability overhead gate: the fully instrumented serving hot path
//! (per-stage spans, sharded metrics, flight-recorder push) must cost at
//! most **2 %** of serving throughput versus the same server with tracing
//! disabled, on the Fig. 7 workload (CIFAR-10-like pipeline, TTAS(5) with
//! weight scaling under 50 % spike deletion).
//!
//! Both configurations are equality-gated against the offline
//! request-at-a-time reference before any timing happens — observability
//! may never change a reply bit. Throughput is taken as the best of
//! several interleaved rounds per configuration so one scheduler hiccup
//! cannot fail (or pass) the gate.
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench obs_overhead
//! ```

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use nrsnn_serve::{ModelRegistry, ModelSpec, NoiseSpec, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "fig7-ttas5-ws";
const MASTER_SEED: u64 = 2021;
const REQUESTS: usize = 48;
const CLIENTS: usize = 4;
/// The hard budget: instrumented throughput must stay within 2 % of the
/// uninstrumented server.
const MAX_OVERHEAD_PCT: f64 = 2.0;

struct Workload {
    network: SnnNetwork,
    coding: Box<dyn NeuralCoding>,
    cfg: CodingConfig,
    noise: DeletionNoise,
    inputs: Vec<Vec<f32>>,
}

fn workload() -> Workload {
    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let kind = CodingKind::Ttas(5);
    let test_inputs = &pipeline.dataset().test.inputs;
    let rows = test_inputs.dims()[0];
    let inputs = (0..REQUESTS)
        .map(|i| test_inputs.row_slice(i % rows).expect("row").to_vec())
        .collect();
    Workload {
        network: pipeline.to_snn(&scaling).expect("convert"),
        coding: kind.build(),
        cfg: pipeline.coding_config(kind, bench_sweep_config().time_steps),
        noise: DeletionNoise::new(0.5).expect("noise"),
        inputs,
    }
}

fn registry(w: &Workload) -> ModelRegistry {
    let spec = ModelSpec::from_network(
        MODEL,
        &w.network,
        CodingKind::Ttas(5),
        &w.cfg,
        NoiseSpec::Deletion(0.5),
        2.0,
        MASTER_SEED,
    );
    let mut registry = ModelRegistry::new();
    registry
        .load_json(&spec.to_json())
        .expect("register model spec");
    registry
}

fn start_server(w: &Workload, tracing: bool) -> Server {
    Server::start(
        registry(w),
        ServerConfig {
            workers: 1,
            max_batch: 16,
            batch_window: Duration::ZERO,
            queue_capacity: 1024,
            tracing,
        },
    )
    .expect("start server")
}

/// Offline single-threaded reference, seeds derived exactly as the server
/// derives them.
fn offline_reference(w: &Workload) -> Vec<(usize, Vec<u32>)> {
    w.inputs
        .iter()
        .enumerate()
        .map(|(seed, input)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(MASTER_SEED, seed as u64));
            let outcome = w
                .network
                .simulate(input, w.coding.as_ref(), &w.cfg, &w.noise, &mut rng)
                .expect("simulate");
            let bits = outcome.logits.iter().map(|l| l.to_bits()).collect();
            (outcome.predicted, bits)
        })
        .collect()
}

fn run_server_round(server: &Server, w: &Workload) -> Vec<(usize, usize, Vec<u32>)> {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client_index| {
            let client = server.client();
            let inputs: Vec<(usize, Vec<f32>)> = w
                .inputs
                .iter()
                .enumerate()
                .skip(client_index)
                .step_by(CLIENTS)
                .map(|(index, input)| (index, input.clone()))
                .collect();
            std::thread::spawn(move || {
                inputs
                    .into_iter()
                    .map(|(index, input)| {
                        let reply = client
                            .infer_retrying(MODEL, &input, index as u64)
                            .expect("serve");
                        let bits = reply.logits.iter().map(|l| l.to_bits()).collect();
                        (index, reply.predicted, bits)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect()
}

/// Asserts every served reply is bit-identical to the offline reference.
fn equality_gate(server: &Server, w: &Workload, reference: &[(usize, Vec<u32>)], label: &str) {
    let served = run_server_round(server, w);
    assert_eq!(served.len(), reference.len(), "{label}");
    for (index, predicted, bits) in &served {
        assert_eq!(*predicted, reference[*index].0, "{label} request {index}");
        assert_eq!(
            *bits, reference[*index].1,
            "{label} request {index}: logits diverged"
        );
    }
}

/// Best requests/s over `rounds` passes (best-of is robust to one-off
/// scheduler noise, which a 2 % gate cannot absorb).
fn best_rps(server: &Server, w: &Workload, rounds: usize) -> f64 {
    (0..rounds)
        .map(|_| {
            let start = Instant::now();
            black_box(run_server_round(server, w));
            REQUESTS as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn overhead_report(w: &Workload) -> (Server, Server) {
    let plain = start_server(w, false);
    let traced = start_server(w, true);

    let reference = offline_reference(w);
    equality_gate(&plain, w, &reference, "tracing off");
    equality_gate(&traced, w, &reference, "tracing on");

    // Warm both servers, then interleave measurement rounds so thermal /
    // scheduler drift hits both configurations equally.
    let rounds = 5;
    black_box(run_server_round(&plain, w));
    black_box(run_server_round(&traced, w));
    let mut plain_rps = 0.0f64;
    let mut traced_rps = 0.0f64;
    for _ in 0..rounds {
        plain_rps = plain_rps.max(best_rps(&plain, w, 1));
        traced_rps = traced_rps.max(best_rps(&traced, w, 1));
    }
    let overhead_pct = (1.0 - traced_rps / plain_rps) * 100.0;

    println!("\n==== Observability overhead (fig7 workload: TTAS(5)+WS, deletion p=0.5) ====");
    println!("{:<32}{:>14}", "configuration", "requests/s");
    println!("{:<32}{:>14.1}", "tracing off", plain_rps);
    println!("{:<32}{:>14.1}", "tracing on (full spans)", traced_rps);
    println!("instrumentation overhead: {overhead_pct:.2}% (budget {MAX_OVERHEAD_PCT:.1}%)");
    let stats = traced.stats();
    println!("per-stage latency of the instrumented server:");
    for stage in &stats.stage_latency_ns {
        println!(
            "  {:<16} p50 {:>9.1} us   p99 {:>9.1} us",
            stage.stage,
            stage.p50_ns as f64 / 1_000.0,
            stage.p99_ns as f64 / 1_000.0
        );
    }
    println!();

    record_bench_summary(
        "obs_overhead",
        &[
            ("untraced_rps", plain_rps),
            ("traced_rps", traced_rps),
            ("overhead_pct", overhead_pct),
            ("budget_pct", MAX_OVERHEAD_PCT),
        ],
    );
    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT,
        "observability overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT:.1}% budget \
         ({plain_rps:.1} -> {traced_rps:.1} requests/s)"
    );
    (plain, traced)
}

fn bench(c: &mut Criterion) {
    let w = workload();
    let (plain, traced) = overhead_report(&w);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("tracing_off_48", |b| {
        b.iter(|| black_box(run_server_round(&plain, &w)))
    });
    group.bench_function("tracing_on_48", |b| {
        b.iter(|| black_box(run_server_round(&traced, &w)))
    });
    group.finish();
    plain.shutdown();
    traced.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
