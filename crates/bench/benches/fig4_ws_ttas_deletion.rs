//! Fig. 4 — inference accuracy of weight scaling (WS) and TTAS(t_a) under
//! spike deletion on the CIFAR-10-like dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let mut codings = CodingKind::baselines();
    for duration in [1u32, 2, 3, 4, 5] {
        codings.push(CodingKind::Ttas(duration));
    }
    let points = deletion_sweep(
        pipeline,
        &codings,
        &paper_deletion_probabilities(),
        true,
        &bench_sweep_config(),
    )
    .expect("fig4 sweep");
    print_figure(
        "Fig. 4: weight scaling + TTAS(t_a) vs deletion probability",
        &points,
        "Deletion p",
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let pipeline = cifar10_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let snn = pipeline.to_snn(&scaling).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = DeletionNoise::new(0.5).expect("noise");

    let mut group = c.benchmark_group("fig4_ws_ttas");
    group.sample_size(10);
    for duration in [1u32, 5] {
        let kind = CodingKind::Ttas(duration);
        let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);
        let coding = kind.build();
        group.bench_function(format!("inference_ttas{duration}_ws_p0.5"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| {
                snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                    .expect("simulate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
