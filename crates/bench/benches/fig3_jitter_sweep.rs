//! Fig. 3 — inference accuracy and number of spikes with spike jitter on the
//! CIFAR-10-like dataset for the four baseline codings.

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let points = jitter_sweep(
        pipeline,
        &CodingKind::baselines(),
        &paper_jitter_intensities(),
        &bench_sweep_config(),
    )
    .expect("fig3 sweep");
    print_figure(
        "Fig. 3: accuracy vs jitter intensity",
        &points,
        "Jitter sigma",
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let pipeline = cifar10_pipeline();
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = JitterNoise::new(2.0).expect("noise");

    let mut group = c.benchmark_group("fig3_jitter");
    group.sample_size(10);
    for coding in CodingKind::baselines() {
        let cfg = pipeline.coding_config(coding, bench_sweep_config().time_steps);
        let built = coding.build();
        group.bench_function(format!("inference_{}_sigma2", coding.label()), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| {
                snn.simulate(input.as_slice(), built.as_ref(), &cfg, &noise, &mut rng)
                    .expect("simulate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
