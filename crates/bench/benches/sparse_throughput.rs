//! Sparsity-aware engine throughput: the forced-dense kernel policy vs the
//! auto-selecting sparse policy, per neural coding, across the Fig. 7
//! deletion levels (weight scaling on, as in the figure).
//!
//! This is the first bench where simulation speed is a *function of the
//! coding*: under deletion a TTFS neuron's single spike dies with
//! probability `p`, so a fraction `p` of the trains arrive empty, the
//! decoded activation vectors sparsify, and the gather kernels skip the
//! silent synapses — while rate coding's ~T-spike trains almost never die
//! completely and keep the engine near the dense path.  TTAS(5)'s
//! redundant bursts (the paper's robustness mechanism) survive moderate
//! deletion by design, so its sparse win appears at the harsher Fig. 7
//! levels where whole bursts start dying.  Logits are asserted
//! **byte-equal** between the two policies for every (coding × level ×
//! sample) before any timing happens: the sparse path buys throughput,
//! never different results.
//!
//! Two workloads run: the MNIST-like MLP pipeline (fully connected layers,
//! where the sparse matvec dominates — recorded as `sparse_throughput`)
//! and the Fig. 7 CIFAR-10-like CNN pipeline (recorded as
//! `sparse_throughput_cnn`; its convolution kernel skips zero activations
//! element-wise on both policies, so the headroom is smaller).
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench sparse_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, mnist_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 24;
const SEED: u64 = 2021;
/// The Fig. 7 deletion levels exercised here (a subset of the figure's
/// 0.0..0.9 x-axis: the clean point is pure dense-vs-dense, and the paper's
/// Table I points 0.2/0.5/0.8 plus the figure's harshest 0.9 bracket the
/// density range).
const LEVELS: [f64; 4] = [0.2, 0.5, 0.8, 0.9];
/// Minimum wall-clock per timed side, so fast configurations (TTFS runs at
/// >10k samples/s) still accumulate a stable measurement.
const MIN_TIME_S: f64 = 0.4;

struct CodingRun {
    label: String,
    level: f64,
    dense_rate: f64,
    sparse_rate: f64,
    mean_density: f64,
}

impl CodingRun {
    fn speedup(&self) -> f64 {
        self.sparse_rate / self.dense_rate
    }
}

/// Simulates `SAMPLES` rows through `network` and returns (Σ predicted,
/// Σ spikes).
fn run_batch(
    pipeline: &TrainedPipeline,
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &DeletionNoise,
    ws: &mut SimWorkspace,
    out: &mut Vec<BatchOutcome>,
) -> (usize, usize) {
    let inputs = &pipeline.dataset().test.inputs;
    network
        .simulate_batch(
            inputs,
            0..SAMPLES,
            coding,
            cfg,
            noise,
            |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
            ws,
            out,
        )
        .expect("simulate_batch");
    out.iter()
        .fold((0, 0), |(p, s), o| (p + o.predicted, s + o.total_spikes))
}

/// Byte-equality gate: every sample's logits must be identical between the
/// dense and sparse policies before either is timed.
fn assert_logits_byte_equal(
    pipeline: &TrainedPipeline,
    dense: &SnnNetwork,
    sparse: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &DeletionNoise,
) {
    let inputs = &pipeline.dataset().test.inputs;
    let collect = |network: &SnnNetwork| {
        let mut ws = SimWorkspace::for_network(network, cfg);
        let mut seen: Vec<(usize, Vec<u32>)> = Vec::new();
        network
            .simulate_batch_each(
                inputs,
                0..SAMPLES,
                coding,
                cfg,
                noise,
                |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                &mut ws,
                |_, outcome, ws| {
                    seen.push((
                        outcome.predicted,
                        ws.logits().iter().map(|v| v.to_bits()).collect(),
                    ));
                },
            )
            .expect("equality gate");
        seen
    };
    assert_eq!(
        collect(dense),
        collect(sparse),
        "{}: sparse logits diverged from dense",
        coding.name()
    );
}

fn measure_pipeline(title: &str, pipeline: &TrainedPipeline) -> Vec<CodingRun> {
    let time_steps = bench_sweep_config().time_steps;
    let kinds = [
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ];

    let mut runs = Vec::new();
    for &level in &LEVELS {
        let scaling = WeightScaling::for_deletion_probability(level).expect("ws");
        let noise = DeletionNoise::new(level).expect("noise");
        for kind in kinds {
            let coding = kind.build();
            let cfg = pipeline.coding_config(kind, time_steps);
            let base = pipeline.to_snn(&scaling).expect("convert");
            let dense = base.clone().with_sparsity(SparsityPolicy::Dense);
            let sparse = base.with_sparsity(SparsityPolicy::auto());

            assert_logits_byte_equal(pipeline, &dense, &sparse, coding.as_ref(), &cfg, &noise);

            let mut ws = SimWorkspace::for_network(&dense, &cfg);
            let mut out = Vec::new();
            // Warm both paths once (buffer growth), then time.  The sparse
            // warm-up doubles as the density measurement: the workspace only
            // keeps the most recent sample's per-layer densities, so the
            // run statistic accumulates across every sample of the batch.
            run_batch(
                pipeline,
                &dense,
                coding.as_ref(),
                &cfg,
                &noise,
                &mut ws,
                &mut out,
            );
            let mut density_sum = 0.0f64;
            let mut density_count = 0usize;
            sparse
                .simulate_batch_each(
                    &pipeline.dataset().test.inputs,
                    0..SAMPLES,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                    &mut ws,
                    |_, _, ws| {
                        density_sum += ws
                            .density_per_layer()
                            .iter()
                            .map(|&d| d as f64)
                            .sum::<f64>();
                        density_count += ws.density_per_layer().len();
                    },
                )
                .expect("density warm-up");
            let mean_density = density_sum / density_count.max(1) as f64;

            let mut time = |network: &SnnNetwork| -> f64 {
                let start = Instant::now();
                let mut rounds = 0usize;
                while start.elapsed().as_secs_f64() < MIN_TIME_S {
                    black_box(run_batch(
                        pipeline,
                        network,
                        coding.as_ref(),
                        &cfg,
                        &noise,
                        &mut ws,
                        &mut out,
                    ));
                    rounds += 1;
                }
                (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
            };
            let dense_rate = time(&dense);
            let sparse_rate = time(&sparse);
            runs.push(CodingRun {
                label: kind.label(),
                level,
                dense_rate,
                sparse_rate,
                mean_density,
            });
        }
    }

    println!("\n==== Sparse vs dense engine: {title} (Fig. 7 deletion levels, WS) ====");
    println!(
        "{:<8}{:<10}{:>12}{:>12}{:>10}{:>14}",
        "p", "coding", "dense/s", "sparse/s", "speedup", "mean density"
    );
    for run in &runs {
        println!(
            "{:<8}{:<10}{:>12.1}{:>12.1}{:>9.2}x{:>14.2}",
            run.level,
            run.label,
            run.dense_rate,
            run.sparse_rate,
            run.speedup(),
            run.mean_density
        );
    }
    runs
}

fn key_of(run: &CodingRun) -> String {
    let coding = run.label.to_lowercase().replace(['(', ')'], "");
    format!("{coding}_p{:02}", (run.level * 100.0).round() as u32)
}

fn record(section: &str, runs: &[CodingRun]) {
    let mut entries: Vec<(String, f64)> = Vec::new();
    for run in runs {
        let key = key_of(run);
        entries.push((format!("{key}_dense_samples_per_s"), run.dense_rate));
        entries.push((format!("{key}_sparse_samples_per_s"), run.sparse_rate));
        entries.push((format!("{key}_speedup"), run.speedup()));
    }
    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_bench_summary(section, &borrowed);
}

fn speedup_of(runs: &[CodingRun], label: &str, level: f64) -> f64 {
    runs.iter()
        .find(|r| r.label == label && r.level == level)
        .expect("run")
        .speedup()
}

fn bench(c: &mut Criterion) {
    let mlp_runs = measure_pipeline("MNIST-like MLP", mnist_pipeline());
    let cnn_runs = measure_pipeline("Fig. 7 CIFAR-10-like CNN", cifar10_pipeline());
    record("sparse_throughput", &mlp_runs);
    record("sparse_throughput_cnn", &cnn_runs);

    // Acceptance: the temporal codings must profit the most — the sparse
    // engine is what makes speed a function of the coding.  TTFS sparsifies
    // as soon as spikes are deleted; TTAS's redundant bursts (its robustness
    // mechanism) keep its rasters dense until the harsher Fig. 7 levels.
    for (label, level) in [
        ("TTFS", 0.5),
        ("TTFS", 0.8),
        ("TTFS", 0.9),
        ("TTAS(5)", 0.9),
    ] {
        let speedup = speedup_of(&mlp_runs, label, level);
        assert!(
            speedup >= 1.5,
            "{label} @ p={level}: expected >= 1.5x sparse speedup, measured {speedup:.2}x"
        );
    }

    let mut group = c.benchmark_group("sparse_throughput");
    group.sample_size(10);
    let pipeline = mnist_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let noise = DeletionNoise::new(0.5).expect("noise");
    for (name, policy) in [
        ("ttfs_dense_24_samples", SparsityPolicy::Dense),
        ("ttfs_sparse_24_samples", SparsityPolicy::auto()),
    ] {
        let network = pipeline
            .to_snn(&scaling)
            .expect("convert")
            .with_sparsity(policy);
        let coding = CodingKind::Ttfs.build();
        let cfg = pipeline.coding_config(CodingKind::Ttfs, bench_sweep_config().time_steps);
        group.bench_function(name, |b| {
            let mut ws = SimWorkspace::for_network(&network, &cfg);
            let mut out = Vec::new();
            b.iter(|| {
                black_box(run_batch(
                    pipeline,
                    &network,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    &mut ws,
                    &mut out,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
