//! Sparsity-aware engine throughput: the forced-dense kernel policy vs the
//! auto-selecting sparse policy, per neural coding, across the Fig. 7
//! deletion levels (weight scaling on, as in the figure).
//!
//! This is the first bench where simulation speed is a *function of the
//! coding*: under deletion a TTFS neuron's single spike dies with
//! probability `p`, so a fraction `p` of the trains arrive empty, the
//! decoded activation vectors sparsify, and the gather kernels skip the
//! silent synapses — while rate coding's ~T-spike trains almost never die
//! completely and keep the engine near the dense path.  TTAS(5)'s
//! redundant bursts (the paper's robustness mechanism) survive moderate
//! deletion by design, so its sparse win appears at the harsher Fig. 7
//! levels where whole bursts start dying.  Logits are asserted
//! **byte-equal** between the two policies for every (coding × level ×
//! sample) before any timing happens: the sparse path buys throughput,
//! never different results.
//!
//! Since the dense kernels were vectorised (`nrsnn_tensor::simd`), the
//! sparse-vs-dense crossover sits much lower than in the scalar era — the
//! dense engine got 2-3x faster while the sparse gather loop, which is
//! deliberately scalar (see `nrsnn_tensor::matvec_sparse_slices`), did
//! not.  [`SparsityPolicy::AutoTuned`] therefore selects per backend, and
//! the acceptance here asserts two things: the auto policy is never
//! materially slower than forced-dense on any (coding × level), and on the
//! scalar backend — the apples-to-apples statement, since both engines
//! then run the same ISA — TTFS under harsh deletion still clears a real
//! sparse speedup floor.
//!
//! Two workloads run: the MNIST-like MLP pipeline (fully connected layers,
//! where the sparse matvec dominates — recorded as `sparse_throughput`)
//! and the Fig. 7 CIFAR-10-like CNN pipeline (recorded as
//! `sparse_throughput_cnn`; its convolution kernel skips zero activations
//! element-wise on both policies, so the headroom is smaller).
//!
//! ```text
//! cargo bench -p nrsnn-bench --bench sparse_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, mnist_pipeline, record_bench_summary};
use nrsnn_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 24;
const SEED: u64 = 2021;
/// The Fig. 7 deletion levels exercised here (a subset of the figure's
/// 0.0..0.9 x-axis: the clean point is pure dense-vs-dense, and the paper's
/// Table I points 0.2/0.5/0.8 plus the figure's harshest 0.9 bracket the
/// density range).
const LEVELS: [f64; 4] = [0.2, 0.5, 0.8, 0.9];
/// Minimum wall-clock per timed side, so fast configurations (TTFS runs at
/// >10k samples/s) still accumulate a stable measurement.
const MIN_TIME_S: f64 = 0.4;

struct CodingRun {
    label: String,
    level: f64,
    dense_rate: f64,
    sparse_rate: f64,
    mean_density: f64,
}

impl CodingRun {
    fn speedup(&self) -> f64 {
        self.sparse_rate / self.dense_rate
    }
}

/// Simulates `SAMPLES` rows through `network` and returns (Σ predicted,
/// Σ spikes).
fn run_batch(
    pipeline: &TrainedPipeline,
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &DeletionNoise,
    ws: &mut SimWorkspace,
    out: &mut Vec<BatchOutcome>,
) -> (usize, usize) {
    let inputs = &pipeline.dataset().test.inputs;
    network
        .simulate_batch(
            inputs,
            0..SAMPLES,
            coding,
            cfg,
            noise,
            |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
            ws,
            out,
        )
        .expect("simulate_batch");
    out.iter()
        .fold((0, 0), |(p, s), o| (p + o.predicted, s + o.total_spikes))
}

/// Byte-equality gate: every sample's logits must be identical between the
/// dense and sparse policies before either is timed.
fn assert_logits_byte_equal(
    pipeline: &TrainedPipeline,
    dense: &SnnNetwork,
    sparse: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &DeletionNoise,
) {
    let inputs = &pipeline.dataset().test.inputs;
    let collect = |network: &SnnNetwork| {
        let mut ws = SimWorkspace::for_network(network, cfg);
        let mut seen: Vec<(usize, Vec<u32>)> = Vec::new();
        network
            .simulate_batch_each(
                inputs,
                0..SAMPLES,
                coding,
                cfg,
                noise,
                |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                &mut ws,
                |_, outcome, ws| {
                    seen.push((
                        outcome.predicted,
                        ws.logits().iter().map(|v| v.to_bits()).collect(),
                    ));
                },
            )
            .expect("equality gate");
        seen
    };
    assert_eq!(
        collect(dense),
        collect(sparse),
        "{}: sparse logits diverged from dense",
        coding.name()
    );
}

fn measure_pipeline(title: &str, pipeline: &TrainedPipeline) -> Vec<CodingRun> {
    let time_steps = bench_sweep_config().time_steps;
    let kinds = [
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ];

    let mut runs = Vec::new();
    for &level in &LEVELS {
        let scaling = WeightScaling::for_deletion_probability(level).expect("ws");
        let noise = DeletionNoise::new(level).expect("noise");
        for kind in kinds {
            let coding = kind.build();
            let cfg = pipeline.coding_config(kind, time_steps);
            let base = pipeline.to_snn(&scaling).expect("convert");
            let dense = base.clone().with_sparsity(SparsityPolicy::Dense);
            let sparse = base.with_sparsity(SparsityPolicy::auto());

            assert_logits_byte_equal(pipeline, &dense, &sparse, coding.as_ref(), &cfg, &noise);

            let mut ws = SimWorkspace::for_network(&dense, &cfg);
            let mut out = Vec::new();
            // Warm both paths once (buffer growth), then time.  The sparse
            // warm-up doubles as the density measurement: the workspace only
            // keeps the most recent sample's per-layer densities, so the
            // run statistic accumulates across every sample of the batch.
            run_batch(
                pipeline,
                &dense,
                coding.as_ref(),
                &cfg,
                &noise,
                &mut ws,
                &mut out,
            );
            let mut density_sum = 0.0f64;
            let mut density_count = 0usize;
            sparse
                .simulate_batch_each(
                    &pipeline.dataset().test.inputs,
                    0..SAMPLES,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                    &mut ws,
                    |_, _, ws| {
                        density_sum += ws
                            .density_per_layer()
                            .iter()
                            .map(|&d| d as f64)
                            .sum::<f64>();
                        density_count += ws.density_per_layer().len();
                    },
                )
                .expect("density warm-up");
            let mean_density = density_sum / density_count.max(1) as f64;

            let mut time = |network: &SnnNetwork| -> f64 {
                let start = Instant::now();
                let mut rounds = 0usize;
                while start.elapsed().as_secs_f64() < MIN_TIME_S {
                    black_box(run_batch(
                        pipeline,
                        network,
                        coding.as_ref(),
                        &cfg,
                        &noise,
                        &mut ws,
                        &mut out,
                    ));
                    rounds += 1;
                }
                (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
            };
            let dense_rate = time(&dense);
            let sparse_rate = time(&sparse);
            runs.push(CodingRun {
                label: kind.label(),
                level,
                dense_rate,
                sparse_rate,
                mean_density,
            });
        }
    }

    println!("\n==== Sparse vs dense engine: {title} (Fig. 7 deletion levels, WS) ====");
    println!(
        "{:<8}{:<10}{:>12}{:>12}{:>10}{:>14}",
        "p", "coding", "dense/s", "sparse/s", "speedup", "mean density"
    );
    for run in &runs {
        println!(
            "{:<8}{:<10}{:>12.1}{:>12.1}{:>9.2}x{:>14.2}",
            run.level,
            run.label,
            run.dense_rate,
            run.sparse_rate,
            run.speedup(),
            run.mean_density
        );
    }
    runs
}

fn key_of(run: &CodingRun) -> String {
    let coding = run.label.to_lowercase().replace(['(', ')'], "");
    format!("{coding}_p{:02}", (run.level * 100.0).round() as u32)
}

fn record(section: &str, runs: &[CodingRun]) {
    let mut entries: Vec<(String, f64)> = Vec::new();
    for run in runs {
        let key = key_of(run);
        entries.push((format!("{key}_dense_samples_per_s"), run.dense_rate));
        entries.push((format!("{key}_sparse_samples_per_s"), run.sparse_rate));
        entries.push((format!("{key}_speedup"), run.speedup()));
    }
    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_bench_summary(section, &borrowed);
}

/// Compact per-ISA cut of the auto-policy engine: TTFS at p = 0.5 on the
/// MLP, once per available SIMD backend.  Every backend is gated on
/// byte-equal logits against the scalar reference before timing, then
/// recorded so `BENCH_sim.json` tracks how
/// [`SparsityPolicy::AutoTuned`] adapts: at this level the mean decoded
/// density sits right at the scalar crossover (~0.3), so the scalar
/// backend leans on the sparse gather loop while the vector backends
/// (crossover ~0.1) switch to their much faster dense kernels — same
/// bits, different route to them.
fn simd_sparse_report(pipeline: &TrainedPipeline) {
    use nrsnn_tensor::simd::{available_backends, set_backend, SimdBackend};

    let level = 0.5;
    let scaling = WeightScaling::for_deletion_probability(level).expect("ws");
    let noise = DeletionNoise::new(level).expect("noise");
    let coding = CodingKind::Ttfs.build();
    let cfg = pipeline.coding_config(CodingKind::Ttfs, bench_sweep_config().time_steps);
    let network = pipeline
        .to_snn(&scaling)
        .expect("convert")
        .with_sparsity(SparsityPolicy::auto());
    let mut ws = SimWorkspace::for_network(&network, &cfg);
    let inputs = &pipeline.dataset().test.inputs;
    let previous = nrsnn_tensor::simd::active_backend();

    let digest = |ws: &mut SimWorkspace| -> Vec<Vec<u32>> {
        let mut seen = Vec::new();
        network
            .simulate_batch_each(
                inputs,
                0..SAMPLES,
                coding.as_ref(),
                &cfg,
                &noise,
                |sample| StdRng::seed_from_u64(derive_seed(SEED, sample as u64)),
                ws,
                |_, _, ws| seen.push(ws.logits().iter().map(|v| v.to_bits()).collect()),
            )
            .expect("simd sparse equality gate");
        seen
    };
    assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
    let reference = digest(&mut ws);

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut scalar_rate = 0.0f64;
    println!("\n==== Auto-policy engine per SIMD backend (TTFS, p=0.5, MLP) ====");
    println!("{:<10}{:>14}{:>12}", "backend", "samples/s", "speedup");
    for isa in available_backends() {
        assert_eq!(set_backend(isa), isa, "requested backend must stick");
        assert_eq!(
            digest(&mut ws),
            reference,
            "{} sparse logits diverged from the scalar reference",
            isa.name()
        );
        let mut out = Vec::new();
        let start = Instant::now();
        let mut rounds = 0usize;
        while start.elapsed().as_secs_f64() < MIN_TIME_S {
            black_box(run_batch(
                pipeline,
                &network,
                coding.as_ref(),
                &cfg,
                &noise,
                &mut ws,
                &mut out,
            ));
            rounds += 1;
        }
        let rate = (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64();
        if isa == SimdBackend::Scalar {
            scalar_rate = rate;
        }
        println!(
            "{:<10}{:>14.1}{:>11.2}x",
            isa.name(),
            rate,
            rate / scalar_rate
        );
        entries.push((format!("ttfs_p50_auto_{}_samples_per_s", isa.name()), rate));
        if isa != SimdBackend::Scalar {
            entries.push((
                format!("ttfs_p50_auto_{}_speedup_vs_scalar", isa.name()),
                rate / scalar_rate,
            ));
        }
    }
    assert_eq!(set_backend(previous), previous);

    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_bench_summary("sparse_throughput_simd", &borrowed);
}

fn bench(c: &mut Criterion) {
    let mlp_runs = measure_pipeline("MNIST-like MLP", mnist_pipeline());
    let cnn_runs = measure_pipeline("Fig. 7 CIFAR-10-like CNN", cifar10_pipeline());
    record("sparse_throughput", &mlp_runs);
    record("sparse_throughput_cnn", &cnn_runs);
    simd_sparse_report(mnist_pipeline());

    // Acceptance part 1 — the auto policy must never be a tax: on every
    // (coding × level), under whatever backend auto-detection picked, it
    // stays within measurement noise of forced-dense.  Above the crossover
    // it literally *is* the dense engine (same kernels), so the floor only
    // guards the below-crossover selections; 0.85 tolerates this host's
    // clock jitter.
    for runs in [&mlp_runs, &cnn_runs] {
        for run in runs.iter() {
            let speedup = run.speedup();
            assert!(
                speedup >= 0.85,
                "{} @ p={}: auto policy must not lose to dense, measured {speedup:.2}x",
                run.label,
                run.level
            );
        }
    }

    // Acceptance part 2 — the sparse kernels must still earn their keep
    // where the paper's story lives: TTFS under harsh deletion leaves
    // mostly-empty rasters, and skipping the silent synapses must beat a
    // same-ISA dense scan.  Measured on the forced-scalar backend so both
    // engines run identical instruction sets (on AVX2 the dense kernels
    // are ~3x faster while the gather loop is deliberately scalar, which
    // would measure the ISA gap, not the sparsity win).  Floors sit below
    // the measured 1.4-1.8x (p=0.8, d≈0.12) and 1.9-2.0x (p=0.9, d≈0.06)
    // to absorb this host's clock drift.
    {
        use nrsnn_tensor::simd::{set_backend, SimdBackend};
        let previous = nrsnn_tensor::simd::active_backend();
        assert_eq!(set_backend(SimdBackend::Scalar), SimdBackend::Scalar);
        let pipeline = mnist_pipeline();
        let time_steps = bench_sweep_config().time_steps;
        let mut acceptance: Vec<(String, f64)> = Vec::new();
        for (level, floor) in [(0.8, 1.2), (0.9, 1.5)] {
            let scaling = WeightScaling::for_deletion_probability(level).expect("ws");
            let noise = DeletionNoise::new(level).expect("noise");
            let coding = CodingKind::Ttfs.build();
            let cfg = pipeline.coding_config(CodingKind::Ttfs, time_steps);
            let base = pipeline.to_snn(&scaling).expect("convert");
            let dense = base.clone().with_sparsity(SparsityPolicy::Dense);
            let sparse = base.with_sparsity(SparsityPolicy::auto());
            assert_logits_byte_equal(pipeline, &dense, &sparse, coding.as_ref(), &cfg, &noise);
            let mut ws = SimWorkspace::for_network(&dense, &cfg);
            let mut out = Vec::new();
            let mut time = |network: &SnnNetwork| -> f64 {
                let start = Instant::now();
                let mut rounds = 0usize;
                while start.elapsed().as_secs_f64() < MIN_TIME_S {
                    black_box(run_batch(
                        pipeline,
                        network,
                        coding.as_ref(),
                        &cfg,
                        &noise,
                        &mut ws,
                        &mut out,
                    ));
                    rounds += 1;
                }
                (rounds * SAMPLES) as f64 / start.elapsed().as_secs_f64()
            };
            let dense_rate = time(&dense);
            let sparse_rate = time(&sparse);
            let speedup = sparse_rate / dense_rate;
            println!(
                "scalar-backend acceptance: TTFS @ p={level}: dense {dense_rate:.1}/s, \
                 sparse {sparse_rate:.1}/s, {speedup:.2}x (floor {floor}x)"
            );
            acceptance.push((
                format!("ttfs_p{:02}_scalar_speedup", (level * 100.0) as u32),
                speedup,
            ));
            assert!(
                speedup >= floor,
                "TTFS @ p={level} (scalar backend): expected >= {floor}x sparse speedup, \
                 measured {speedup:.2}x"
            );
        }
        let borrowed: Vec<(&str, f64)> = acceptance.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        record_bench_summary("sparse_throughput_scalar_acceptance", &borrowed);
        assert_eq!(set_backend(previous), previous);
    }

    let mut group = c.benchmark_group("sparse_throughput");
    group.sample_size(10);
    let pipeline = mnist_pipeline();
    let scaling = WeightScaling::for_deletion_probability(0.5).expect("ws");
    let noise = DeletionNoise::new(0.5).expect("noise");
    for (name, policy) in [
        ("ttfs_dense_24_samples", SparsityPolicy::Dense),
        ("ttfs_sparse_24_samples", SparsityPolicy::auto()),
    ] {
        let network = pipeline
            .to_snn(&scaling)
            .expect("convert")
            .with_sparsity(policy);
        let coding = CodingKind::Ttfs.build();
        let cfg = pipeline.coding_config(CodingKind::Ttfs, bench_sweep_config().time_steps);
        group.bench_function(name, |b| {
            let mut ws = SimWorkspace::for_network(&network, &cfg);
            let mut out = Vec::new();
            b.iter(|| {
                black_box(run_batch(
                    pipeline,
                    &network,
                    coding.as_ref(),
                    &cfg,
                    &noise,
                    &mut ws,
                    &mut out,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
