//! Fig. 8 — comparison of all neural codings against TTAS(10) under spike
//! jitter (CIFAR-10-like).

use criterion::{criterion_group, criterion_main, Criterion};
use nrsnn::prelude::*;
use nrsnn_bench::{bench_sweep_config, cifar10_pipeline, print_figure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_figure() {
    let pipeline = cifar10_pipeline();
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(10));
    let points = jitter_sweep(
        pipeline,
        &codings,
        &paper_jitter_intensities(),
        &bench_sweep_config(),
    )
    .expect("fig8 sweep");
    print_figure(
        "Fig. 8: baselines vs TTAS(10) under jitter",
        &points,
        "Jitter sigma",
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let pipeline = cifar10_pipeline();
    let snn = pipeline.to_snn(&WeightScaling::none()).expect("convert");
    let input = pipeline.dataset().test.inputs.row(0).expect("row");
    let noise = JitterNoise::new(3.0).expect("noise");
    let kind = CodingKind::Ttas(10);
    let coding = kind.build();
    let cfg = pipeline.coding_config(kind, bench_sweep_config().time_steps);

    let mut group = c.benchmark_group("fig8_comparison");
    group.sample_size(10);
    group.bench_function("inference_ttas10_sigma3", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            snn.simulate(input.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)
                .expect("simulate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
