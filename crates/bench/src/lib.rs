//! # nrsnn-bench
//!
//! Shared helpers for the benchmark harness.  Each Criterion bench under
//! `benches/` regenerates one table or figure of the paper's evaluation: it
//! trains (or reuses) a pipeline, runs the corresponding sweep, prints the
//! rows/series the paper reports, and additionally benchmarks the hot path
//! (one simulated inference) so regressions in simulator performance are
//! visible.
//!
//! The benches share the cached pipelines below so the expensive DNN
//! training happens once per dataset per bench binary.
//!
//! The `fig7_deletion_comparison` and `table1_deletion` benches additionally
//! time their full sweep grid serially vs on a 4-thread pool, and the
//! dedicated `parallel_scaling` bench sweeps the thread count (1/2/4/8) and
//! prints a cells-per-second scaling table — both assert the parallel
//! results are bit-identical to the serial reference before timing.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::OnceLock;

use nrsnn::prelude::*;

/// Evaluation settings shared by all benches: kept deliberately small so the
/// full `cargo bench --workspace` run finishes on a laptop while still
/// exhibiting the paper's qualitative orderings.
pub fn bench_sweep_config() -> SweepConfig {
    SweepConfig {
        time_steps: 96,
        eval_samples: 24,
        seed: 2021,
    }
}

/// The CIFAR-10-like pipeline used by the figure benches (Figs. 2–4, 6–8).
///
/// # Panics
/// Panics if pipeline construction fails — benches cannot proceed without it.
pub fn cifar10_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::cifar10_full();
        // Benches trade a little accuracy for wall-clock time.
        config.dataset = config.dataset.with_samples(320, 96);
        config.epochs = 10;
        TrainedPipeline::build(&config).expect("cifar10-like pipeline must build")
    })
}

/// The MNIST-like pipeline used by the table benches.
///
/// # Panics
/// Panics if pipeline construction fails.
pub fn mnist_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::mnist_full();
        config.dataset = config.dataset.with_samples(384, 96);
        config.epochs = 12;
        TrainedPipeline::build(&config).expect("mnist-like pipeline must build")
    })
}

/// The CIFAR-100-like pipeline used by the table benches (smaller than the
/// example configuration to keep bench time bounded).
///
/// # Panics
/// Panics if pipeline construction fails.
pub fn cifar100_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::cifar100_full();
        config.dataset = config.dataset.with_samples(500, 150);
        config.epochs = 8;
        TrainedPipeline::build(&config).expect("cifar100-like pipeline must build")
    })
}

/// Prints a sweep in figure form with a heading (used by every figure bench
/// so the regenerated series appear in the bench log).
pub fn print_figure(title: &str, points: &[SweepPoint], x_label: &str) {
    println!("\n==== {title} ====");
    println!("{}", format_sweep_table(points, x_label));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_config_is_small_but_valid() {
        let cfg = bench_sweep_config();
        assert!(cfg.validate().is_ok());
        assert!(cfg.eval_samples <= 64);
    }
}
