//! # nrsnn-bench
//!
//! Shared helpers for the benchmark harness.  Each Criterion bench under
//! `benches/` regenerates one table or figure of the paper's evaluation: it
//! trains (or reuses) a pipeline, runs the corresponding sweep, prints the
//! rows/series the paper reports, and additionally benchmarks the hot path
//! (one simulated inference) so regressions in simulator performance are
//! visible.
//!
//! The benches share the cached pipelines below so the expensive DNN
//! training happens once per dataset per bench binary.
//!
//! The `fig7_deletion_comparison` and `table1_deletion` benches additionally
//! time their full sweep grid serially vs on a 4-thread pool, and the
//! dedicated `parallel_scaling` bench sweeps the thread count (1/2/4/8) and
//! prints a cells-per-second scaling table — both assert the parallel
//! results are bit-identical to the serial reference before timing.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::OnceLock;

use nrsnn::prelude::*;

/// Evaluation settings shared by all benches: kept deliberately small so the
/// full `cargo bench --workspace` run finishes on a laptop while still
/// exhibiting the paper's qualitative orderings.
pub fn bench_sweep_config() -> SweepConfig {
    SweepConfig {
        time_steps: 96,
        eval_samples: 24,
        seed: 2021,
    }
}

/// The CIFAR-10-like pipeline used by the figure benches (Figs. 2–4, 6–8).
///
/// # Panics
/// Panics if pipeline construction fails — benches cannot proceed without it.
pub fn cifar10_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::cifar10_full();
        // Benches trade a little accuracy for wall-clock time.
        config.dataset = config.dataset.with_samples(320, 96);
        config.epochs = 10;
        TrainedPipeline::build(&config).expect("cifar10-like pipeline must build")
    })
}

/// The MNIST-like pipeline used by the table benches.
///
/// # Panics
/// Panics if pipeline construction fails.
pub fn mnist_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::mnist_full();
        config.dataset = config.dataset.with_samples(384, 96);
        config.epochs = 12;
        TrainedPipeline::build(&config).expect("mnist-like pipeline must build")
    })
}

/// The CIFAR-100-like pipeline used by the table benches (smaller than the
/// example configuration to keep bench time bounded).
///
/// # Panics
/// Panics if pipeline construction fails.
pub fn cifar100_pipeline() -> &'static TrainedPipeline {
    static PIPELINE: OnceLock<TrainedPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut config = PipelineConfig::cifar100_full();
        config.dataset = config.dataset.with_samples(500, 150);
        config.epochs = 8;
        TrainedPipeline::build(&config).expect("cifar100-like pipeline must build")
    })
}

/// Prints a sweep in figure form with a heading (used by every figure bench
/// so the regenerated series appear in the bench log).
pub fn print_figure(title: &str, points: &[SweepPoint], x_label: &str) {
    // nrsnn-lint: allow(forbidden-api) -- the bench harness's whole job is
    // writing the figure tables to the bench log on stdout.
    println!("\n==== {title} ====");
    // nrsnn-lint: allow(forbidden-api) -- same bench-log output path.
    println!("{}", format_sweep_table(points, x_label));
}

/// Path of the machine-readable bench summary: `$NRSNN_BENCH_JSON` if set,
/// otherwise `BENCH_sim.json` at the workspace root.
pub fn bench_summary_path() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("NRSNN_BENCH_JSON") {
        return std::path::PathBuf::from(path);
    }
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the root so
    // the perf trajectory is tracked in version control across PRs.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json")
}

/// Merges one bench's results into the shared `BENCH_sim.json` summary.
///
/// The file is one JSON object keyed by bench section (`"sim_throughput"`,
/// `"serve_throughput"`, …); each section is an object of numeric metrics.
/// Existing sections written by other benches are preserved, so benches can
/// run in any order and the file accumulates the full perf picture.
pub fn record_bench_summary(section: &str, entries: &[(&str, f64)]) {
    record_bench_summary_at(&bench_summary_path(), section, entries);
}

/// [`record_bench_summary`] against an explicit file path.
pub fn record_bench_summary_at(path: &std::path::Path, section: &str, entries: &[(&str, f64)]) {
    let mut root: Vec<(String, serde_json::Value)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|value| value.as_object().map(<[_]>::to_vec))
        .unwrap_or_default();
    let section_value = serde_json::Value::Object(
        entries
            .iter()
            .map(|(key, value)| ((*key).to_string(), serde_json::Value::Number(*value)))
            .collect(),
    );
    match root.iter_mut().find(|(key, _)| key == section) {
        Some((_, value)) => *value = section_value,
        None => root.push((section.to_string(), section_value)),
    }
    let text = format!("{}\n", serde_json::Value::Object(root));
    if let Err(e) = std::fs::write(path, text) {
        // nrsnn-lint: allow(forbidden-api) -- bench summaries are advisory;
        // a failed write must not abort the bench run, only warn.
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        // nrsnn-lint: allow(forbidden-api) -- bench-log progress line.
        println!("bench summary updated: {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_config_is_small_but_valid() {
        let cfg = bench_sweep_config();
        assert!(cfg.validate().is_ok());
        assert!(cfg.eval_samples <= 64);
    }

    #[test]
    fn bench_summary_merges_sections_instead_of_clobbering() {
        let dir = std::env::temp_dir().join("nrsnn_bench_summary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        std::fs::remove_file(&path).ok();

        record_bench_summary_at(&path, "sim_throughput", &[("samples_per_s", 100.0)]);
        record_bench_summary_at(&path, "serve_throughput", &[("batched_rps", 42.5)]);
        // Re-recording a section replaces it while the other survives.
        record_bench_summary_at(&path, "sim_throughput", &[("samples_per_s", 120.0)]);

        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            value
                .get("sim_throughput")
                .and_then(|s| s.get("samples_per_s"))
                .and_then(serde_json::Value::as_f64),
            Some(120.0)
        );
        assert_eq!(
            value
                .get("serve_throughput")
                .and_then(|s| s.get("batched_rps"))
                .and_then(serde_json::Value::as_f64),
            Some(42.5)
        );
        std::fs::remove_file(&path).ok();
    }
}
