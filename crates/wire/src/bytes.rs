//! Little-endian byte-level primitives shared by every codec in the crate.
//!
//! [`ByteWriter`] appends fixed-width little-endian scalars (floats as raw
//! IEEE bits) and length-prefixed strings/sequences to a growable buffer;
//! [`ByteReader`] is its validating inverse over a borrowed slice.  The
//! reader's cardinal rule: **never allocate from an unvalidated length** —
//! every count is checked against the bytes actually remaining before any
//! buffer is sized from it, so a hostile length prefix is a cheap typed
//! error instead of a multi-gigabyte allocation.

use crate::{Result, WireError};

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its raw IEEE bits (bit-exact for every value,
    /// including `-0.0`, subnormals and NaN payloads).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its raw IEEE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u32`, rejecting values that do not fit (no
    /// structure in this workspace legitimately exceeds 2^32 elements).
    ///
    /// # Errors
    /// Returns [`WireError::InvalidPayload`] if `v` exceeds `u32::MAX`.
    pub fn put_len(&mut self, v: usize) -> Result<()> {
        let v = u32::try_from(v)
            .map_err(|_| WireError::InvalidPayload(format!("length {v} exceeds u32::MAX")))?;
        self.put_u32(v);
        Ok(())
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string with a `u32` byte-length prefix.
    ///
    /// # Errors
    /// Returns [`WireError::InvalidPayload`] for strings above 4 GiB.
    pub fn put_str(&mut self, s: &str) -> Result<()> {
        self.put_len(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Validating little-endian decoder over a borrowed slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from its start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`WireError::TrailingBytes`] unless the reader is
    /// exhausted — the final step of every self-delimiting decode.
    ///
    /// # Errors
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than 2 bytes remain.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` from its raw IEEE bits.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its raw IEEE bits.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32` length prefix for elements of `elem_size` bytes each
    /// and validates that many bytes are actually present **before** the
    /// caller allocates anything from it.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] if the announced `count *
    /// elem_size` bytes are not all present.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize> {
        let count = self.get_u32()? as usize;
        // `count` and `elem_size` both fit in 32 bits in practice, but the
        // product is computed in u64 so a hostile count cannot overflow the
        // check itself.
        let needed = (count as u64).saturating_mul(elem_size as u64);
        if needed > self.remaining() as u64 {
            return Err(WireError::Truncated {
                needed: needed.min(usize::MAX as u64) as usize,
                have: self.remaining(),
            });
        }
        Ok(count)
    }

    /// Reads a `u32`-byte-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`WireError::Truncated`] for short input and
    /// [`WireError::InvalidPayload`] for non-UTF-8 bytes.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::InvalidPayload(format!("non-UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bitwise() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-0.0);
        w.put_f32(f32::MIN_POSITIVE / 2.0); // subnormal
        w.put_f64(f64::MAX);
        w.put_f64(-0.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(
            r.get_f32().unwrap().to_bits(),
            (f32::MIN_POSITIVE / 2.0).to_bits()
        );
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::MAX.to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut w = ByteWriter::new();
        w.put_str("hëllo wïre").unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "hëllo wïre");

        // 2-byte string that is not UTF-8.
        let bad = [2u8, 0, 0, 0, 0xFF, 0xFE];
        assert!(matches!(
            ByteReader::new(&bad).get_str(),
            Err(WireError::InvalidPayload(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // A string claiming u32::MAX bytes with 2 bytes present.
        let hostile = [0xFF, 0xFF, 0xFF, 0xFF, 1, 2];
        match ByteReader::new(&hostile).get_str() {
            Err(WireError::Truncated { needed, have }) => {
                assert_eq!(needed, u32::MAX as usize);
                assert_eq!(have, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Same through get_len with wide elements: the u64 product check
        // survives counts whose byte total would overflow usize math.
        let mut r = ByteReader::new(&hostile);
        assert!(matches!(r.get_len(8), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn truncation_is_typed_at_every_width() {
        let short = [1u8, 2, 3];
        assert!(matches!(
            ByteReader::new(&short).get_u32(),
            Err(WireError::Truncated { needed: 4, have: 3 })
        ));
        assert!(matches!(
            ByteReader::new(&short).get_u64(),
            Err(WireError::Truncated { needed: 8, have: 3 })
        ));
        let mut r = ByteReader::new(&short);
        r.take(3).unwrap();
        assert!(matches!(
            r.get_u8(),
            Err(WireError::Truncated { needed: 1, have: 0 })
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.get_u8().unwrap();
        assert_eq!(
            r.expect_exhausted(),
            Err(WireError::TrailingBytes { count: 2 })
        );
    }
}
