//! Length-prefixed versioned framing for every serving-protocol message.
//!
//! ```text
//! frame   := magic:u8 (0xB5)  version:u8 (2)  payload_len:u32le  payload
//! payload := tag:u8  body
//!
//! tag  frame                body
//! 0x01 InferRequest         model:str  seed:u64  input_len:u32  input: f32 bits
//! 0x02 StatsRequest         (empty)
//! 0x03 ListModelsRequest    (empty)
//! 0x04 PingRequest          (empty)
//! 0x05 TraceRequest         last:u32
//! 0x11 InferReply           model:str  predicted:u64  logit_len:u32
//!                           logits: f32 bits  total_spikes:u64  latency_us:u64
//!                           trace_id:u64
//! 0x12 StatsReply           see `StatsBody`
//! 0x13 ModelsReply          count:u32  (name:str)*
//! 0x14 PongReply            (empty)
//! 0x15 ErrorReply           code:str  message:str
//! 0x16 TraceReply           count:u32  (trace: see `TraceBody`)*
//! 0x21 Raster               see the `raster` module
//! ```
//!
//! The magic byte `0xB5` is deliberately distinct from `{` (`0x7B`), the
//! first byte of every JSON request — the TCP front-end sniffs the first
//! byte of a connection to pick the codec, so the two alphabets must not
//! overlap.  Payload lengths are validated against [`MAX_FRAME_LEN`]
//! before any buffer is sized from them.

use std::io::{Read, Write};

use nrsnn_snn::SpikeRaster;

use crate::raster::{read_raster, write_raster};
use crate::{ByteReader, ByteWriter, Result, WireError};

/// First byte of every binary frame.  Must never equal `b'{'` (0x7B): the
/// TCP front-end distinguishes binary from JSON by this byte alone.
pub const FRAME_MAGIC: u8 = 0xB5;

/// Wire format version this build encodes and accepts.
///
/// Version history:
/// * `1` — initial format.
/// * `2` — observability: `InferReply` gained a trailing `trace_id:u64`,
///   `StatsBody` gained `batch_size_offset`, `p999_latency_us` and the
///   per-stage latency table, and the `TraceRequest`/`TraceReply` frames
///   were added.
pub const WIRE_VERSION: u8 = 2;

/// Bytes in a frame header: magic + version + `u32` payload length.
pub const FRAME_HEADER_LEN: usize = 6;

/// Hard cap on a frame payload (16 MiB).  The largest legitimate payload —
/// an infer request for the MNIST-sized models served here — is a few KiB;
/// anything near the cap is hostile and is rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

const _MAGIC_IS_NOT_JSON: () = assert!(FRAME_MAGIC != b'{');

/// Parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Format version (currently always [`WIRE_VERSION`]).
    pub version: u8,
    /// Payload length in bytes, already validated against
    /// [`MAX_FRAME_LEN`].
    pub payload_len: u32,
}

impl FrameHeader {
    /// Parses and validates the [`FRAME_HEADER_LEN`] header bytes:
    /// magic first, then version, then the length cap.
    ///
    /// # Errors
    /// [`WireError::Truncated`], [`WireError::BadMagic`],
    /// [`WireError::UnsupportedVersion`] or [`WireError::FrameTooLarge`].
    pub fn parse(bytes: &[u8]) -> Result<FrameHeader> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: FRAME_HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[0] != FRAME_MAGIC {
            return Err(WireError::BadMagic { found: bytes[0] });
        }
        if bytes[1] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: bytes[1] });
        }
        let payload_len = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        if payload_len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge {
                len: u64::from(payload_len),
                max: u64::from(MAX_FRAME_LEN),
            });
        }
        Ok(FrameHeader {
            version: bytes[1],
            payload_len,
        })
    }
}

/// Server statistics snapshot — a field-for-field mirror of
/// `nrsnn-serve`'s `ServerStats` (kept here because the dependency points
/// the other way).  `nrsnn-serve` converts losslessly in both directions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsBody {
    /// Requests accepted into the queue.
    pub requests_received: u64,
    /// Requests answered successfully.
    pub requests_served: u64,
    /// Requests rejected because the queue was full.
    pub rejected_busy: u64,
    /// Requests that failed during processing.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Histogram of executed batch sizes (index `i` counts batches of size
    /// `batch_size_offset + i`).
    pub batch_size_histogram: Vec<u64>,
    /// Mean executed batch size.
    pub mean_batch_size: f64,
    /// p50 request latency in microseconds.
    pub p50_latency_us: u64,
    /// p99 request latency in microseconds.
    pub p99_latency_us: u64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// Total spikes across every inference.
    pub total_spikes: u64,
    /// Mean spikes per inference.
    pub spikes_per_inference: f64,
    /// Batch size counted by `batch_size_histogram[0]`.
    pub batch_size_offset: u64,
    /// p99.9 request latency in microseconds.
    pub p999_latency_us: u64,
    /// Per-stage latency percentiles, in nanoseconds.
    pub stage_latency_ns: Vec<StageLatencyBody>,
}

/// One per-stage latency entry of a [`StatsBody`] — mirrors `nrsnn-serve`'s
/// `StageLatency`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageLatencyBody {
    /// Stage name (`queue_wait`, `encode`, `simulate`, …).
    pub stage: String,
    /// p50 stage duration in nanoseconds.
    pub p50_ns: u64,
    /// p99 stage duration in nanoseconds.
    pub p99_ns: u64,
}

/// Sentinel for "no layer" in a [`TraceSpanBody`]'s `layer` field.
pub const TRACE_NO_LAYER: u32 = u32::MAX;

/// One stage of a recorded request timeline — mirrors `nrsnn-serve`'s
/// `TraceSpan`.
///
/// `stage` and `kernel` travel as small integer codes (the taxonomy of
/// `nrsnn-obs`): stages `0..=6` are `queue_wait`, `batch_assembly`,
/// `encode`, `noise`, `decode`, `simulate`, `reply_serialize`; kernels
/// `0..=2` are none, `dense`, `sparse`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSpanBody {
    /// Stage code (`0..=6`).
    pub stage: u8,
    /// Layer index, or [`TRACE_NO_LAYER`] when the stage is not per-layer.
    pub layer: u32,
    /// Start, nanoseconds since the server's monotonic epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the server's monotonic epoch.
    pub end_ns: u64,
    /// Kernel-path code (`0` none, `1` dense, `2` sparse).
    pub kernel: u8,
    /// Measured raster density for `simulate` spans, else `0`.
    pub density: f32,
}

/// One request's recorded timeline — mirrors `nrsnn-serve`'s
/// `RequestTrace`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBody {
    /// Server-unique trace id (echoed in the inference reply).
    pub trace_id: u64,
    /// Name of the model that served the request.
    pub model: String,
    /// The request's seed.
    pub seed: u64,
    /// Index of the batcher worker that ran the request.
    pub worker: u32,
    /// Admission time, nanoseconds since the server's monotonic epoch.
    pub start_ns: u64,
    /// Reply-ready time, nanoseconds since the server's monotonic epoch.
    pub end_ns: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// SIMD backend active on the worker.
    pub backend: String,
    /// Per-stage breakdown tiling `start_ns..end_ns`.
    pub spans: Vec<TraceSpanBody>,
    /// Spans discarded for lack of buffer space.
    pub dropped_spans: u32,
}

/// Every message of the serving protocol, plus a standalone spike-raster
/// frame for shard-to-shard transport.  Mirrors `nrsnn-serve`'s
/// `Request`/`Response` types; the serve crate owns the conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Run one inference (`tag 0x01`).
    InferRequest {
        /// Model name in the registry.
        model: String,
        /// Per-request seed — full u64, values above 2^53 survive.
        seed: u64,
        /// Flattened input activations.
        input: Vec<f32>,
    },
    /// Ask for a statistics snapshot (`tag 0x02`).
    StatsRequest,
    /// Ask for the model list (`tag 0x03`).
    ListModelsRequest,
    /// Liveness probe (`tag 0x04`).
    PingRequest,
    /// Ask for the last `last` recorded request timelines (`tag 0x05`).
    TraceRequest {
        /// Maximum number of recent timelines to return.
        last: u32,
    },
    /// A completed inference (`tag 0x11`).
    InferReply {
        /// Model that served the request.
        model: String,
        /// Argmax class index.
        predicted: u64,
        /// Output-layer logits, bit-exact.
        logits: Vec<f32>,
        /// Spikes emitted during the simulation.
        total_spikes: u64,
        /// Server-side latency in microseconds.
        latency_us: u64,
        /// Flight-recorder trace id (`0` when tracing is off).
        trace_id: u64,
    },
    /// Statistics snapshot (`tag 0x12`).
    StatsReply(StatsBody),
    /// Registered model names (`tag 0x13`).
    ModelsReply(Vec<String>),
    /// Liveness answer (`tag 0x14`).
    PongReply,
    /// A typed failure (`tag 0x15`).
    ErrorReply {
        /// Stable machine-readable code (mirrors `ServeError::code`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Recorded request timelines, newest first (`tag 0x16`).
    TraceReply(Vec<TraceBody>),
    /// A standalone spike raster (`tag 0x21`).
    Raster(SpikeRaster),
}

const TAG_INFER_REQUEST: u8 = 0x01;
const TAG_STATS_REQUEST: u8 = 0x02;
const TAG_LIST_MODELS_REQUEST: u8 = 0x03;
const TAG_PING_REQUEST: u8 = 0x04;
const TAG_TRACE_REQUEST: u8 = 0x05;
const TAG_INFER_REPLY: u8 = 0x11;
const TAG_STATS_REPLY: u8 = 0x12;
const TAG_MODELS_REPLY: u8 = 0x13;
const TAG_PONG_REPLY: u8 = 0x14;
const TAG_ERROR_REPLY: u8 = 0x15;
const TAG_TRACE_REPLY: u8 = 0x16;
const TAG_RASTER: u8 = 0x21;

impl Frame {
    /// The payload tag byte of this frame type.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::InferRequest { .. } => TAG_INFER_REQUEST,
            Frame::StatsRequest => TAG_STATS_REQUEST,
            Frame::ListModelsRequest => TAG_LIST_MODELS_REQUEST,
            Frame::PingRequest => TAG_PING_REQUEST,
            Frame::TraceRequest { .. } => TAG_TRACE_REQUEST,
            Frame::InferReply { .. } => TAG_INFER_REPLY,
            Frame::StatsReply(_) => TAG_STATS_REPLY,
            Frame::ModelsReply(_) => TAG_MODELS_REPLY,
            Frame::PongReply => TAG_PONG_REPLY,
            Frame::ErrorReply { .. } => TAG_ERROR_REPLY,
            Frame::TraceReply(_) => TAG_TRACE_REPLY,
            Frame::Raster(_) => TAG_RASTER,
        }
    }
}

/// Encodes a frame payload (tag + body, no header).
///
/// # Errors
/// [`WireError::InvalidPayload`] if a length field overflows `u32` or a
/// raster exceeds its dimension cap.
pub fn encode_payload(frame: &Frame) -> Result<Vec<u8>> {
    let mut w = ByteWriter::with_capacity(64);
    w.put_u8(frame.tag());
    match frame {
        Frame::InferRequest { model, seed, input } => {
            w.put_str(model)?;
            w.put_u64(*seed);
            w.put_len(input.len())?;
            for &v in input {
                w.put_f32(v);
            }
        }
        Frame::StatsRequest | Frame::ListModelsRequest | Frame::PingRequest | Frame::PongReply => {}
        Frame::TraceRequest { last } => {
            w.put_u32(*last);
        }
        Frame::InferReply {
            model,
            predicted,
            logits,
            total_spikes,
            latency_us,
            trace_id,
        } => {
            w.put_str(model)?;
            w.put_u64(*predicted);
            w.put_len(logits.len())?;
            for &v in logits {
                w.put_f32(v);
            }
            w.put_u64(*total_spikes);
            w.put_u64(*latency_us);
            w.put_u64(*trace_id);
        }
        Frame::StatsReply(stats) => {
            w.put_u64(stats.requests_received);
            w.put_u64(stats.requests_served);
            w.put_u64(stats.rejected_busy);
            w.put_u64(stats.failed);
            w.put_u64(stats.batches);
            w.put_len(stats.batch_size_histogram.len())?;
            for &bucket in &stats.batch_size_histogram {
                w.put_u64(bucket);
            }
            w.put_f64(stats.mean_batch_size);
            w.put_u64(stats.p50_latency_us);
            w.put_u64(stats.p99_latency_us);
            w.put_f64(stats.mean_latency_us);
            w.put_u64(stats.total_spikes);
            w.put_f64(stats.spikes_per_inference);
            w.put_u64(stats.batch_size_offset);
            w.put_u64(stats.p999_latency_us);
            w.put_len(stats.stage_latency_ns.len())?;
            for entry in &stats.stage_latency_ns {
                w.put_str(&entry.stage)?;
                w.put_u64(entry.p50_ns);
                w.put_u64(entry.p99_ns);
            }
        }
        Frame::TraceReply(traces) => {
            w.put_len(traces.len())?;
            for trace in traces {
                w.put_u64(trace.trace_id);
                w.put_str(&trace.model)?;
                w.put_u64(trace.seed);
                w.put_u32(trace.worker);
                w.put_u64(trace.start_ns);
                w.put_u64(trace.end_ns);
                w.put_u8(u8::from(trace.ok));
                w.put_str(&trace.backend)?;
                w.put_u32(trace.dropped_spans);
                w.put_len(trace.spans.len())?;
                for span in &trace.spans {
                    w.put_u8(span.stage);
                    w.put_u32(span.layer);
                    w.put_u64(span.start_ns);
                    w.put_u64(span.end_ns);
                    w.put_u8(span.kernel);
                    w.put_f32(span.density);
                }
            }
        }
        Frame::ModelsReply(names) => {
            w.put_len(names.len())?;
            for name in names {
                w.put_str(name)?;
            }
        }
        Frame::ErrorReply { code, message } => {
            w.put_str(code)?;
            w.put_str(message)?;
        }
        Frame::Raster(raster) => {
            write_raster(&mut w, raster)?;
        }
    }
    Ok(w.into_bytes())
}

/// Decodes a frame payload (tag + body), requiring every byte to be
/// consumed.
///
/// # Errors
/// Any [`WireError`] except `BadMagic`/`FrameTooLarge` (those are header
/// properties).
pub fn decode_payload(payload: &[u8]) -> Result<Frame> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8()?;
    let frame = match tag {
        TAG_INFER_REQUEST => {
            let model = r.get_str()?;
            let seed = r.get_u64()?;
            let len = r.get_len(4)?;
            let mut input = Vec::with_capacity(len);
            for _ in 0..len {
                input.push(r.get_f32()?);
            }
            Frame::InferRequest { model, seed, input }
        }
        TAG_STATS_REQUEST => Frame::StatsRequest,
        TAG_LIST_MODELS_REQUEST => Frame::ListModelsRequest,
        TAG_PING_REQUEST => Frame::PingRequest,
        TAG_TRACE_REQUEST => Frame::TraceRequest { last: r.get_u32()? },
        TAG_INFER_REPLY => {
            let model = r.get_str()?;
            let predicted = r.get_u64()?;
            let len = r.get_len(4)?;
            let mut logits = Vec::with_capacity(len);
            for _ in 0..len {
                logits.push(r.get_f32()?);
            }
            let total_spikes = r.get_u64()?;
            let latency_us = r.get_u64()?;
            let trace_id = r.get_u64()?;
            Frame::InferReply {
                model,
                predicted,
                logits,
                total_spikes,
                latency_us,
                trace_id,
            }
        }
        TAG_STATS_REPLY => {
            let requests_received = r.get_u64()?;
            let requests_served = r.get_u64()?;
            let rejected_busy = r.get_u64()?;
            let failed = r.get_u64()?;
            let batches = r.get_u64()?;
            let len = r.get_len(8)?;
            let mut batch_size_histogram = Vec::with_capacity(len);
            for _ in 0..len {
                batch_size_histogram.push(r.get_u64()?);
            }
            let mean_batch_size = r.get_f64()?;
            let p50_latency_us = r.get_u64()?;
            let p99_latency_us = r.get_u64()?;
            let mean_latency_us = r.get_f64()?;
            let total_spikes = r.get_u64()?;
            let spikes_per_inference = r.get_f64()?;
            let batch_size_offset = r.get_u64()?;
            let p999_latency_us = r.get_u64()?;
            // Each entry costs at least its stage-name length prefix plus
            // two u64 percentiles.
            let stage_len = r.get_len(20)?;
            let mut stage_latency_ns = Vec::with_capacity(stage_len);
            for _ in 0..stage_len {
                stage_latency_ns.push(StageLatencyBody {
                    stage: r.get_str()?,
                    p50_ns: r.get_u64()?,
                    p99_ns: r.get_u64()?,
                });
            }
            Frame::StatsReply(StatsBody {
                requests_received,
                requests_served,
                rejected_busy,
                failed,
                batches,
                batch_size_histogram,
                mean_batch_size,
                p50_latency_us,
                p99_latency_us,
                mean_latency_us,
                total_spikes,
                spikes_per_inference,
                batch_size_offset,
                p999_latency_us,
                stage_latency_ns,
            })
        }
        TAG_MODELS_REPLY => {
            // Each name costs at least its 4-byte length prefix.
            let len = r.get_len(4)?;
            let mut names = Vec::with_capacity(len);
            for _ in 0..len {
                names.push(r.get_str()?);
            }
            Frame::ModelsReply(names)
        }
        TAG_PONG_REPLY => Frame::PongReply,
        TAG_ERROR_REPLY => Frame::ErrorReply {
            code: r.get_str()?,
            message: r.get_str()?,
        },
        TAG_TRACE_REPLY => {
            // Each trace costs at least its fixed-width scalar fields.
            let count = r.get_len(45)?;
            let mut traces = Vec::with_capacity(count);
            for _ in 0..count {
                let trace_id = r.get_u64()?;
                let model = r.get_str()?;
                let seed = r.get_u64()?;
                let worker = r.get_u32()?;
                let start_ns = r.get_u64()?;
                let end_ns = r.get_u64()?;
                let ok = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::InvalidPayload(format!(
                            "trace ok flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                let backend = r.get_str()?;
                let dropped_spans = r.get_u32()?;
                // Each span is 26 fixed bytes.
                let span_count = r.get_len(26)?;
                let mut spans = Vec::with_capacity(span_count);
                for _ in 0..span_count {
                    spans.push(TraceSpanBody {
                        stage: r.get_u8()?,
                        layer: r.get_u32()?,
                        start_ns: r.get_u64()?,
                        end_ns: r.get_u64()?,
                        kernel: r.get_u8()?,
                        density: r.get_f32()?,
                    });
                }
                traces.push(TraceBody {
                    trace_id,
                    model,
                    seed,
                    worker,
                    start_ns,
                    end_ns,
                    ok,
                    backend,
                    spans,
                    dropped_spans,
                });
            }
            Frame::TraceReply(traces)
        }
        TAG_RASTER => Frame::Raster(read_raster(&mut r)?),
        other => return Err(WireError::UnknownTag { tag: other }),
    };
    r.expect_exhausted()?;
    Ok(frame)
}

/// Encodes a complete frame: header plus payload.
///
/// # Errors
/// [`WireError::InvalidPayload`] for overlong fields,
/// [`WireError::FrameTooLarge`] if the payload exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>> {
    let payload = encode_payload(frame)?;
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decodes exactly one frame from `bytes`, requiring every byte to be
/// consumed.
///
/// # Errors
/// Any [`WireError`]; trailing bytes after the frame are
/// [`WireError::TrailingBytes`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame> {
    let header = FrameHeader::parse(bytes)?;
    let rest = &bytes[FRAME_HEADER_LEN..];
    let payload_len = header.payload_len as usize;
    if rest.len() < payload_len {
        return Err(WireError::Truncated {
            needed: payload_len,
            have: rest.len(),
        });
    }
    if rest.len() > payload_len {
        return Err(WireError::TrailingBytes {
            count: rest.len() - payload_len,
        });
    }
    decode_payload(rest)
}

/// Writes one frame to a stream.
///
/// # Errors
/// Encoding errors as in [`encode_frame`]; I/O failures as
/// [`WireError::Io`].
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<()> {
    let bytes = encode_frame(frame)?;
    writer.write_all(&bytes)?;
    Ok(())
}

/// Reads one frame from a stream: the fixed-size header first, then
/// exactly the announced payload.  The payload buffer is sized only after
/// the header passes the [`MAX_FRAME_LEN`] check.
///
/// # Errors
/// Header/payload errors as in [`decode_frame`]; a stream that ends
/// mid-frame is [`WireError::Io`].
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Frame> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    reader.read_exact(&mut header_bytes)?;
    let header = FrameHeader::parse(&header_bytes)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    reader.read_exact(&mut payload)?;
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        let mut raster = SpikeRaster::new(8, 96);
        raster.set_train(2, vec![0, 17, 95]);
        vec![
            Frame::InferRequest {
                model: "mnist-ttas".to_string(),
                seed: (1u64 << 60) + 7, // above 2^53
                input: vec![0.0, -0.0, 1.5e-42, f32::MAX],
            },
            Frame::StatsRequest,
            Frame::ListModelsRequest,
            Frame::PingRequest,
            Frame::TraceRequest { last: 16 },
            Frame::InferReply {
                model: "mnist-ttas".to_string(),
                predicted: 7,
                logits: vec![-0.0, 3.25, f32::MIN_POSITIVE / 4.0],
                total_spikes: 421,
                latency_us: 1_553,
                trace_id: (1u64 << 57) + 3,
            },
            Frame::StatsReply(StatsBody {
                requests_received: 10,
                requests_served: 9,
                rejected_busy: 1,
                failed: 0,
                batches: 4,
                batch_size_histogram: vec![1, 0, 2, 1],
                mean_batch_size: 2.25,
                p50_latency_us: 900,
                p99_latency_us: 4_100,
                mean_latency_us: 1_250.5,
                total_spikes: 3_800,
                spikes_per_inference: 422.22,
                batch_size_offset: 2,
                p999_latency_us: 9_700,
                stage_latency_ns: vec![
                    StageLatencyBody {
                        stage: "queue_wait".to_string(),
                        p50_ns: 12_000,
                        p99_ns: 88_000,
                    },
                    StageLatencyBody {
                        stage: "simulate".to_string(),
                        p50_ns: 640_000,
                        p99_ns: 1_900_000,
                    },
                ],
            }),
            Frame::TraceReply(vec![TraceBody {
                trace_id: 11,
                model: "mnist-ttas".to_string(),
                seed: (1u64 << 61) + 5,
                worker: 1,
                start_ns: 5_000,
                end_ns: 905_000,
                ok: true,
                backend: "sse2".to_string(),
                spans: vec![
                    TraceSpanBody {
                        stage: 0, // queue_wait
                        layer: TRACE_NO_LAYER,
                        start_ns: 5_000,
                        end_ns: 45_000,
                        kernel: 0,
                        density: 0.0,
                    },
                    TraceSpanBody {
                        stage: 5, // simulate
                        layer: 1,
                        start_ns: 45_000,
                        end_ns: 905_000,
                        kernel: 2, // sparse
                        density: 0.0625,
                    },
                ],
                dropped_spans: 0,
            }]),
            Frame::ModelsReply(vec!["a".to_string(), "b-ttfs".to_string()]),
            Frame::PongReply,
            Frame::ErrorReply {
                code: "unknown_model".to_string(),
                message: "no model named 'x'".to_string(),
            },
            Frame::Raster(raster),
        ]
    }

    #[test]
    fn every_frame_type_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame).unwrap();
            assert_eq!(bytes[0], FRAME_MAGIC);
            assert_eq!(bytes[1], WIRE_VERSION);
            let back = decode_frame(&bytes).unwrap();
            // Structural equality plus re-encoded bytes, so -0.0 vs 0.0
            // cannot hide behind PartialEq.
            assert_eq!(back, frame);
            assert_eq!(encode_frame(&back).unwrap(), bytes);
        }
    }

    #[test]
    fn streaming_helpers_match_the_buffer_codec() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            write_frame(&mut stream, frame).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for frame in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn header_errors_are_ordered_and_typed() {
        assert_eq!(
            FrameHeader::parse(&[FRAME_MAGIC]),
            Err(WireError::Truncated { needed: 6, have: 1 })
        );
        assert_eq!(
            FrameHeader::parse(&[b'{', 1, 0, 0, 0, 0]),
            Err(WireError::BadMagic { found: b'{' })
        );
        assert_eq!(
            FrameHeader::parse(&[FRAME_MAGIC, 99, 0, 0, 0, 0]),
            Err(WireError::UnsupportedVersion { found: 99 })
        );
        let mut oversized = [FRAME_MAGIC, WIRE_VERSION, 0, 0, 0, 0];
        oversized[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            FrameHeader::parse(&oversized),
            Err(WireError::FrameTooLarge {
                len: u64::from(u32::MAX),
                max: u64::from(MAX_FRAME_LEN),
            })
        );
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert_eq!(
            decode_payload(&[0x7F]),
            Err(WireError::UnknownTag { tag: 0x7F })
        );
        let mut bytes = encode_frame(&Frame::PingRequest).unwrap();
        bytes.push(0);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        );
        // Payload longer than its body: the tag decodes, the extra byte
        // inside the announced payload is trailing.
        let mut w = ByteWriter::new();
        w.put_u8(FRAME_MAGIC);
        w.put_u8(WIRE_VERSION);
        w.put_u32(2);
        w.put_u8(TAG_PING_REQUEST);
        w.put_u8(0xEE);
        assert_eq!(
            decode_frame(w.as_slice()),
            Err(WireError::TrailingBytes { count: 1 })
        );
    }
}
