//! # nrsnn-wire
//!
//! The compact binary wire and model format of the NRSNN reproduction: a
//! length-prefixed, versioned framing for every serving-protocol message, a
//! sparse spike-raster codec, and the binary on-disk model format.  The
//! newline-delimited JSON protocol of `nrsnn-serve` stays available as the
//! negotiated fallback; this crate supplies the byte-exact encoding the
//! ROADMAP's scale-out serving needs (floats as raw little-endian bits, not
//! decimal text; spike rasters as an index/value split, not nested arrays).
//!
//! ## Correctness bar
//!
//! Every codec here is **bit-exact**: `decode(encode(x))` reproduces `x`
//! down to the sign of a negative zero and the last bit of a subnormal, and
//! seeds travel as full 64-bit integers so values above 2^53 survive (JSON
//! numbers are IEEE doubles and silently truncate them).  The property
//! suite in `tests/roundtrip_proptest.rs` pins this per frame type, the
//! golden files under `tests/golden/` pin the byte layout itself, and the
//! adversarial suite in `tests/adversarial.rs` pins decoder behaviour on
//! hostile input (truncation, oversized length prefixes, corrupt bytes):
//! always a typed [`WireError`], never a panic, a hang or an unbounded
//! allocation.
//!
//! ## Layout overview
//!
//! ```text
//! frame   := magic:u8 (0xB5)  version:u8  payload_len:u32le  payload
//! payload := tag:u8  body            (see `frame` module for every tag)
//! model   := "NRSM"  version:u8  body (see `model` module)
//! ```
//!
//! Scalars are little-endian; `f32`/`f64` travel as their raw IEEE bits via
//! `to_bits`/`from_bits`.  Strings are UTF-8 with a `u32` byte-length
//! prefix; sequences carry a `u32` element count.  A decoder rejects any
//! length prefix that exceeds the bytes actually present **before**
//! allocating, so a hostile 4 GiB length prefix costs nothing.
//!
//! ## Versioning
//!
//! [`WIRE_VERSION`] (frames) and [`MODEL_VERSION`] (model files) are single
//! bytes checked on decode; an unknown version is a typed
//! [`WireError::UnsupportedVersion`], never a best-effort parse.  Bumping a
//! version requires re-blessing the golden fixtures (see
//! `tests/golden.rs`).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bytes;
pub mod frame;
pub mod model;
pub mod raster;

pub use bytes::{ByteReader, ByteWriter};
pub use frame::{
    decode_frame, decode_payload, encode_frame, encode_payload, read_frame, write_frame, Frame,
    FrameHeader, StageLatencyBody, StatsBody, TraceBody, TraceSpanBody, FRAME_HEADER_LEN,
    FRAME_MAGIC, MAX_FRAME_LEN, TRACE_NO_LAYER, WIRE_VERSION,
};
pub use model::{
    decode_model, encode_model, LayerDesc, ModelRecord, NoiseDesc, MODEL_MAGIC, MODEL_VERSION,
};
pub use raster::{decode_raster, encode_raster, read_raster, write_raster, MAX_RASTER_DIM};

use std::error::Error;
use std::fmt;

/// Everything a wire decoder can reject (and the I/O failures of the
/// streaming helpers).  Every variant is a *typed* refusal: hostile bytes
/// can produce any of these but never a panic or an attacker-sized
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced structure did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually left.
        have: usize,
    },
    /// The first byte of a frame (or the 4-byte model preamble) did not
    /// carry the expected magic.
    BadMagic {
        /// The byte that was found where the magic belonged.
        found: u8,
    },
    /// The format version byte is not one this build understands.
    UnsupportedVersion {
        /// The version byte that was found.
        found: u8,
    },
    /// A frame announced a payload larger than [`MAX_FRAME_LEN`]; rejected
    /// before any allocation.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The enforced cap.
        max: u64,
    },
    /// The payload tag byte does not name a known frame type.
    UnknownTag {
        /// The unknown tag.
        tag: u8,
    },
    /// The bytes were structurally readable but semantically invalid
    /// (unsorted spike train, out-of-range index, non-UTF-8 string, …).
    InvalidPayload(String),
    /// Decoding consumed the structure but bytes were left over — the
    /// encoding is self-delimiting, so trailing garbage is corruption.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// An I/O failure in the streaming `read_frame`/`write_frame` helpers.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic byte 0x{found:02X}"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag 0x{tag:02X}"),
            WireError::InvalidPayload(msg) => write!(f, "invalid payload: {msg}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete structure")
            }
            WireError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WireError>;
