//! Binary on-disk model format.
//!
//! ```text
//! model  := "NRSM"  version:u8 (1)
//!           name:str
//!           coding:u8 (0 rate | 1 phase | 2 burst | 3 ttfs | 4 ttas) [t_a:u32 if ttas]
//!           time_steps:u32  threshold:f32bits  ttfs_tau_fraction:f32bits
//!           scaling:f32bits  noise  master_seed:u64
//!           layer_count:u32  layer*  tensor_count:u32  tensor*
//! noise  := 0 (clean)
//!         | 1 p:f64bits (deletion)
//!         | 2 sigma:f64bits (jitter)
//!         | 3 stage_count:u32 noise* (composite; stages must be primitive)
//! layer  := 0 out:u32 input:u32                                   (linear)
//!         | 1 out_channels:u32 in_channels:u32 in_height:u32
//!             in_width:u32 kernel:u32 stride:u32 padding:u32      (conv)
//!         | 2 channels:u32 in_height:u32 in_width:u32
//!             window:u32 stride:u32                               (avgpool)
//! tensor := rank:u32  dim:u32 x rank  len:u32  value:f64bits x len
//! ```
//!
//! Tensor data travels as **little-endian f64 bits** (shape header + flat
//! data, rten/kornia-style).  The in-memory tensors are `f32`; widening to
//! `f64` is exact for every finite value, `-0.0` and subnormals included,
//! so the round-trip is bit-exact.  The decoder requires every stored
//! `f64` to narrow back to `f32` losslessly — a value that does not (a
//! NaN, or a double that was never an `f32`) is a typed
//! [`WireError::InvalidPayload`], which also makes the encoding of a given
//! weight set unique.  Seeds are full `u64`s: a master seed above 2^53
//! survives, which JSON's IEEE-double numbers cannot guarantee.

use nrsnn_dnn::NetworkWeights;
use nrsnn_snn::CodingKind;
use nrsnn_tensor::Tensor;

use crate::{ByteReader, ByteWriter, Result, WireError};

/// Four-byte preamble of every binary model file.
pub const MODEL_MAGIC: [u8; 4] = *b"NRSM";

/// Model format version this build encodes and accepts.
pub const MODEL_VERSION: u8 = 1;

/// Hard cap on a tensor's rank; everything in this workspace is rank 1–2.
pub const MAX_TENSOR_RANK: usize = 8;

/// Architecture of one layer — a field-for-field mirror of `nrsnn-serve`'s
/// `LayerSpec` (kept here because the dependency points the other way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerDesc {
    /// Fully connected layer.
    Linear {
        /// Output width.
        out: usize,
        /// Input width.
        input: usize,
    },
    /// Convolution layer.
    Conv {
        /// Number of output channels.
        out_channels: usize,
        /// Number of input channels.
        in_channels: usize,
        /// Input height in pixels.
        in_height: usize,
        /// Input width in pixels.
        in_width: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride in both directions.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Average pooling (parameter-free).
    AvgPool {
        /// Number of channels.
        channels: usize,
        /// Input height in pixels.
        in_height: usize,
        /// Input width in pixels.
        in_width: usize,
        /// Square pooling window.
        window: usize,
        /// Stride.
        stride: usize,
    },
}

/// Deployment noise description — mirror of `nrsnn-serve`'s `NoiseSpec`.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseDesc {
    /// No noise.
    Clean,
    /// Per-spike deletion with the given probability.
    Deletion(f64),
    /// Gaussian spike-time jitter with the given standard deviation.
    Jitter(f64),
    /// A chain of primitive stages (nested composites are rejected by both
    /// encoder and decoder, matching the serve-side semantics).
    Composite(Vec<NoiseDesc>),
}

/// Everything a binary model file carries — a lossless mirror of
/// `nrsnn-serve`'s `ModelSpec` (the serve crate owns the conversions).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Registry name clients address the model by.
    pub name: String,
    /// Neural coding used for every layer.
    pub coding: CodingKind,
    /// Simulation window length per layer.
    pub time_steps: u32,
    /// Encoding ceiling θ.
    pub threshold: f32,
    /// TTFS/TTAS PSC time constant as a fraction of the window.
    pub ttfs_tau_fraction: f32,
    /// Weight-scaling factor already folded into the parameters.
    pub scaling: f32,
    /// Noise transform injected into every transmitted raster.
    pub noise: NoiseDesc,
    /// Master seed — full u64, values above 2^53 survive.
    pub master_seed: u64,
    /// Layer architecture, input layer first.
    pub layers: Vec<LayerDesc>,
    /// Flat parameter list in `nrsnn-dnn::NetworkWeights` layout
    /// (layer-major, weights before bias).
    pub weights: NetworkWeights,
}

const CODING_RATE: u8 = 0;
const CODING_PHASE: u8 = 1;
const CODING_BURST: u8 = 2;
const CODING_TTFS: u8 = 3;
const CODING_TTAS: u8 = 4;

const NOISE_CLEAN: u8 = 0;
const NOISE_DELETION: u8 = 1;
const NOISE_JITTER: u8 = 2;
const NOISE_COMPOSITE: u8 = 3;

const LAYER_LINEAR: u8 = 0;
const LAYER_CONV: u8 = 1;
const LAYER_AVGPOOL: u8 = 2;

fn put_usize(w: &mut ByteWriter, v: usize) -> Result<()> {
    u32::try_from(v)
        .map(|v| w.put_u32(v))
        .map_err(|_| WireError::InvalidPayload(format!("dimension {v} exceeds u32::MAX")))
}

fn write_coding(w: &mut ByteWriter, coding: CodingKind) {
    match coding {
        CodingKind::Rate => w.put_u8(CODING_RATE),
        CodingKind::Phase => w.put_u8(CODING_PHASE),
        CodingKind::Burst => w.put_u8(CODING_BURST),
        CodingKind::Ttfs => w.put_u8(CODING_TTFS),
        CodingKind::Ttas(t_a) => {
            w.put_u8(CODING_TTAS);
            w.put_u32(t_a);
        }
    }
}

fn read_coding(r: &mut ByteReader<'_>) -> Result<CodingKind> {
    match r.get_u8()? {
        CODING_RATE => Ok(CodingKind::Rate),
        CODING_PHASE => Ok(CodingKind::Phase),
        CODING_BURST => Ok(CodingKind::Burst),
        CODING_TTFS => Ok(CodingKind::Ttfs),
        CODING_TTAS => Ok(CodingKind::Ttas(r.get_u32()?)),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

fn write_noise(w: &mut ByteWriter, noise: &NoiseDesc, top_level: bool) -> Result<()> {
    match noise {
        NoiseDesc::Clean => w.put_u8(NOISE_CLEAN),
        NoiseDesc::Deletion(p) => {
            w.put_u8(NOISE_DELETION);
            w.put_f64(*p);
        }
        NoiseDesc::Jitter(sigma) => {
            w.put_u8(NOISE_JITTER);
            w.put_f64(*sigma);
        }
        NoiseDesc::Composite(stages) => {
            if !top_level {
                return Err(WireError::InvalidPayload(
                    "composite noise stages must be primitive".to_string(),
                ));
            }
            w.put_u8(NOISE_COMPOSITE);
            w.put_len(stages.len())?;
            for stage in stages {
                write_noise(w, stage, false)?;
            }
        }
    }
    Ok(())
}

fn read_noise(r: &mut ByteReader<'_>, top_level: bool) -> Result<NoiseDesc> {
    match r.get_u8()? {
        NOISE_CLEAN => Ok(NoiseDesc::Clean),
        NOISE_DELETION => Ok(NoiseDesc::Deletion(r.get_f64()?)),
        NOISE_JITTER => Ok(NoiseDesc::Jitter(r.get_f64()?)),
        NOISE_COMPOSITE if top_level => {
            let count = r.get_len(1)?;
            let mut stages = Vec::with_capacity(count);
            for _ in 0..count {
                stages.push(read_noise(r, false)?);
            }
            Ok(NoiseDesc::Composite(stages))
        }
        NOISE_COMPOSITE => Err(WireError::InvalidPayload(
            "composite noise stages must be primitive".to_string(),
        )),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

fn write_layer(w: &mut ByteWriter, layer: &LayerDesc) -> Result<()> {
    match *layer {
        LayerDesc::Linear { out, input } => {
            w.put_u8(LAYER_LINEAR);
            put_usize(w, out)?;
            put_usize(w, input)?;
        }
        LayerDesc::Conv {
            out_channels,
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        } => {
            w.put_u8(LAYER_CONV);
            for v in [
                out_channels,
                in_channels,
                in_height,
                in_width,
                kernel,
                stride,
                padding,
            ] {
                put_usize(w, v)?;
            }
        }
        LayerDesc::AvgPool {
            channels,
            in_height,
            in_width,
            window,
            stride,
        } => {
            w.put_u8(LAYER_AVGPOOL);
            for v in [channels, in_height, in_width, window, stride] {
                put_usize(w, v)?;
            }
        }
    }
    Ok(())
}

fn read_layer(r: &mut ByteReader<'_>) -> Result<LayerDesc> {
    match r.get_u8()? {
        LAYER_LINEAR => Ok(LayerDesc::Linear {
            out: r.get_u32()? as usize,
            input: r.get_u32()? as usize,
        }),
        LAYER_CONV => Ok(LayerDesc::Conv {
            out_channels: r.get_u32()? as usize,
            in_channels: r.get_u32()? as usize,
            in_height: r.get_u32()? as usize,
            in_width: r.get_u32()? as usize,
            kernel: r.get_u32()? as usize,
            stride: r.get_u32()? as usize,
            padding: r.get_u32()? as usize,
        }),
        LAYER_AVGPOOL => Ok(LayerDesc::AvgPool {
            channels: r.get_u32()? as usize,
            in_height: r.get_u32()? as usize,
            in_width: r.get_u32()? as usize,
            window: r.get_u32()? as usize,
            stride: r.get_u32()? as usize,
        }),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

fn write_tensor(w: &mut ByteWriter, tensor: &Tensor) -> Result<()> {
    let dims = tensor.dims();
    if dims.len() > MAX_TENSOR_RANK {
        return Err(WireError::InvalidPayload(format!(
            "tensor rank {} exceeds the cap of {MAX_TENSOR_RANK}",
            dims.len()
        )));
    }
    put_usize(w, dims.len())?;
    for &d in dims {
        put_usize(w, d)?;
    }
    let data = tensor.as_slice();
    w.put_len(data.len())?;
    for &v in data {
        // Exact for every finite f32 (and ±inf); see the module docs.
        w.put_f64(f64::from(v));
    }
    Ok(())
}

fn read_tensor(r: &mut ByteReader<'_>) -> Result<Tensor> {
    let rank = r.get_u32()? as usize;
    if rank > MAX_TENSOR_RANK {
        return Err(WireError::InvalidPayload(format!(
            "tensor rank {rank} exceeds the cap of {MAX_TENSOR_RANK}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut product: u64 = 1;
    for _ in 0..rank {
        let d = r.get_u32()?;
        product = product.saturating_mul(u64::from(d));
        dims.push(d as usize);
    }
    let len = r.get_len(8)?;
    if product != len as u64 {
        return Err(WireError::InvalidPayload(format!(
            "tensor of shape {dims:?} needs {product} values but the file carries {len}"
        )));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        let wide = r.get_f64()?;
        let narrow = wide as f32;
        if f64::from(narrow).to_bits() != wide.to_bits() {
            return Err(WireError::InvalidPayload(format!(
                "stored f64 0x{:016X} is not an exact f32 widening",
                wide.to_bits()
            )));
        }
        data.push(narrow);
    }
    Tensor::from_vec(data, &dims).map_err(|e| WireError::InvalidPayload(e.to_string()))
}

/// Encodes a model record as a standalone binary file image.
///
/// # Errors
/// [`WireError::InvalidPayload`] for out-of-range dimensions, overlong
/// fields or nested composite noise.
pub fn encode_model(record: &ModelRecord) -> Result<Vec<u8>> {
    let mut w = ByteWriter::with_capacity(256);
    w.put_bytes(&MODEL_MAGIC);
    w.put_u8(MODEL_VERSION);
    w.put_str(&record.name)?;
    write_coding(&mut w, record.coding);
    w.put_u32(record.time_steps);
    w.put_f32(record.threshold);
    w.put_f32(record.ttfs_tau_fraction);
    w.put_f32(record.scaling);
    write_noise(&mut w, &record.noise, true)?;
    w.put_u64(record.master_seed);
    w.put_len(record.layers.len())?;
    for layer in &record.layers {
        write_layer(&mut w, layer)?;
    }
    w.put_len(record.weights.params.len())?;
    for tensor in &record.weights.params {
        write_tensor(&mut w, tensor)?;
    }
    Ok(w.into_bytes())
}

/// Decodes a binary model file image, requiring every byte to be consumed.
///
/// # Errors
/// [`WireError::BadMagic`] if the file does not start with `"NRSM"` (the
/// first differing byte is reported), [`WireError::UnsupportedVersion`]
/// for an unknown version byte, and the usual typed decode errors.
pub fn decode_model(bytes: &[u8]) -> Result<ModelRecord> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(MODEL_MAGIC.len())?;
    if magic != MODEL_MAGIC {
        let found = magic
            .iter()
            .zip(&MODEL_MAGIC)
            .find(|(a, b)| a != b)
            .map_or(magic[0], |(&a, _)| a);
        return Err(WireError::BadMagic { found });
    }
    let version = r.get_u8()?;
    if version != MODEL_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let name = r.get_str()?;
    let coding = read_coding(&mut r)?;
    let time_steps = r.get_u32()?;
    let threshold = r.get_f32()?;
    let ttfs_tau_fraction = r.get_f32()?;
    let scaling = r.get_f32()?;
    let noise = read_noise(&mut r, true)?;
    let master_seed = r.get_u64()?;
    // Each layer costs at least its tag byte; each tensor at least 8 bytes
    // (rank + length words).
    let layer_count = r.get_len(1)?;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        layers.push(read_layer(&mut r)?);
    }
    let tensor_count = r.get_len(8)?;
    let mut params = Vec::with_capacity(tensor_count);
    for _ in 0..tensor_count {
        params.push(read_tensor(&mut r)?);
    }
    r.expect_exhausted()?;
    Ok(ModelRecord {
        name,
        coding,
        time_steps,
        threshold,
        ttfs_tau_fraction,
        scaling,
        noise,
        master_seed,
        layers,
        weights: NetworkWeights { params },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ModelRecord {
        ModelRecord {
            name: "mnist-ttas".to_string(),
            coding: CodingKind::Ttas(5),
            time_steps: 96,
            threshold: 1.0,
            ttfs_tau_fraction: 4.0,
            scaling: 0.5,
            noise: NoiseDesc::Composite(vec![NoiseDesc::Deletion(0.35), NoiseDesc::Jitter(1.5)]),
            master_seed: (1u64 << 60) + 424_242, // above 2^53
            layers: vec![
                LayerDesc::Conv {
                    out_channels: 4,
                    in_channels: 1,
                    in_height: 8,
                    in_width: 8,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerDesc::AvgPool {
                    channels: 4,
                    in_height: 8,
                    in_width: 8,
                    window: 2,
                    stride: 2,
                },
                LayerDesc::Linear { out: 10, input: 64 },
            ],
            weights: NetworkWeights {
                params: vec![
                    Tensor::from_vec(
                        (0..36).map(|i| (i as f32 - 18.0) * 0.125).collect(),
                        &[4, 9],
                    )
                    .unwrap(),
                    Tensor::from_vec(vec![-0.0, 1.5e-42, f32::MAX, 0.25], &[4]).unwrap(),
                    Tensor::from_vec(vec![0.5; 640], &[10, 64]).unwrap(),
                    Tensor::from_vec(vec![0.0; 10], &[10]).unwrap(),
                ],
            },
        }
    }

    fn assert_bitwise_equal(a: &ModelRecord, b: &ModelRecord) {
        assert_eq!(a, b);
        for (ta, tb) in a.weights.params.iter().zip(&b.weights.params) {
            assert_eq!(ta.dims(), tb.dims());
            for (va, vb) in ta.as_slice().iter().zip(tb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn model_round_trips_bit_exactly() {
        let record = sample_record();
        let bytes = encode_model(&record).unwrap();
        assert_eq!(&bytes[..4], b"NRSM");
        let back = decode_model(&bytes).unwrap();
        assert_bitwise_equal(&back, &record);
        assert_eq!(encode_model(&back).unwrap(), bytes);
    }

    #[test]
    fn empty_and_extreme_records_round_trip() {
        let mut record = sample_record();
        record.layers.clear();
        record.weights.params.clear();
        record.noise = NoiseDesc::Clean;
        record.master_seed = u64::MAX;
        let back = decode_model(&encode_model(&record).unwrap()).unwrap();
        assert_bitwise_equal(&back, &record);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let record = sample_record();
        let good = encode_model(&record).unwrap();
        let mut bad_magic = good.clone();
        bad_magic[1] = b'X';
        assert_eq!(
            decode_model(&bad_magic),
            Err(WireError::BadMagic { found: b'X' })
        );
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_model(&bad_version),
            Err(WireError::UnsupportedVersion { found: 9 })
        );
        assert!(matches!(
            decode_model(&good[..3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn every_truncation_of_a_model_is_a_typed_error() {
        let bytes = encode_model(&sample_record()).unwrap();
        for cut in 0..bytes.len() {
            match decode_model(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn shape_data_mismatch_and_non_f32_doubles_are_rejected() {
        let mut record = sample_record();
        record.weights.params = vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()];
        record.layers.clear();
        let mut bytes = encode_model(&record).unwrap();
        // The last 16 bytes are the two f64 values; plant a double that is
        // not an exact f32 widening (1.0 + 2^-52).
        let hostile = (1.0f64 + f64::EPSILON).to_bits().to_le_bytes();
        let n = bytes.len();
        bytes[n - 16..n - 8].copy_from_slice(&hostile);
        assert!(matches!(
            decode_model(&bytes),
            Err(WireError::InvalidPayload(_))
        ));

        // Shape/length mismatch: dims say 2 but the length word says 1.
        let good = encode_model(&record).unwrap();
        let mut short = good.clone();
        let n = short.len();
        // length word sits just before the 16 data bytes
        short[n - 20..n - 16].copy_from_slice(&1u32.to_le_bytes());
        let shorter = short[..n - 8].to_vec();
        assert!(matches!(
            decode_model(&shorter),
            Err(WireError::InvalidPayload(_))
        ));
    }

    #[test]
    fn nested_composite_noise_is_rejected_both_ways() {
        let mut record = sample_record();
        record.noise = NoiseDesc::Composite(vec![NoiseDesc::Composite(vec![])]);
        assert!(matches!(
            encode_model(&record),
            Err(WireError::InvalidPayload(_))
        ));
    }
}
