//! Sparse/dense spike-raster codec.
//!
//! A [`SpikeRaster`] is mostly empty under the paper's temporal codings
//! (TTFS fires once per active neuron, deletion noise empties trains
//! outright), so the primary encoding is an index/value split in the style
//! of psyche's `sparse_idx`/`sparse_val` tensors: the ascending indices of
//! the active trains, their spike counts, then every spike time
//! concatenated.  Dense rasters (rate coding at high intensity) fall back
//! to a 0/1 bitmap when that is the smaller encoding.
//!
//! ```text
//! raster := num_neurons:u32  num_steps:u32  mode:u8  body
//! mode 0 (sparse):
//!     active:u32                     // number of non-empty trains
//!     sparse_idx: active x u32       // neuron indices, strictly ascending
//!     sparse_len: active x u32       // spikes per active train
//!     sparse_val: sum(len) x tw      // spike times, train by train,
//!                                    // strictly ascending within a train
//! mode 1 (dense):
//!     bitmap: ceil(num_neurons * num_steps / 8) bytes
//!             // bit (n * num_steps + t) = neuron n fires at step t,
//!             // LSB-first within a byte; padding bits must be zero
//! ```
//!
//! `tw` is the spike-time width implied by the window length:
//! 1 byte for `num_steps <= 256`, 2 bytes for `<= 65536`, else 4 — the
//! typical 96-step window ships each spike as a single byte.
//!
//! **Mode selection** is deterministic: the encoder computes both body
//! sizes and picks the dense bitmap iff it is strictly smaller than the
//! sparse split (for an all-active rate raster the bitmap wins; up to a
//! density around `8 / (8 + num_steps * tw)` per-train bookkeeping makes
//! sparse win).  Decoders accept either mode regardless, so the rule can
//! change without a version bump; re-bless the golden fixtures if it does.
//!
//! Because spike trains are stored strictly ascending and in-window — the
//! exact invariant [`SpikeRaster`] maintains — `decode(encode(r))`
//! reproduces `r` exactly, and the decoder rejects any byte sequence that
//! would require re-normalisation (unsorted, duplicate or out-of-window
//! times) instead of silently fixing it up.

use nrsnn_snn::SpikeRaster;

use crate::{ByteReader, ByteWriter, Result, WireError};

/// Hard cap on `num_neurons` and on `num_steps` accepted by the decoder:
/// a hostile header must not be able to make the decoder allocate
/// millions of empty trains for a few bytes of input.  2^22 neurons is
/// three orders of magnitude above every network in this workspace.
pub const MAX_RASTER_DIM: u32 = 1 << 22;

/// Sparse mode tag.
const MODE_SPARSE: u8 = 0;
/// Dense-bitmap mode tag.
const MODE_DENSE: u8 = 1;

/// Bytes per spike time for a window of `num_steps` steps.
fn time_width(num_steps: u32) -> usize {
    if num_steps <= 0x100 {
        1
    } else if num_steps <= 0x1_0000 {
        2
    } else {
        4
    }
}

/// Appends one raster body to `w` (see the module docs for the layout).
///
/// # Errors
/// Returns [`WireError::InvalidPayload`] if the raster exceeds
/// [`MAX_RASTER_DIM`] in either dimension.
pub fn write_raster(w: &mut ByteWriter, raster: &SpikeRaster) -> Result<()> {
    let num_neurons = u32::try_from(raster.num_neurons())
        .ok()
        .filter(|&n| n <= MAX_RASTER_DIM)
        .ok_or_else(|| {
            WireError::InvalidPayload(format!(
                "raster has {} neurons, cap is {MAX_RASTER_DIM}",
                raster.num_neurons()
            ))
        })?;
    let num_steps = raster.num_steps();
    if num_steps > MAX_RASTER_DIM {
        return Err(WireError::InvalidPayload(format!(
            "raster window of {num_steps} steps exceeds the cap of {MAX_RASTER_DIM}"
        )));
    }
    w.put_u32(num_neurons);
    w.put_u32(num_steps);

    let tw = time_width(num_steps);
    let active = raster.num_active_trains();
    let total_spikes = raster.total_spikes();
    let sparse_bytes = 4 + active * 8 + total_spikes * tw;
    let dense_bits = num_neurons as u64 * num_steps as u64;
    let dense_bytes = dense_bits.div_ceil(8);

    if dense_bytes < sparse_bytes as u64 {
        w.put_u8(MODE_DENSE);
        let mut bitmap = vec![0u8; dense_bytes as usize];
        for (neuron, train) in raster.iter() {
            let base = neuron as u64 * num_steps as u64;
            for &t in train {
                let bit = base + t as u64;
                bitmap[(bit / 8) as usize] |= 1 << (bit % 8);
            }
        }
        w.put_bytes(&bitmap);
    } else {
        w.put_u8(MODE_SPARSE);
        w.put_u32(active as u32);
        for (neuron, train) in raster.iter() {
            if !train.is_empty() {
                w.put_u32(neuron as u32);
            }
        }
        for (_, train) in raster.iter() {
            if !train.is_empty() {
                w.put_u32(train.len() as u32);
            }
        }
        for (_, train) in raster.iter() {
            for &t in train {
                match tw {
                    1 => w.put_u8(t as u8),
                    2 => w.put_u16(t as u16),
                    _ => w.put_u32(t),
                }
            }
        }
    }
    Ok(())
}

/// Reads one raster body from `r` (the inverse of [`write_raster`]).
///
/// # Errors
/// Typed [`WireError`]s for truncation, dimension caps, unknown mode
/// bytes, unsorted/duplicate/out-of-window spike times, non-ascending
/// neuron indices and non-zero bitmap padding.
pub fn read_raster(r: &mut ByteReader<'_>) -> Result<SpikeRaster> {
    let num_neurons = r.get_u32()?;
    let num_steps = r.get_u32()?;
    if num_neurons > MAX_RASTER_DIM || num_steps > MAX_RASTER_DIM {
        return Err(WireError::InvalidPayload(format!(
            "raster of {num_neurons} neurons x {num_steps} steps exceeds the cap of {MAX_RASTER_DIM}"
        )));
    }
    let mode = r.get_u8()?;
    let tw = time_width(num_steps);
    let mut raster = SpikeRaster::new(num_neurons as usize, num_steps);
    match mode {
        MODE_SPARSE => {
            // idx + len cost 8 bytes per active train; get_len validates
            // presence before anything is allocated from the count.
            let active = r.get_len(8)?;
            let mut indices = Vec::with_capacity(active);
            let mut previous: Option<u32> = None;
            for _ in 0..active {
                let idx = r.get_u32()?;
                if idx >= num_neurons {
                    return Err(WireError::InvalidPayload(format!(
                        "sparse index {idx} out of range for {num_neurons} neurons"
                    )));
                }
                if previous.is_some_and(|p| idx <= p) {
                    return Err(WireError::InvalidPayload(
                        "sparse indices must be strictly ascending".to_string(),
                    ));
                }
                previous = Some(idx);
                indices.push(idx);
            }
            let mut lens = Vec::with_capacity(active);
            let mut total: u64 = 0;
            for _ in 0..active {
                let len = r.get_u32()?;
                if len == 0 {
                    return Err(WireError::InvalidPayload(
                        "sparse train with zero spikes must be omitted".to_string(),
                    ));
                }
                total += u64::from(len);
                lens.push(len);
            }
            if total.saturating_mul(tw as u64) > r.remaining() as u64 {
                return Err(WireError::Truncated {
                    needed: (total * tw as u64).min(usize::MAX as u64) as usize,
                    have: r.remaining(),
                });
            }
            for (&idx, &len) in indices.iter().zip(&lens) {
                let mut train = Vec::with_capacity(len as usize);
                let mut last: Option<u32> = None;
                for _ in 0..len {
                    let t = match tw {
                        1 => u32::from(r.get_u8()?),
                        2 => u32::from(r.get_u16()?),
                        _ => r.get_u32()?,
                    };
                    if t >= num_steps {
                        return Err(WireError::InvalidPayload(format!(
                            "spike time {t} outside the {num_steps}-step window"
                        )));
                    }
                    if last.is_some_and(|p| t <= p) {
                        return Err(WireError::InvalidPayload(
                            "spike times must be strictly ascending within a train".to_string(),
                        ));
                    }
                    last = Some(t);
                    train.push(t);
                }
                raster.set_train(idx as usize, train);
            }
        }
        MODE_DENSE => {
            let dense_bits = num_neurons as u64 * num_steps as u64;
            let dense_bytes = dense_bits.div_ceil(8) as usize;
            let bitmap = r.take(dense_bytes)?;
            // Padding bits beyond the last neuron/step must be zero so the
            // dense encoding of a raster is unique.
            if dense_bits % 8 != 0 {
                let padding = bitmap[dense_bytes - 1] >> (dense_bits % 8);
                if padding != 0 {
                    return Err(WireError::InvalidPayload(
                        "non-zero padding bits in dense raster bitmap".to_string(),
                    ));
                }
            }
            for neuron in 0..num_neurons as usize {
                let base = neuron as u64 * num_steps as u64;
                let mut train = Vec::new();
                for t in 0..num_steps {
                    let bit = base + t as u64;
                    if bitmap[(bit / 8) as usize] & (1 << (bit % 8)) != 0 {
                        train.push(t);
                    }
                }
                if !train.is_empty() {
                    raster.set_train(neuron, train);
                }
            }
        }
        other => return Err(WireError::UnknownTag { tag: other }),
    }
    Ok(raster)
}

/// Encodes one raster as a standalone byte string.
///
/// # Errors
/// See [`write_raster`].
pub fn encode_raster(raster: &SpikeRaster) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    write_raster(&mut w, raster)?;
    Ok(w.into_bytes())
}

/// Decodes a standalone raster byte string, requiring every byte to be
/// consumed.
///
/// # Errors
/// See [`read_raster`]; additionally [`WireError::TrailingBytes`] for
/// leftover input.
pub fn decode_raster(bytes: &[u8]) -> Result<SpikeRaster> {
    let mut r = ByteReader::new(bytes);
    let raster = read_raster(&mut r)?;
    r.expect_exhausted()?;
    Ok(raster)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raster: &SpikeRaster) -> SpikeRaster {
        let bytes = encode_raster(raster).unwrap();
        let back = decode_raster(&bytes).unwrap();
        assert_eq!(&back, raster);
        back
    }

    #[test]
    fn empty_and_tiny_rasters_round_trip() {
        round_trip(&SpikeRaster::new(0, 0));
        round_trip(&SpikeRaster::new(0, 96));
        round_trip(&SpikeRaster::new(17, 0));
        round_trip(&SpikeRaster::new(5, 96)); // all-empty trains
        let mut single = SpikeRaster::new(3, 96);
        single.set_train(1, vec![42]);
        round_trip(&single);
    }

    #[test]
    fn sparse_and_dense_modes_agree() {
        // Mostly-empty: sparse mode.
        let mut sparse = SpikeRaster::new(64, 96);
        sparse.set_train(3, vec![0, 9, 95]);
        sparse.set_train(60, vec![7]);
        let bytes = encode_raster(&sparse).unwrap();
        assert_eq!(bytes[8], MODE_SPARSE);
        assert_eq!(decode_raster(&bytes).unwrap(), sparse);

        // Fully active: the bitmap is smaller.
        let mut dense = SpikeRaster::new(64, 96);
        for n in 0..64 {
            dense.set_train(n, (0..96).collect());
        }
        let bytes = encode_raster(&dense).unwrap();
        assert_eq!(bytes[8], MODE_DENSE);
        assert_eq!(decode_raster(&bytes).unwrap(), dense);
    }

    #[test]
    fn spike_times_use_the_narrowest_width() {
        let mut r = SpikeRaster::new(2, 96);
        r.set_train(0, vec![0, 95]);
        // 8 header + 1 mode + 4 active + 4 idx + 4 len + 2 x 1-byte times.
        assert_eq!(encode_raster(&r).unwrap().len(), 23);
        let mut wide = SpikeRaster::new(2, 70_000);
        wide.set_train(0, vec![0, 69_999]);
        // Same but 2 x 4-byte times.
        assert_eq!(encode_raster(&wide).unwrap().len(), 29);
        assert_eq!(decode_raster(&encode_raster(&wide).unwrap()).unwrap(), wide);
    }

    #[test]
    fn decoder_rejects_denormalised_trains() {
        let mut r = SpikeRaster::new(4, 96);
        r.set_train(2, vec![5, 6]);
        let good = encode_raster(&r).unwrap();
        decode_raster(&good).unwrap();

        // Duplicate / descending times (bytes 21,22 are the two times).
        let mut dup = good.clone();
        dup[22] = dup[21];
        assert!(matches!(
            decode_raster(&dup),
            Err(WireError::InvalidPayload(_))
        ));
        // Out-of-window time.
        let mut oow = good.clone();
        oow[22] = 200;
        assert!(matches!(
            decode_raster(&oow),
            Err(WireError::InvalidPayload(_))
        ));
        // Out-of-range neuron index.
        let mut idx = good.clone();
        idx[13] = 9;
        assert!(matches!(
            decode_raster(&idx),
            Err(WireError::InvalidPayload(_))
        ));
        // Unknown mode byte.
        let mut mode = good;
        mode[8] = 7;
        assert!(matches!(
            decode_raster(&mode),
            Err(WireError::UnknownTag { tag: 7 })
        ));
    }

    #[test]
    fn hostile_dimensions_are_capped() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // num_neurons far above the cap
        w.put_u32(8);
        w.put_u8(MODE_SPARSE);
        w.put_u32(0);
        assert!(matches!(
            decode_raster(w.as_slice()),
            Err(WireError::InvalidPayload(_))
        ));

        // A hostile sparse count cannot trigger a large allocation.
        let mut w = ByteWriter::new();
        w.put_u32(8);
        w.put_u32(8);
        w.put_u8(MODE_SPARSE);
        w.put_u32(u32::MAX);
        assert!(matches!(
            decode_raster(w.as_slice()),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn dense_padding_bits_must_be_zero() {
        let r = SpikeRaster::new(1, 3); // empty => dense (0 < 4 bytes)
        let mut bytes = encode_raster(&r).unwrap();
        assert_eq!(bytes[8], MODE_DENSE);
        assert_eq!(bytes.len(), 10);
        bytes[9] = 0b1000; // bit 3 is padding (only bits 0..3 are real)
        assert!(matches!(
            decode_raster(&bytes),
            Err(WireError::InvalidPayload(_))
        ));
    }

    #[test]
    fn truncated_rasters_are_typed_errors() {
        let mut r = SpikeRaster::new(16, 96);
        r.set_train(0, vec![1, 2, 3]);
        r.set_train(9, vec![90]);
        let bytes = encode_raster(&r).unwrap();
        for cut in 0..bytes.len() {
            match decode_raster(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
    }
}
