//! Adversarial decoder suite: hostile bytes must always produce a typed
//! [`WireError`] — never a panic, a hang or an attacker-sized allocation.
//!
//! Mutations are driven by the proptest shim's name-seeded RNG with fixed
//! iteration counts, so every run exercises the same byte positions — no
//! `Date::now`-style nondeterminism anywhere.

use nrsnn_dnn::NetworkWeights;
use nrsnn_snn::{CodingKind, SpikeRaster};
use nrsnn_tensor::Tensor;
use nrsnn_wire::{
    decode_frame, decode_model, decode_raster, encode_frame, encode_model, encode_raster, Frame,
    LayerDesc, ModelRecord, NoiseDesc, StatsBody, TraceBody, TraceSpanBody, WireError,
    FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN, TRACE_NO_LAYER, WIRE_VERSION,
};
use proptest::rng_for;
use rand::Rng;

fn sample_frame() -> Frame {
    let mut raster = SpikeRaster::new(6, 96);
    raster.set_train(1, vec![3, 40, 95]);
    Frame::InferRequest {
        model: "mnist".to_string(),
        seed: (1u64 << 60) + 5,
        input: vec![0.25, -0.0, 1.5e-42],
    }
}

fn sample_frames() -> Vec<Frame> {
    let mut raster = SpikeRaster::new(6, 96);
    raster.set_train(1, vec![3, 40, 95]);
    vec![
        sample_frame(),
        Frame::StatsRequest,
        Frame::ListModelsRequest,
        Frame::PingRequest,
        Frame::TraceRequest { last: 8 },
        Frame::InferReply {
            model: "mnist".to_string(),
            predicted: 7,
            logits: vec![0.5, -1.25],
            total_spikes: 99,
            latency_us: 1000,
            trace_id: 77,
        },
        Frame::StatsReply(StatsBody {
            batch_size_histogram: vec![1, 2, 3],
            ..StatsBody::default()
        }),
        Frame::TraceReply(vec![TraceBody {
            trace_id: 77,
            model: "mnist".to_string(),
            seed: 5,
            worker: 0,
            start_ns: 10,
            end_ns: 900,
            ok: false,
            backend: "scalar".to_string(),
            spans: vec![TraceSpanBody {
                stage: 6,
                layer: TRACE_NO_LAYER,
                start_ns: 10,
                end_ns: 900,
                kernel: 1,
                density: 1.0,
            }],
            dropped_spans: 1,
        }]),
        Frame::ModelsReply(vec!["a".to_string(), "b".to_string()]),
        Frame::PongReply,
        Frame::ErrorReply {
            code: "busy".to_string(),
            message: "try later".to_string(),
        },
        Frame::Raster(raster),
    ]
}

fn sample_model() -> ModelRecord {
    ModelRecord {
        name: "adv".to_string(),
        coding: CodingKind::Ttas(5),
        time_steps: 96,
        threshold: 1.0,
        ttfs_tau_fraction: 4.0,
        scaling: 0.5,
        noise: NoiseDesc::Deletion(0.35),
        master_seed: u64::MAX - 9,
        layers: vec![LayerDesc::Linear { out: 3, input: 4 }],
        weights: NetworkWeights {
            params: vec![
                Tensor::from_vec(vec![0.1; 12], &[3, 4]).unwrap(),
                Tensor::from_vec(vec![0.0, -0.0, 0.5], &[3]).unwrap(),
            ],
        },
    }
}

#[test]
fn every_truncation_of_every_frame_is_typed() {
    for frame in sample_frames() {
        let bytes = encode_frame(&frame).unwrap();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!(
                    "tag 0x{:02X}, prefix {cut}/{}: expected Truncated, got {other:?}",
                    frame.tag(),
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    // A header announcing just over the cap: rejected at header-parse
    // time, before any payload buffer exists.
    let mut bytes = vec![FRAME_MAGIC, WIRE_VERSION];
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert_eq!(
        decode_frame(&bytes),
        Err(WireError::FrameTooLarge {
            len: u64::from(MAX_FRAME_LEN) + 1,
            max: u64::from(MAX_FRAME_LEN),
        })
    );
    // u32::MAX, same story.
    let mut bytes = vec![FRAME_MAGIC, WIRE_VERSION];
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_frame(&bytes),
        Err(WireError::FrameTooLarge { .. })
    ));
    // An in-cap header whose *payload* carries a hostile element count
    // (u32::MAX logits in a 30-byte frame): the element-presence check
    // fires before any Vec is sized from the count.
    let inner = encode_frame(&Frame::InferRequest {
        model: "m".to_string(),
        seed: 0,
        input: vec![1.0, 2.0],
    })
    .unwrap();
    let mut hostile = inner.clone();
    let len = hostile.len();
    // input count sits 12 bytes before the end (count + two f32s).
    hostile[len - 12..len - 8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_frame(&hostile),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = encode_frame(&Frame::PingRequest).unwrap();
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'{';
    assert_eq!(
        decode_frame(&wrong_magic),
        Err(WireError::BadMagic { found: b'{' })
    );
    let mut wrong_version = bytes.clone();
    wrong_version[1] = WIRE_VERSION + 1;
    assert_eq!(
        decode_frame(&wrong_version),
        Err(WireError::UnsupportedVersion {
            found: WIRE_VERSION + 1
        })
    );
}

/// Flip random bytes in valid encodings for a fixed number of seeded
/// iterations: the decoder must return `Ok` or a typed error, and when it
/// returns `Ok` the value must re-encode canonically.
#[test]
fn random_byte_mutations_never_panic_frames() {
    let mut rng = rng_for("random_byte_mutations_never_panic_frames");
    let originals: Vec<Vec<u8>> = sample_frames()
        .iter()
        .map(|f| encode_frame(f).unwrap())
        .collect();
    for _ in 0..2000 {
        let mut bytes = originals[rng.gen_range(0..originals.len())].clone();
        for _ in 0..rng.gen_range(1usize..4) {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= 1 << rng.gen_range(0u32..8);
        }
        if let Ok(frame) = decode_frame(&bytes) {
            // A surviving mutation must still be a canonical encoding.
            let re = encode_frame(&frame).unwrap();
            assert_eq!(re, bytes, "accepted mutation must re-encode identically");
        }
    }
}

#[test]
fn random_byte_mutations_never_panic_models() {
    let mut rng = rng_for("random_byte_mutations_never_panic_models");
    let original = encode_model(&sample_model()).unwrap();
    for _ in 0..2000 {
        let mut bytes = original.clone();
        for _ in 0..rng.gen_range(1usize..4) {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= 1 << rng.gen_range(0u32..8);
        }
        if let Ok(record) = decode_model(&bytes) {
            assert_eq!(encode_model(&record).unwrap(), bytes);
        }
    }
}

#[test]
fn random_byte_mutations_never_panic_rasters() {
    let mut rng = rng_for("random_byte_mutations_never_panic_rasters");
    let mut raster = SpikeRaster::new(12, 96);
    for n in 0..12 {
        if n % 3 != 0 {
            raster.set_train(n, vec![n as u32, 50 + n as u32]);
        }
    }
    let original = encode_raster(&raster).unwrap();
    for _ in 0..2000 {
        let mut bytes = original.clone();
        let pos = rng.gen_range(0..bytes.len());
        bytes[pos] ^= 1 << rng.gen_range(0u32..8);
        if let Ok(back) = decode_raster(&bytes) {
            // Mode choice is the encoder's; a decoded mutant re-encodes to
            // the canonical mode, which may legitimately differ from the
            // mutant's bytes only in representation, never in content.
            let re = encode_raster(&back).unwrap();
            let twice = decode_raster(&re).unwrap();
            assert_eq!(twice, back);
        }
    }
}

#[test]
fn truncated_and_mutated_model_files_are_typed() {
    let bytes = encode_model(&sample_model()).unwrap();
    for cut in 0..bytes.len() {
        match decode_model(&bytes[..cut]) {
            Err(
                WireError::Truncated { .. }
                | WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. },
            ) => {}
            other => panic!("prefix {cut}: expected a typed error, got {other:?}"),
        }
    }
    // Trailing garbage after a complete model is corruption, not slack.
    let mut padded = bytes;
    padded.push(0);
    assert_eq!(
        decode_model(&padded),
        Err(WireError::TrailingBytes { count: 1 })
    );
}

#[test]
fn hostile_tensor_and_raster_counts_cannot_allocate() {
    // Model file announcing u32::MAX tensors: each costs >= 8 bytes, so
    // the count check fails against the few remaining bytes immediately.
    let record = ModelRecord {
        layers: Vec::new(),
        weights: NetworkWeights { params: Vec::new() },
        ..sample_model()
    };
    let mut bytes = encode_model(&record).unwrap();
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_model(&bytes),
        Err(WireError::Truncated { .. })
    ));

    // Raster announcing u32::MAX active trains.
    let raster = SpikeRaster::new(4, 96);
    let mut bytes = encode_raster(&raster).unwrap();
    // Force sparse mode with a hostile count: header(8) + mode + count.
    bytes[8] = 0; // sparse
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_raster(&bytes),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn header_len_constant_matches_the_layout() {
    let bytes = encode_frame(&Frame::PongReply).unwrap();
    assert_eq!(FRAME_HEADER_LEN, 6);
    assert_eq!(bytes.len(), FRAME_HEADER_LEN + 1); // tag-only payload
}
