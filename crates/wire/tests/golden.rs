//! Golden-file suite: the byte-for-byte wire format is pinned by committed
//! fixtures under `tests/golden/`.  If any of these tests fail after an
//! intentional format change, the change is a **breaking** one:
//!
//! 1. Bump `WIRE_VERSION` (frames) or `MODEL_VERSION` (model files) in the
//!    crate — never re-bless fixtures under the same version number.
//! 2. Re-generate the fixtures with `NRSNN_WIRE_BLESS=1 cargo test -p
//!    nrsnn-wire --test golden` and commit them together with the bump.
//! 3. Note the incompatibility in ARCHITECTURE.md's wire-format section.
//!
//! A fixture mismatch *without* an intentional change means the encoder
//! regressed: fix the encoder, do not re-bless.

use std::path::PathBuf;

use nrsnn_dnn::NetworkWeights;
use nrsnn_snn::{CodingKind, SpikeRaster};
use nrsnn_tensor::Tensor;
use nrsnn_wire::{
    decode_frame, decode_model, encode_frame, encode_model, Frame, LayerDesc, ModelRecord,
    NoiseDesc, StageLatencyBody, StatsBody, TraceBody, TraceSpanBody, TRACE_NO_LAYER,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `bytes` against the committed fixture, or rewrites the fixture
/// when `NRSNN_WIRE_BLESS=1` (the documented re-bless procedure above).
fn check_golden(name: &str, bytes: &[u8]) {
    let path = golden_dir().join(name);
    if std::env::var("NRSNN_WIRE_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             generate with NRSNN_WIRE_BLESS=1 cargo test -p nrsnn-wire --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, bytes,
        "{name}: encoding drifted from the committed fixture \
         (see the version-bump procedure in tests/golden.rs)"
    );
}

/// One fixture value per frame tag.  These are frozen: editing them
/// invalidates the fixtures just as surely as editing the encoder.
fn golden_frames() -> Vec<(&'static str, Frame)> {
    let mut raster = SpikeRaster::new(5, 64);
    raster.set_train(0, vec![0, 63]);
    raster.set_train(3, vec![7]);
    vec![
        (
            "frame_infer_request.bin",
            Frame::InferRequest {
                model: "mnist-mlp".to_string(),
                seed: 9_007_199_254_740_993, // 2^53 + 1: must survive intact
                input: vec![0.0, -0.0, 0.5, 1.5e-42, f32::MAX],
            },
        ),
        ("frame_stats_request.bin", Frame::StatsRequest),
        ("frame_list_models_request.bin", Frame::ListModelsRequest),
        ("frame_ping_request.bin", Frame::PingRequest),
        ("frame_trace_request.bin", Frame::TraceRequest { last: 16 }),
        (
            "frame_infer_reply.bin",
            Frame::InferReply {
                model: "mnist-mlp".to_string(),
                predicted: 7,
                logits: vec![-0.25, 3.5, 0.0],
                total_spikes: 12_345,
                latency_us: 678,
                trace_id: 9_007_199_254_740_995, // above 2^53: must survive
            },
        ),
        (
            "frame_stats_reply.bin",
            Frame::StatsReply(StatsBody {
                requests_received: 10,
                requests_served: 9,
                rejected_busy: 1,
                failed: 0,
                batches: 4,
                batch_size_histogram: vec![2, 1, 0, 1],
                mean_batch_size: 2.25,
                p50_latency_us: 120,
                p99_latency_us: 480,
                mean_latency_us: 150.5,
                total_spikes: 4096,
                spikes_per_inference: 455.1,
                batch_size_offset: 2,
                p999_latency_us: 495,
                stage_latency_ns: vec![
                    StageLatencyBody {
                        stage: "queue_wait".to_string(),
                        p50_ns: 11_000,
                        p99_ns: 72_000,
                    },
                    StageLatencyBody {
                        stage: "simulate".to_string(),
                        p50_ns: 95_000,
                        p99_ns: 410_000,
                    },
                ],
            }),
        ),
        (
            "frame_trace_reply.bin",
            Frame::TraceReply(vec![TraceBody {
                trace_id: 9_007_199_254_740_997, // above 2^53: must survive
                model: "mnist-mlp".to_string(),
                seed: u64::MAX - 5,
                worker: 2,
                start_ns: 1_000,
                end_ns: 250_000,
                ok: true,
                backend: "sse2".to_string(),
                spans: vec![
                    TraceSpanBody {
                        stage: 0, // queue_wait
                        layer: TRACE_NO_LAYER,
                        start_ns: 1_000,
                        end_ns: 12_000,
                        kernel: 0,
                        density: 0.0,
                    },
                    TraceSpanBody {
                        stage: 5, // simulate
                        layer: 1,
                        start_ns: 12_000,
                        end_ns: 250_000,
                        kernel: 2, // sparse
                        density: 0.0625,
                    },
                ],
                dropped_spans: 0,
            }]),
        ),
        (
            "frame_models_reply.bin",
            Frame::ModelsReply(vec!["mnist-mlp".to_string(), "mnist-conv".to_string()]),
        ),
        ("frame_pong_reply.bin", Frame::PongReply),
        (
            "frame_error_reply.bin",
            Frame::ErrorReply {
                code: "busy".to_string(),
                message: "queue full".to_string(),
            },
        ),
        ("frame_raster.bin", Frame::Raster(raster)),
    ]
}

/// The frozen model fixture: exercises Linear/Conv/AvgPool descriptors, a
/// composite noise spec, special float values and a >2^53 seed.
fn golden_model() -> ModelRecord {
    ModelRecord {
        name: "golden-net".to_string(),
        coding: CodingKind::Ttas(3),
        time_steps: 96,
        threshold: 1.0,
        ttfs_tau_fraction: 4.0,
        scaling: 0.75,
        noise: NoiseDesc::Composite(vec![NoiseDesc::Deletion(0.2), NoiseDesc::Jitter(1.5)]),
        master_seed: u64::MAX - 1,
        layers: vec![
            LayerDesc::Conv {
                out_channels: 2,
                in_channels: 1,
                in_height: 4,
                in_width: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            LayerDesc::AvgPool {
                channels: 2,
                in_height: 4,
                in_width: 4,
                window: 2,
                stride: 2,
            },
            LayerDesc::Linear { out: 3, input: 8 },
        ],
        weights: NetworkWeights {
            params: vec![
                Tensor::from_vec(
                    (0..18).map(|i| (i as f32 - 9.0) * 0.125).collect(),
                    &[2, 1, 3, 3],
                )
                .unwrap(),
                Tensor::from_vec(vec![0.0, -0.0], &[2]).unwrap(),
                Tensor::from_vec((0..24).map(|i| 1.0 / (i as f32 + 1.0)).collect(), &[3, 8])
                    .unwrap(),
                Tensor::from_vec(vec![f32::MIN_POSITIVE, 1.5e-42, -1.0], &[3]).unwrap(),
            ],
        },
    }
}

#[test]
fn frame_encodings_match_committed_fixtures() {
    for (name, frame) in golden_frames() {
        let bytes = encode_frame(&frame).unwrap();
        check_golden(name, &bytes);
        // The fixture must also still decode to the fixture value.
        assert_eq!(decode_frame(&bytes).unwrap(), frame, "{name}");
    }
}

#[test]
fn model_encoding_matches_committed_fixture() {
    let record = golden_model();
    let bytes = encode_model(&record).unwrap();
    check_golden("model_golden_net.nrsm", &bytes);
    let back = decode_model(&bytes).unwrap();
    assert_eq!(back, record);
    // Bitwise, not just PartialEq (which conflates 0.0 and -0.0).
    for (a, b) in record.weights.params.iter().zip(back.weights.params.iter()) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn fixture_count_is_complete() {
    // One fixture per frame tag plus the model file.  If a frame type is
    // added, add its fixture here so it becomes golden-pinned too.
    assert_eq!(golden_frames().len(), 12);
    if std::env::var("NRSNN_WIRE_BLESS").as_deref() == Ok("1") {
        // Fixtures are being rewritten concurrently by the other tests;
        // counting them here would race the writers.
        return;
    }
    let entries: Vec<_> = std::fs::read_dir(golden_dir())
        .expect("tests/golden/ missing — bless fixtures first")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        entries.len(),
        13,
        "unexpected fixture set {entries:?}: stale files hide format drift"
    );
}
