//! Property suite: `decode(encode(x)) == x` **bitwise** for every frame
//! type, for spike rasters and for model records (weights included).
//!
//! Equality is asserted two ways on purpose: structurally (`PartialEq`)
//! and on the re-encoded bytes — `PartialEq` treats `-0.0 == 0.0`, so only
//! the byte comparison proves the IEEE bits survived.  Generators draw
//! from a pool of adversarial values (`-0.0`, subnormals, `f32::MAX`,
//! infinities, seeds above 2^53) mixed with uniform randomness, all seeded
//! deterministically from the test name via the proptest shim's
//! [`proptest::rng_for`] — no wall-clock nondeterminism.

use nrsnn_dnn::NetworkWeights;
use nrsnn_snn::{CodingKind, SpikeRaster};
use nrsnn_tensor::Tensor;
use nrsnn_wire::{
    decode_frame, decode_model, decode_raster, encode_frame, encode_model, encode_raster, Frame,
    LayerDesc, ModelRecord, NoiseDesc, StageLatencyBody, StatsBody, TraceBody, TraceSpanBody,
};
use proptest::{prop_assert_eq, rng_for, TestRng, CASES};
use rand::Rng;

/// f32 values that have historically broken lossy codecs.
const SPECIAL_F32: &[f32] = &[
    0.0,
    -0.0,
    1.5e-42, // subnormal
    -1.5e-42,
    f32::MIN_POSITIVE,
    f32::MIN_POSITIVE / 2.0, // subnormal
    f32::MAX,
    f32::MIN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    1.0 / 3.0,
];

const SPECIAL_F64: &[f64] = &[
    0.0,
    -0.0,
    5e-324, // smallest subnormal
    f64::MIN_POSITIVE,
    f64::MAX,
    f64::MIN,
    1.0 / 3.0,
];

/// Seeds that must survive with all 64 bits (several above 2^53).
const SPECIAL_SEEDS: &[u64] = &[
    0,
    1,
    (1 << 53) - 1,
    1 << 53,
    (1 << 53) + 1,
    1 << 60,
    u64::MAX - 1,
    u64::MAX,
];

fn gen_f32(rng: &mut TestRng) -> f32 {
    if rng.gen_range(0u32..4) == 0 {
        SPECIAL_F32[rng.gen_range(0..SPECIAL_F32.len())]
    } else {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

fn gen_f64(rng: &mut TestRng) -> f64 {
    if rng.gen_range(0u32..4) == 0 {
        SPECIAL_F64[rng.gen_range(0..SPECIAL_F64.len())]
    } else {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

fn gen_seed(rng: &mut TestRng) -> u64 {
    if rng.gen_range(0u32..2) == 0 {
        SPECIAL_SEEDS[rng.gen_range(0..SPECIAL_SEEDS.len())]
    } else {
        rng.gen::<u64>()
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.gen_range(0usize..20);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

/// Rasters across the density spectrum: empty, all-empty trains,
/// single-spike, random, and fully active (dense-mode territory), over
/// windows that exercise every spike-time width (1, 2 and 4 bytes).
fn gen_raster(rng: &mut TestRng) -> SpikeRaster {
    let num_steps = [0u32, 1, 9, 96, 256, 257, 65_536, 70_000][rng.gen_range(0usize..8)];
    let num_neurons = rng.gen_range(0usize..24);
    let mut raster = SpikeRaster::new(num_neurons, num_steps);
    if num_steps == 0 || num_neurons == 0 {
        return raster;
    }
    match rng.gen_range(0u32..5) {
        0 => {} // all-empty
        1 => {
            // single spike in one train
            let t = rng.gen_range(0..num_steps);
            raster.set_train(rng.gen_range(0..num_neurons), vec![t]);
        }
        2 => {
            // fully active: every neuron fires at every step
            for n in 0..num_neurons {
                raster.set_train(n, (0..num_steps.min(512)).collect());
            }
        }
        _ => {
            for n in 0..num_neurons {
                if rng.gen_range(0u32..3) == 0 {
                    continue;
                }
                let spikes = rng.gen_range(1u32..=num_steps.min(12));
                let times: Vec<u32> = (0..spikes).map(|_| rng.gen_range(0..num_steps)).collect();
                raster.set_train(n, times);
            }
        }
    }
    raster
}

fn gen_stats(rng: &mut TestRng) -> StatsBody {
    StatsBody {
        requests_received: rng.gen(),
        requests_served: rng.gen(),
        rejected_busy: rng.gen(),
        failed: rng.gen(),
        batches: rng.gen(),
        batch_size_histogram: (0..rng.gen_range(0usize..10)).map(|_| rng.gen()).collect(),
        mean_batch_size: gen_f64(rng),
        p50_latency_us: rng.gen(),
        p99_latency_us: rng.gen(),
        mean_latency_us: gen_f64(rng),
        total_spikes: rng.gen(),
        spikes_per_inference: gen_f64(rng),
        batch_size_offset: rng.gen(),
        p999_latency_us: rng.gen(),
        stage_latency_ns: (0..rng.gen_range(0usize..8))
            .map(|_| StageLatencyBody {
                stage: gen_string(rng),
                p50_ns: rng.gen(),
                p99_ns: rng.gen(),
            })
            .collect(),
    }
}

fn gen_trace(rng: &mut TestRng) -> TraceBody {
    TraceBody {
        trace_id: gen_seed(rng),
        model: gen_string(rng),
        seed: gen_seed(rng),
        worker: rng.gen(),
        start_ns: rng.gen(),
        end_ns: rng.gen(),
        ok: rng.gen_range(0u32..2) == 0,
        backend: gen_string(rng),
        spans: (0..rng.gen_range(0usize..12))
            .map(|_| TraceSpanBody {
                stage: rng.gen(),
                layer: rng.gen(),
                start_ns: rng.gen(),
                end_ns: rng.gen(),
                kernel: rng.gen(),
                density: gen_f32(rng),
            })
            .collect(),
        dropped_spans: rng.gen(),
    }
}

fn gen_frame(rng: &mut TestRng) -> Frame {
    match rng.gen_range(0u32..12) {
        0 => Frame::InferRequest {
            model: gen_string(rng),
            seed: gen_seed(rng),
            input: (0..rng.gen_range(0usize..40))
                .map(|_| gen_f32(rng))
                .collect(),
        },
        1 => Frame::StatsRequest,
        2 => Frame::ListModelsRequest,
        3 => Frame::PingRequest,
        4 => Frame::InferReply {
            model: gen_string(rng),
            predicted: rng.gen(),
            logits: (0..rng.gen_range(0usize..20))
                .map(|_| gen_f32(rng))
                .collect(),
            total_spikes: rng.gen(),
            latency_us: rng.gen(),
            trace_id: gen_seed(rng),
        },
        5 => Frame::StatsReply(gen_stats(rng)),
        6 => Frame::ModelsReply(
            (0..rng.gen_range(0usize..6))
                .map(|_| gen_string(rng))
                .collect(),
        ),
        7 => Frame::PongReply,
        8 => Frame::ErrorReply {
            code: gen_string(rng),
            message: gen_string(rng),
        },
        9 => Frame::TraceRequest { last: rng.gen() },
        10 => Frame::TraceReply(
            (0..rng.gen_range(0usize..4))
                .map(|_| gen_trace(rng))
                .collect(),
        ),
        _ => Frame::Raster(gen_raster(rng)),
    }
}

/// Tensors covering all-empty (zero-element) and ordinary layers, with
/// adversarial f32 payloads.
fn gen_tensor(rng: &mut TestRng) -> Tensor {
    if rng.gen_range(0u32..8) == 0 {
        // an all-empty layer: zero rows
        return Tensor::from_vec(Vec::new(), &[0]).expect("empty tensor");
    }
    let rows = rng.gen_range(1usize..6);
    let cols = rng.gen_range(1usize..6);
    let data = (0..rows * cols).map(|_| gen_f32(rng)).collect();
    Tensor::from_vec(data, &[rows, cols]).expect("tensor")
}

fn gen_noise(rng: &mut TestRng, top_level: bool) -> NoiseDesc {
    match rng.gen_range(0u32..if top_level { 4 } else { 3 }) {
        0 => NoiseDesc::Clean,
        1 => NoiseDesc::Deletion(gen_f64(rng)),
        2 => NoiseDesc::Jitter(gen_f64(rng)),
        _ => NoiseDesc::Composite(
            (0..rng.gen_range(0usize..4))
                .map(|_| gen_noise(rng, false))
                .collect(),
        ),
    }
}

fn gen_layer(rng: &mut TestRng) -> LayerDesc {
    match rng.gen_range(0u32..3) {
        0 => LayerDesc::Linear {
            out: rng.gen_range(0usize..100),
            input: rng.gen_range(0usize..100),
        },
        1 => LayerDesc::Conv {
            out_channels: rng.gen_range(1usize..8),
            in_channels: rng.gen_range(1usize..4),
            in_height: rng.gen_range(1usize..32),
            in_width: rng.gen_range(1usize..32),
            kernel: rng.gen_range(1usize..5),
            stride: rng.gen_range(1usize..3),
            padding: rng.gen_range(0usize..3),
        },
        _ => LayerDesc::AvgPool {
            channels: rng.gen_range(1usize..8),
            in_height: rng.gen_range(1usize..32),
            in_width: rng.gen_range(1usize..32),
            window: rng.gen_range(1usize..4),
            stride: rng.gen_range(1usize..4),
        },
    }
}

fn gen_model(rng: &mut TestRng) -> ModelRecord {
    let coding = match rng.gen_range(0u32..5) {
        0 => CodingKind::Rate,
        1 => CodingKind::Phase,
        2 => CodingKind::Burst,
        3 => CodingKind::Ttfs,
        _ => CodingKind::Ttas(rng.gen_range(1u32..10)),
    };
    ModelRecord {
        name: gen_string(rng),
        coding,
        time_steps: rng.gen_range(0u32..200),
        threshold: gen_f32(rng),
        ttfs_tau_fraction: gen_f32(rng),
        scaling: gen_f32(rng),
        noise: gen_noise(rng, true),
        master_seed: gen_seed(rng),
        layers: (0..rng.gen_range(0usize..5))
            .map(|_| gen_layer(rng))
            .collect(),
        weights: NetworkWeights {
            params: (0..rng.gen_range(0usize..5))
                .map(|_| gen_tensor(rng))
                .collect(),
        },
    }
}

fn assert_raster_bit_equal(a: &SpikeRaster, b: &SpikeRaster) {
    assert_eq!(a, b);
    assert_eq!(a.num_steps(), b.num_steps());
    for ((na, ta), (nb, tb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb);
        assert_eq!(ta, tb);
    }
}

#[test]
fn every_frame_round_trips_bitwise() {
    let mut rng = rng_for("every_frame_round_trips_bitwise");
    // 10x the usual case count so each of the ten frame types gets a full
    // complement of adversarial draws.
    for _ in 0..CASES * 10 {
        let frame = gen_frame(&mut rng);
        let bytes = encode_frame(&frame).expect("encode");
        let back = decode_frame(&bytes).expect("decode");
        assert_eq!(back, frame);
        // The bit-exactness proof: re-encoding reproduces the bytes, so no
        // -0.0/0.0 or NaN-payload drift can hide behind PartialEq.
        assert_eq!(encode_frame(&back).expect("re-encode"), bytes);
    }
}

#[test]
fn rasters_round_trip_across_the_density_spectrum() {
    let mut rng = rng_for("rasters_round_trip_across_the_density_spectrum");
    for _ in 0..CASES * 4 {
        let raster = gen_raster(&mut rng);
        let bytes = encode_raster(&raster).expect("encode");
        let back = decode_raster(&bytes).expect("decode");
        assert_raster_bit_equal(&back, &raster);
        assert_eq!(encode_raster(&back).expect("re-encode"), bytes);
    }
}

#[test]
fn models_round_trip_bitwise_including_weights() {
    let mut rng = rng_for("models_round_trip_bitwise_including_weights");
    for _ in 0..CASES * 2 {
        let record = gen_model(&mut rng);
        let bytes = encode_model(&record).expect("encode");
        let back = decode_model(&bytes).expect("decode");
        assert_eq!(back, record);
        for (a, b) in back.weights.params.iter().zip(&record.weights.params) {
            assert_eq!(a.dims(), b.dims());
            for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        assert_eq!(encode_model(&back).expect("re-encode"), bytes);
    }
}

proptest::proptest! {
    #[test]
    fn seeds_above_2_53_survive_infer_frames(seed in 0u64..=u64::MAX) {
        let frame = Frame::InferRequest {
            model: "m".to_string(),
            seed,
            input: vec![0.5],
        };
        let back = decode_frame(&encode_frame(&frame).unwrap()).unwrap();
        let Frame::InferRequest { seed: back_seed, .. } = back else {
            panic!("wrong frame type");
        };
        prop_assert_eq!(back_seed, seed);
    }

    #[test]
    fn logit_bits_survive_infer_replies(bits in 0u32..=u32::MAX) {
        let value = f32::from_bits(bits);
        let frame = Frame::InferReply {
            model: "m".to_string(),
            predicted: 0,
            logits: vec![value],
            total_spikes: 0,
            latency_us: 0,
            trace_id: 0,
        };
        let bytes = encode_frame(&frame).unwrap();
        let Frame::InferReply { logits, .. } = decode_frame(&bytes).unwrap() else {
            panic!("wrong frame type");
        };
        // Bit comparison, not ==: NaN payloads and -0.0 must survive too.
        prop_assert_eq!(logits[0].to_bits(), bits);
    }
}
