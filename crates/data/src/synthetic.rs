//! Prototype-based synthetic dataset generation.
//!
//! Each class `c` is assigned a smooth random prototype image built from a
//! few Gaussian blobs at class-specific positions.  A sample of class `c` is
//! the prototype, shifted by a small random translation, corrupted by pixel
//! noise and clamped to `[0, 1]`.  The resulting task is easy enough for the
//! small networks used in the reproduction to reach high clean accuracy
//! (leaving head-room for noise-induced degradation, as in the paper) while
//! still requiring genuine learning.

use nrsnn_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DataError, LabelledSet, Result};

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name used in reports ("mnist-like", …).
    pub name: String,
    /// Number of image channels.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of training samples to generate.
    pub train_samples: usize,
    /// Number of test samples to generate.
    pub test_samples: usize,
    /// Standard deviation of additive pixel noise.
    pub pixel_noise: f32,
    /// Maximum translation (in pixels) applied to each sample.
    pub max_shift: usize,
    /// Number of Gaussian blobs per class prototype.
    pub blobs_per_class: usize,
}

impl DatasetSpec {
    /// MNIST-scale specification: 1×28×28, 10 classes.
    pub fn mnist_like() -> Self {
        DatasetSpec {
            name: "mnist-like".to_string(),
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
            train_samples: 512,
            test_samples: 128,
            pixel_noise: 0.22,
            max_shift: 3,
            blobs_per_class: 3,
        }
    }

    /// CIFAR-10-scale specification: 3×16×16, 10 classes.
    ///
    /// The spatial size is reduced from 32×32 to 16×16 to keep the spiking
    /// simulation affordable; the class structure and channel count match.
    pub fn cifar10_like() -> Self {
        DatasetSpec {
            name: "cifar10-like".to_string(),
            channels: 3,
            height: 16,
            width: 16,
            classes: 10,
            train_samples: 512,
            test_samples: 128,
            pixel_noise: 0.28,
            max_shift: 3,
            blobs_per_class: 3,
        }
    }

    /// CIFAR-100-scale specification: 3×16×16, 100 classes.
    pub fn cifar100_like() -> Self {
        DatasetSpec {
            name: "cifar100-like".to_string(),
            channels: 3,
            height: 16,
            width: 16,
            classes: 100,
            train_samples: 2_000,
            test_samples: 400,
            pixel_noise: 0.18,
            max_shift: 2,
            blobs_per_class: 4,
        }
    }

    /// Overrides the number of train/test samples (builder style).
    pub fn with_samples(mut self, train: usize, test: usize) -> Self {
        self.train_samples = train;
        self.test_samples = test;
        self
    }

    /// Overrides the pixel-noise standard deviation (builder style).
    pub fn with_pixel_noise(mut self, noise: f32) -> Self {
        self.pixel_noise = noise;
        self
    }

    /// Number of features per sample.
    pub fn feature_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Validates the specification.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidSpec`] for zero-sized dimensions or
    /// sample counts.
    pub fn validate(&self) -> Result<()> {
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(DataError::InvalidSpec(
                "image dimensions must be non-zero".to_string(),
            ));
        }
        if self.classes == 0 {
            return Err(DataError::InvalidSpec(
                "need at least one class".to_string(),
            ));
        }
        if self.train_samples == 0 || self.test_samples == 0 {
            return Err(DataError::InvalidSpec(
                "sample counts must be non-zero".to_string(),
            ));
        }
        if self.blobs_per_class == 0 {
            return Err(DataError::InvalidSpec(
                "need at least one blob per class".to_string(),
            ));
        }
        Ok(())
    }
}

/// A generated synthetic dataset with train and test splits.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// The specification the dataset was generated from.
    pub spec: DatasetSpec,
    /// Training split.
    pub train: LabelledSet,
    /// Held-out test split.
    pub test: LabelledSet,
}

impl SyntheticDataset {
    /// Generates a dataset from a specification using the supplied RNG.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidSpec`] for invalid specifications.
    pub fn generate<R: Rng>(spec: &DatasetSpec, rng: &mut R) -> Result<Self> {
        spec.validate()?;
        let prototypes = class_prototypes(spec, rng);
        let train = sample_split(spec, &prototypes, spec.train_samples, rng)?;
        let test = sample_split(spec, &prototypes, spec.test_samples, rng)?;
        Ok(SyntheticDataset {
            spec: spec.clone(),
            train,
            test,
        })
    }
}

/// Builds one smooth prototype image per class.
///
/// Every class shares a common background pattern (two large blobs) and is
/// distinguished only by its own, weaker class-specific blobs.  The shared
/// background keeps inter-class margins realistic (classes overlap, as
/// natural-image classes do), which leaves head-room for noise-induced
/// degradation instead of trivially saturated accuracy.
fn class_prototypes<R: Rng>(spec: &DatasetSpec, rng: &mut R) -> Vec<Vec<f32>> {
    let feat = spec.feature_len();
    let mut shared = vec![0.0f32; feat];
    add_blobs(&mut shared, spec, 2, 0.45, 0.75, rng);
    (0..spec.classes)
        .map(|_| {
            let mut proto = shared.clone();
            add_blobs(&mut proto, spec, spec.blobs_per_class, 0.3, 0.55, rng);
            for p in &mut proto {
                *p = p.clamp(0.0, 1.0);
            }
            proto
        })
        .collect()
}

/// Adds `count` Gaussian blobs with amplitudes in `[amp_lo, amp_hi)` to a
/// flat `(C, H, W)` image.
fn add_blobs<R: Rng>(
    image: &mut [f32],
    spec: &DatasetSpec,
    count: usize,
    amp_lo: f32,
    amp_hi: f32,
    rng: &mut R,
) {
    for _ in 0..count {
        let channel = rng.gen_range(0..spec.channels);
        let cy = rng.gen_range(0.0..spec.height as f32);
        let cx = rng.gen_range(0.0..spec.width as f32);
        let sigma = rng.gen_range(1.5..(spec.height as f32 / 3.0).max(1.6));
        let amplitude = rng.gen_range(amp_lo..amp_hi);
        for y in 0..spec.height {
            for x in 0..spec.width {
                let dy = y as f32 - cy;
                let dx = x as f32 - cx;
                let v = amplitude * (-(dy * dy + dx * dx) / (2.0 * sigma * sigma)).exp();
                image[channel * spec.height * spec.width + y * spec.width + x] += v;
            }
        }
    }
}

/// Samples one split: balanced round-robin class assignment, translation and
/// pixel noise per sample.
fn sample_split<R: Rng>(
    spec: &DatasetSpec,
    prototypes: &[Vec<f32>],
    samples: usize,
    rng: &mut R,
) -> Result<LabelledSet> {
    let feat = spec.feature_len();
    let mut data = Vec::with_capacity(samples * feat);
    let mut labels = Vec::with_capacity(samples);
    for s in 0..samples {
        let class = s % spec.classes;
        labels.push(class);
        let shift_y = if spec.max_shift > 0 {
            rng.gen_range(-(spec.max_shift as isize)..=spec.max_shift as isize)
        } else {
            0
        };
        let shift_x = if spec.max_shift > 0 {
            rng.gen_range(-(spec.max_shift as isize)..=spec.max_shift as isize)
        } else {
            0
        };
        let proto = &prototypes[class];
        for c in 0..spec.channels {
            for y in 0..spec.height {
                for x in 0..spec.width {
                    let sy = y as isize - shift_y;
                    let sx = x as isize - shift_x;
                    let base = if sy >= 0
                        && (sy as usize) < spec.height
                        && sx >= 0
                        && (sx as usize) < spec.width
                    {
                        proto[c * spec.height * spec.width + sy as usize * spec.width + sx as usize]
                    } else {
                        0.0
                    };
                    let noise = gaussian(rng) * spec.pixel_noise;
                    data.push((base + noise).clamp(0.0, 1.0));
                }
            }
        }
    }
    let inputs = Tensor::from_vec(data, &[samples, feat])?;
    LabelledSet::new(
        inputs,
        labels,
        spec.classes,
        [spec.channels, spec.height, spec.width],
    )
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mnist_like_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = DatasetSpec::mnist_like().with_samples(20, 10);
        let data = SyntheticDataset::generate(&spec, &mut rng).unwrap();
        assert_eq!(data.train.len(), 20);
        assert_eq!(data.test.len(), 10);
        assert_eq!(data.train.feature_len(), 784);
        assert_eq!(data.train.num_classes, 10);
    }

    #[test]
    fn cifar_like_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = DatasetSpec::cifar10_like().with_samples(20, 10);
        let data = SyntheticDataset::generate(&spec, &mut rng).unwrap();
        assert_eq!(data.train.feature_len(), 3 * 16 * 16);
        let spec100 = DatasetSpec::cifar100_like().with_samples(200, 100);
        let data100 = SyntheticDataset::generate(&spec100, &mut rng).unwrap();
        assert_eq!(data100.train.num_classes, 100);
    }

    #[test]
    fn pixels_are_normalised() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = DatasetSpec::mnist_like().with_samples(30, 10);
        let data = SyntheticDataset::generate(&spec, &mut rng).unwrap();
        assert!(data.train.inputs.min() >= 0.0);
        assert!(data.train.inputs.max() <= 1.0);
        // Prototypes should actually light up some pixels.
        assert!(data.train.inputs.max() > 0.3);
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = DatasetSpec::mnist_like().with_samples(100, 20);
        let data = SyntheticDataset::generate(&spec, &mut rng).unwrap();
        let hist = data.train.class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 100);
        assert!(hist.iter().all(|&c| c == 10));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec::cifar10_like().with_samples(10, 5);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let da = SyntheticDataset::generate(&spec, &mut a).unwrap();
        let db = SyntheticDataset::generate(&spec, &mut b).unwrap();
        assert_eq!(da.train.inputs.as_slice(), db.train.inputs.as_slice());
        assert_eq!(da.test.labels, db.test.labels);
    }

    #[test]
    fn different_classes_have_different_prototypes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spec = DatasetSpec::mnist_like()
            .with_samples(20, 10)
            .with_pixel_noise(0.0);
        // Also disable the random translation: with any shift allowed, two
        // same-class samples can be offset copies whose distance rivals the
        // inter-class one.
        spec.max_shift = 0;
        let data = SyntheticDataset::generate(&spec, &mut rng).unwrap();
        // With zero pixel noise, samples of different classes should differ
        // much more than samples of the same class (prototype separation).
        let row0 = data.train.inputs.row(0).unwrap(); // class 0
        let row10 = data.train.inputs.row(10).unwrap(); // class 0 again
        let row1 = data.train.inputs.row(1).unwrap(); // class 1
        let same = row0.sub(&row10).unwrap().norm_sq();
        let diff = row0.sub(&row1).unwrap().norm_sq();
        assert!(
            diff > same,
            "inter-class {diff} should exceed intra-class {same}"
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut spec = DatasetSpec::mnist_like();
        spec.classes = 0;
        assert!(SyntheticDataset::generate(&spec, &mut rng).is_err());
        let spec2 = DatasetSpec::mnist_like().with_samples(0, 10);
        assert!(SyntheticDataset::generate(&spec2, &mut rng).is_err());
    }
}
