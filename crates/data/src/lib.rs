//! # nrsnn-data
//!
//! Synthetic image-classification datasets standing in for MNIST, CIFAR-10
//! and CIFAR-100 in the NRSNN reproduction.
//!
//! The original paper evaluates on the real datasets; this workspace runs in
//! an offline environment without dataset downloads, so we substitute
//! deterministic, prototype-based synthetic datasets at the same spatial
//! scales (see `DESIGN.md` §2 for the substitution argument).  Each class is
//! defined by a smooth random prototype image; samples are the prototype
//! plus pixel noise and a small random translation, clamped to `[0, 1]` so
//! they can directly drive spike encoders.
//!
//! ## Example
//!
//! ```
//! use nrsnn_data::{DatasetSpec, SyntheticDataset};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nrsnn_data::DataError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = DatasetSpec::mnist_like().with_samples(64, 16);
//! let data = SyntheticDataset::generate(&spec, &mut rng)?;
//! assert_eq!(data.train.inputs.dims()[0], 64);
//! assert_eq!(data.train.feature_len(), 28 * 28);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dataset;
mod error;
mod synthetic;

pub use dataset::{Batcher, LabelledSet};
pub use error::DataError;
pub use synthetic::{DatasetSpec, SyntheticDataset};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
