use std::error::Error;
use std::fmt;

use nrsnn_tensor::TensorError;

/// Error type for dataset generation and batching.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A tensor operation failed while assembling the dataset.
    Tensor(TensorError),
    /// The dataset specification was invalid (zero classes, zero pixels, …).
    InvalidSpec(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::InvalidSpec(msg) => write!(f, "invalid dataset spec: {msg}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            DataError::InvalidSpec(_) => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let e = DataError::InvalidSpec("zero classes".to_string());
        assert!(e.to_string().contains("zero classes"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::ShapeDataMismatch {
            elements: 1,
            expected: 2,
        };
        assert!(matches!(DataError::from(te), DataError::Tensor(_)));
    }
}
