//! Labelled datasets and mini-batch iteration.

use nrsnn_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DataError, Result};

/// A labelled set of samples: a `(samples x features)` input tensor, one
/// integer label per row and the spatial interpretation of a row.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledSet {
    /// Input tensor of shape `(samples, features)` with values in `[0, 1]`.
    pub inputs: Tensor,
    /// One class label per sample.
    pub labels: Vec<usize>,
    /// Number of classes in the underlying task.
    pub num_classes: usize,
    /// Spatial shape of a single row, `[channels, height, width]`.
    pub feature_shape: [usize; 3],
}

impl LabelledSet {
    /// Creates a labelled set after validating consistency.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidSpec`] if row count and label count
    /// disagree, a label is out of range, or the feature shape does not
    /// match the row width.
    pub fn new(
        inputs: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
        feature_shape: [usize; 3],
    ) -> Result<Self> {
        if inputs.shape().rank() != 2 {
            return Err(DataError::InvalidSpec(
                "inputs must be rank 2 (samples x features)".to_string(),
            ));
        }
        if inputs.dims()[0] != labels.len() {
            return Err(DataError::InvalidSpec(format!(
                "{} rows but {} labels",
                inputs.dims()[0],
                labels.len()
            )));
        }
        let feat: usize = feature_shape.iter().product();
        if inputs.dims()[1] != feat {
            return Err(DataError::InvalidSpec(format!(
                "feature shape {feature_shape:?} implies width {feat}, inputs have {}",
                inputs.dims()[1]
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::InvalidSpec(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(LabelledSet {
            inputs,
            labels,
            num_classes,
            feature_shape,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the set has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    pub fn feature_len(&self) -> usize {
        self.feature_shape.iter().product()
    }

    /// Selects a subset of the samples by index (used to keep spiking
    /// simulations affordable).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidSpec`] if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<LabelledSet> {
        let rows = indices
            .iter()
            .map(|&i| {
                if i >= self.len() {
                    Err(DataError::InvalidSpec(format!("index {i} out of range")))
                } else {
                    Ok(self.inputs.row(i)?)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let inputs = Tensor::stack_rows(&rows)?;
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        LabelledSet::new(inputs, labels, self.num_classes, self.feature_shape)
    }

    /// Takes the first `n` samples (or all of them if fewer).
    ///
    /// # Errors
    /// Propagates tensor errors.
    pub fn take(&self, n: usize) -> Result<LabelledSet> {
        let n = n.min(self.len());
        let idx: Vec<usize> = (0..n).collect();
        self.subset(&idx)
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

/// Iterates over mini-batches of a [`LabelledSet`] in a (possibly shuffled)
/// order.
#[derive(Debug)]
pub struct Batcher {
    order: Vec<usize>,
    batch_size: usize,
}

impl Batcher {
    /// Creates a batcher over `set.len()` samples.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidSpec`] if `batch_size` is zero.
    pub fn new(set: &LabelledSet, batch_size: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidSpec(
                "batch size must be non-zero".to_string(),
            ));
        }
        Ok(Batcher {
            order: (0..set.len()).collect(),
            batch_size,
        })
    }

    /// Shuffles the iteration order.
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        self.order.shuffle(rng);
    }

    /// Yields `(inputs, labels)` mini-batches from `set`.
    ///
    /// # Errors
    /// Propagates tensor errors.
    pub fn batches(&self, set: &LabelledSet) -> Result<Vec<(Tensor, Vec<usize>)>> {
        let mut out = Vec::new();
        for chunk in self.order.chunks(self.batch_size) {
            let rows = chunk
                .iter()
                .map(|&i| set.inputs.row(i))
                .collect::<std::result::Result<Vec<_>, _>>()?;
            let x = Tensor::stack_rows(&rows)?;
            let y = chunk.iter().map(|&i| set.labels[i]).collect();
            out.push((x, y));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_set() -> LabelledSet {
        let inputs = Tensor::from_vec((0..12).map(|i| i as f32 / 12.0).collect(), &[6, 2]).unwrap();
        LabelledSet::new(inputs, vec![0, 1, 0, 1, 0, 1], 2, [1, 1, 2]).unwrap()
    }

    #[test]
    fn new_validates_labels_and_shape() {
        let inputs = Tensor::zeros(&[2, 4]);
        assert!(LabelledSet::new(inputs.clone(), vec![0, 5], 3, [1, 2, 2]).is_err());
        assert!(LabelledSet::new(inputs.clone(), vec![0], 3, [1, 2, 2]).is_err());
        assert!(LabelledSet::new(inputs, vec![0, 1], 3, [1, 3, 3]).is_err());
    }

    #[test]
    fn subset_and_take() {
        let set = tiny_set();
        let sub = set.subset(&[0, 2, 4]).unwrap();
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels, vec![0, 0, 0]);
        let head = set.take(2).unwrap();
        assert_eq!(head.len(), 2);
        assert!(set.subset(&[10]).is_err());
    }

    #[test]
    fn class_histogram_counts() {
        let set = tiny_set();
        assert_eq!(set.class_histogram(), vec![3, 3]);
    }

    #[test]
    fn batcher_covers_all_samples() {
        let set = tiny_set();
        let batcher = Batcher::new(&set, 4).unwrap();
        let batches = batcher.batches(&set).unwrap();
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 6);
        assert_eq!(batches[0].0.dims(), &[4, 2]);
        assert_eq!(batches[1].0.dims(), &[2, 2]);
    }

    #[test]
    fn batcher_shuffle_permutes() {
        let set = tiny_set();
        let mut batcher = Batcher::new(&set, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        batcher.shuffle(&mut rng);
        let batches = batcher.batches(&set).unwrap();
        // Same multiset of labels regardless of shuffling.
        let mut labels = batches[0].1.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn zero_batch_size_rejected() {
        let set = tiny_set();
        assert!(Batcher::new(&set, 0).is_err());
    }
}
