//! The dynamic batcher: a bounded request queue drained by long-lived
//! workers that coalesce same-model requests into one batched simulation
//! call.
//!
//! ## Batching policy
//!
//! A worker pops the oldest queued request, then coalesces every other
//! queued request for the *same model* (in arrival order) up to
//! [`ServerConfig::max_batch`].  If the batch is not full and a positive
//! [`ServerConfig::batch_window`] is configured, the worker waits up to the
//! window for more same-model arrivals before executing; with the default
//! zero window it batches exactly the current backlog and never delays a
//! request.  Each batch becomes **one**
//! [`SnnNetwork::simulate_batch_each`](nrsnn_snn::SnnNetwork::simulate_batch_each)
//! call through the worker's own reusable [`SimWorkspace`].  The simulation
//! engine under that call is sparsity-aware (see
//! `nrsnn_snn::SparsityPolicy`): served models running few-spike temporal
//! codings cost per-request compute proportional to their active neurons,
//! while replies stay bit-identical to the offline simulator.
//!
//! ## Backpressure
//!
//! The queue is bounded by [`ServerConfig::queue_capacity`].  A submit
//! against a full queue fails *immediately* with [`ServeError::Busy`] —
//! requests are never silently dropped and never queued unboundedly; the
//! client decides whether to retry.
//!
//! ## Determinism
//!
//! Request `r` against model `m` is simulated with a fresh RNG seeded
//! `derive_seed(m.master_seed, r.seed)` — a pure function of the model and
//! the request, independent of batch companions, queue position, worker
//! count and workspace reuse.  The `serve determinism` tests pin this
//! against the offline `simulate_with` path byte for byte.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
// nrsnn-lint: allow(forbidden-api) -- Instant feeds Condvar::wait_timeout
// deadlines only; all observable timestamps go through the obs clock.
use std::time::{Duration, Instant};

use nrsnn_obs::{KernelPath, Span, Stage, TraceRecord};
use nrsnn_runtime::{derive_seed, ParallelConfig};
use nrsnn_snn::{BatchOutcome, SimStage, SimWorkspace};
use nrsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::protocol::InferenceReply;
use crate::{ModelRegistry, Result, ServeError};

/// Tunables of one server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of batcher worker threads; `0` resolves like
    /// [`ParallelConfig::auto`] (the `NRSNN_THREADS` environment variable,
    /// then the machine's available parallelism).
    pub workers: usize,
    /// Maximum requests coalesced into one simulation batch (minimum 1).
    pub max_batch: usize,
    /// How long a worker may hold an incomplete batch open waiting for more
    /// same-model requests.  Zero (the default) batches exactly the current
    /// backlog: larger batches form under load, single requests are never
    /// delayed.
    pub batch_window: Duration,
    /// Bound of the submission queue; a submit against a full queue is
    /// rejected with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Whether per-request tracing is enabled: stage spans from the
    /// simulation engine, trace ids in replies, and timelines in the
    /// flight recorder (queryable via the `trace` request).  On by default
    /// — the `obs_overhead` bench gates the cost at ≤2% of throughput —
    /// and guaranteed not to change any reply bit (tracing reads clocks,
    /// never the RNG stream).
    pub tracing: bool,
}

impl ServerConfig {
    /// Upper bound accepted for [`ServerConfig::batch_window`]: far beyond
    /// any sensible batching delay, and small enough that deadline
    /// arithmetic on [`Instant`] can never overflow.
    pub const MAX_BATCH_WINDOW: Duration = Duration::from_secs(60);

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`ServeError::InvalidRequest`] for a zero batch size or
    /// queue capacity, or a batch window above
    /// [`ServerConfig::MAX_BATCH_WINDOW`].
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidRequest(
                "max_batch must be at least 1".to_string(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidRequest(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        if self.batch_window > ServerConfig::MAX_BATCH_WINDOW {
            return Err(ServeError::InvalidRequest(format!(
                "batch_window must be at most {:?}, got {:?}",
                ServerConfig::MAX_BATCH_WINDOW,
                self.batch_window
            )));
        }
        Ok(())
    }

    /// The worker count this configuration resolves to right now.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            ParallelConfig::auto().effective_threads()
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_batch: 8,
            batch_window: Duration::ZERO,
            queue_capacity: 256,
            tracing: true,
        }
    }
}

/// One-shot rendezvous between a submitter and the worker that serves its
/// request.
///
/// The slot is strictly one-way: `Empty → Ready → Consumed`.  It never
/// returns to `Empty` once fulfilled, so a late [`PendingRequest`] drop
/// cannot mistake an already-served (and already-consumed) request for a
/// stranded one.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
enum SlotState {
    #[default]
    Empty,
    Ready(Result<InferenceReply>),
    Consumed,
}

impl ResponseSlot {
    /// Stores the result (first write wins) and wakes the waiter; returns
    /// `true` if this call was the one that fulfilled the slot.
    fn fulfill(&self, result: Result<InferenceReply>) -> bool {
        // UNWRAP: lock poisoning — a worker panicked mid-fulfil; propagating the panic is correct.
        let mut state = self.state.lock().expect("slot lock");
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Ready(result);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    /// Blocks until the worker fulfils the slot (single waiter; a second
    /// `wait` on a consumed slot errors instead of blocking forever).
    pub(crate) fn wait(&self) -> Result<InferenceReply> {
        // UNWRAP: lock poisoning — the fulfilling worker panicked; the waiter cannot get a reply anyway.
        let mut state = self.state.lock().expect("slot lock");
        loop {
            match std::mem::replace(&mut *state, SlotState::Consumed) {
                SlotState::Ready(result) => return result,
                SlotState::Empty => {
                    *state = SlotState::Empty;
                    // UNWRAP: lock poisoning — same slot-lock argument as the acquisition above.
                    state = self.ready.wait(state).expect("slot lock");
                }
                SlotState::Consumed => {
                    return Err(ServeError::Internal(
                        "response slot waited on twice".to_string(),
                    ));
                }
            }
        }
    }
}

/// A queued inference request.
pub(crate) struct PendingRequest {
    model: usize,
    seed: u64,
    input: Vec<f32>,
    enqueued: Instant,
    /// Server-unique trace id assigned at admission (0 when tracing is
    /// off); echoed in the reply and keying the flight-recorder timeline.
    trace_id: u64,
    slot: Arc<ResponseSlot>,
    /// Kept so the [`Drop`] safety net can account for a stranded request;
    /// deliberately an `Arc<Metrics>` rather than the whole core to avoid
    /// a queue → request → core reference cycle.
    metrics: Arc<Metrics>,
}

impl Drop for PendingRequest {
    /// Safety net: a request must never strand its waiter.  If the request
    /// is dropped unanswered — a batcher worker panicked mid-batch, or the
    /// queue itself is torn down — the slot is fulfilled with a typed
    /// error so `wait` unblocks instead of hanging forever, and the
    /// failure is counted so the stats invariant
    /// `received == served + failed + rejected_busy` survives.  On the
    /// normal path the slot is already fulfilled and this first-write-wins
    /// call is a no-op.
    fn drop(&mut self) {
        if self.slot.fulfill(Err(ServeError::Internal(
            "request dropped before a worker answered it".to_string(),
        ))) {
            self.metrics.record_failed(1);
        }
    }
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<PendingRequest>,
    shutting_down: bool,
}

/// Everything the workers, clients and front-ends share.
pub(crate) struct ServerCore {
    pub(crate) registry: ModelRegistry,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Arc<Metrics>,
    state: Mutex<QueueState>,
    not_empty: Condvar,
}

impl ServerCore {
    pub(crate) fn new(registry: ModelRegistry, config: ServerConfig) -> ServerCore {
        ServerCore {
            registry,
            metrics: Arc::new(Metrics::new(config.effective_workers(), config.tracing)),
            config,
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
        }
    }

    /// Validates and enqueues one request, returning the slot its response
    /// will arrive on.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] / [`ServeError::InputMismatch`] for bad
    /// requests, [`ServeError::Busy`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub(crate) fn submit(
        &self,
        model_name: &str,
        input: Vec<f32>,
        seed: u64,
    ) -> Result<Arc<ResponseSlot>> {
        let model_index = self
            .registry
            .index_of(model_name)
            .ok_or_else(|| ServeError::UnknownModel(model_name.to_string()))?;
        let expected = self.registry.model(model_index).input_width();
        if input.len() != expected {
            return Err(ServeError::InputMismatch {
                model: model_name.to_string(),
                expected,
                actual: input.len(),
            });
        }
        if let Some(bad) = input.iter().find(|v| !v.is_finite()) {
            return Err(ServeError::InvalidRequest(format!(
                "input values must be finite, got {bad}"
            )));
        }
        let slot = Arc::new(ResponseSlot::default());
        {
            // UNWRAP: lock poisoning — a worker panicked holding the queue; the server is already lost.
            let mut state = self.state.lock().expect("queue lock");
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            // Every validly-addressed submit counts as received, whether it
            // is admitted or bounced for backpressure — so at quiescence
            // `received == served + failed + rejected_busy` holds exactly.
            self.metrics.record_received();
            if state.queue.len() >= self.config.queue_capacity {
                self.metrics.record_busy();
                return Err(ServeError::Busy {
                    capacity: self.config.queue_capacity,
                });
            }
            state.queue.push_back(PendingRequest {
                model: model_index,
                seed,
                input,
                enqueued: Instant::now(),
                // Admitted requests get their trace id here, so the queue
                // wait is part of the recorded timeline from the start.
                trace_id: if self.config.tracing {
                    self.metrics.next_trace_id()
                } else {
                    0
                },
                slot: Arc::clone(&slot),
                metrics: Arc::clone(&self.metrics),
            });
        }
        // notify_all: besides idle workers, a worker in a timed batch-window
        // wait may need to see the new arrival.
        self.not_empty.notify_all();
        Ok(slot)
    }

    /// Raises the shutdown flag and wakes every parked worker.  Queued
    /// requests are still drained and answered; new submits fail with
    /// [`ServeError::ShuttingDown`].
    pub(crate) fn begin_shutdown(&self) {
        // UNWRAP: lock poisoning — shutdown on a poisoned queue has nothing left to protect.
        self.state.lock().expect("queue lock").shutting_down = true;
        self.not_empty.notify_all();
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        // UNWRAP: lock poisoning — same queue-lock argument as `begin_shutdown`.
        self.state.lock().expect("queue lock").shutting_down
    }

    /// Number of requests currently queued (not yet claimed by a worker).
    pub(crate) fn queued(&self) -> usize {
        // UNWRAP: lock poisoning — same queue-lock argument as `begin_shutdown`.
        self.state.lock().expect("queue lock").queue.len()
    }
}

/// Per-worker reusable buffers: the simulation workspace, the flat input
/// staging buffer, the claimed-batch list, the skipped-requests deque used
/// while claiming, and the trace-record staging slot spans are assembled
/// into before being copied into the flight recorder.  None of them carry
/// values that influence results.
#[derive(Default)]
struct WorkerScratch {
    ws: SimWorkspace,
    flat: Vec<f32>,
    batch: Vec<PendingRequest>,
    skipped: VecDeque<PendingRequest>,
    trace: TraceRecord,
}

impl WorkerScratch {
    fn for_core(core: &ServerCore) -> WorkerScratch {
        let mut scratch = WorkerScratch::default();
        scratch.ws.set_stage_tracing(core.config.tracing);
        scratch
    }
}

/// Removes every queued request for `model` (in arrival order) into
/// `batch`, up to `max` total batch entries.
///
/// Runs in O(queue length) — one forward pass with skipped requests kept
/// aside in the caller's reusable `skipped` deque (left empty on return)
/// and pushed back in order — because it executes under the global
/// submission-queue lock, where an O(n²) shift-per-removal or a per-claim
/// allocation would stall every submitter and worker on a deep
/// multi-model queue.
fn drain_same_model(
    queue: &mut VecDeque<PendingRequest>,
    model: usize,
    batch: &mut Vec<PendingRequest>,
    max: usize,
    skipped: &mut VecDeque<PendingRequest>,
) {
    debug_assert!(skipped.is_empty());
    while batch.len() < max {
        match queue.pop_front() {
            Some(request) if request.model == model => batch.push(request),
            Some(request) => skipped.push_back(request),
            None => break,
        }
    }
    // Re-attach the skipped prefix ahead of the unscanned tail, order kept.
    while let Some(request) = skipped.pop_back() {
        queue.push_front(request);
    }
}

/// The body each batcher worker runs until shutdown: claim a batch, hold it
/// open for up to the batch window, execute, repeat.
///
/// A panic while executing a batch (a bug in a model's simulation, a
/// poisoned workspace invariant, …) is caught: the claimed requests are
/// failed with [`ServeError::Internal`], the worker's scratch is rebuilt,
/// and the worker keeps serving — a dead worker would otherwise leave
/// queued requests unanswered forever once the last worker is gone.
pub(crate) fn worker_loop(core: &ServerCore, worker: usize) {
    let mut scratch = WorkerScratch::for_core(core);
    loop {
        {
            // UNWRAP: lock poisoning — a sibling worker panicked holding the queue; die with it.
            let mut state = core.state.lock().expect("queue lock");
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutting_down {
                    return;
                }
                // UNWRAP: lock poisoning — same queue-lock argument as the acquisition above.
                state = core.not_empty.wait(state).expect("queue lock");
            }
            // UNWRAP: infallible — the wait loop above only exits with a non-empty queue.
            let first = state.queue.pop_front().expect("non-empty checked");
            let model = first.model;
            scratch.batch.push(first);
            let deadline = Instant::now() + core.config.batch_window;
            loop {
                drain_same_model(
                    &mut state.queue,
                    model,
                    &mut scratch.batch,
                    core.config.max_batch,
                    &mut scratch.skipped,
                );
                if scratch.batch.len() >= core.config.max_batch || state.shutting_down {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = core
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    // UNWRAP: lock poisoning — same queue-lock argument as the acquisition above.
                    .expect("queue lock");
                state = next;
                if timeout.timed_out() {
                    drain_same_model(
                        &mut state.queue,
                        model,
                        &mut scratch.batch,
                        core.config.max_batch,
                        &mut scratch.skipped,
                    );
                    break;
                }
            }
        }
        // The batch is sealed the moment the claim loop releases the queue
        // lock: everything before this instant is the requests' queue wait,
        // everything between it and a request's own simulation is its
        // batch-assembly share.
        let sealed = Instant::now();
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(core, worker, sealed, &mut scratch)
        }));
        if executed.is_err() {
            fail_batch(
                &scratch.batch,
                &ServeError::Internal("batch execution panicked".to_string()),
                &core.metrics,
                Some(worker),
            );
            // The panic may have left the scratch buffers in an arbitrary
            // state; rebuild them (results never depend on scratch content,
            // this only re-pays the warm-up cost once).
            scratch = WorkerScratch::for_core(core);
        }
    }
}

/// Fails every not-yet-fulfilled request of the batch with `error`,
/// counting only the requests this call actually failed (fulfil is
/// first-write-wins, so already-answered requests are not re-counted).
///
/// When a worker context is known and tracing is on, each failed request
/// also leaves a span-less `ok: false` timeline in the flight recorder —
/// failures are exactly the requests the outlier ring exists for.  (The
/// worker-less caller is the [`PendingRequest`] drop safety net, which has
/// no recorder shard to write into.)
fn fail_batch(
    batch: &[PendingRequest],
    error: &ServeError,
    metrics: &Metrics,
    worker: Option<usize>,
) {
    for request in batch {
        if request.slot.fulfill(Err(error.clone())) {
            metrics.record_failed(1);
            if let Some(worker) = worker {
                if metrics.tracing() && request.trace_id != 0 {
                    let start_ns = metrics.ns_since_epoch(request.enqueued);
                    metrics.record_trace(
                        worker,
                        &TraceRecord {
                            trace_id: request.trace_id,
                            model: request.model as u32,
                            seed: request.seed,
                            worker: worker as u32,
                            start_ns,
                            end_ns: metrics.ns_since_epoch(Instant::now()),
                            ok: false,
                            backend: nrsnn_tensor::simd::active_backend().name(),
                            spans: Vec::new(),
                            dropped_spans: 0,
                        },
                    );
                }
            }
        }
    }
}

/// Executes one claimed batch through the worker's workspace and fulfils
/// every request slot.
///
/// With tracing on, each request's reply carries its trace id and its full
/// timeline is assembled here — queue wait (enqueue → `sealed`), batch
/// assembly (`sealed` → the request's own simulation starting, which
/// includes the simulation time of earlier batch companions), the
/// simulation engine's per-layer stage events, and reply serialization —
/// and copied into the flight recorder **before** the slot is fulfilled,
/// so any client holding a reply can already resolve its trace id.
fn run_batch(core: &ServerCore, worker: usize, sealed: Instant, scratch: &mut WorkerScratch) {
    let WorkerScratch {
        ws,
        flat,
        batch,
        skipped: _,
        trace,
    } = scratch;
    if batch.is_empty() {
        return;
    }
    let model = core.registry.model(batch[0].model);
    let size = batch.len();
    core.metrics.record_batch(worker, size);

    let width = model.input_width();
    flat.clear();
    flat.reserve(size * width);
    for request in batch.iter() {
        flat.extend_from_slice(&request.input);
    }
    let inputs = match Tensor::from_vec(std::mem::take(flat), &[size, width]) {
        Ok(tensor) => tensor,
        Err(e) => {
            fail_batch(
                batch,
                &ServeError::Simulation(e.to_string()),
                &core.metrics,
                Some(worker),
            );
            batch.clear();
            return;
        }
    };

    let tracing = core.config.tracing;
    let backend = nrsnn_tensor::simd::active_backend().name();
    let result = model.network.simulate_batch_each(
        &inputs,
        0..size,
        model.coding.as_ref(),
        &model.config,
        model.noise.as_ref(),
        |sample| StdRng::seed_from_u64(derive_seed(model.master_seed, batch[sample].seed)),
        ws,
        |sample, outcome: BatchOutcome, ws| {
            let request = &batch[sample];
            let latency_us = request.enqueued.elapsed().as_micros() as u64;
            core.metrics
                .record_served(worker, latency_us, outcome.total_spikes as u64);
            if tracing {
                // Open the timeline: queue wait, batch assembly, then the
                // engine's stage events mapped onto the span taxonomy.
                let ns = |at: Instant| core.metrics.ns_since_epoch(at);
                let enqueued_ns = ns(request.enqueued);
                let sealed_ns = ns(sealed);
                let events = ws.stage_events();
                let own_start_ns = events.first().map_or(sealed_ns, |e| ns(e.start));
                trace.trace_id = request.trace_id;
                trace.model = request.model as u32;
                trace.seed = request.seed;
                trace.worker = worker as u32;
                trace.start_ns = enqueued_ns;
                trace.ok = true;
                trace.backend = backend;
                trace.dropped_spans = 0;
                trace.spans.clear();
                trace.spans.push(Span {
                    stage: Stage::QueueWait,
                    layer: None,
                    start_ns: enqueued_ns,
                    end_ns: sealed_ns,
                    kernel: KernelPath::None,
                    density: 0.0,
                });
                trace.spans.push(Span {
                    stage: Stage::BatchAssembly,
                    layer: None,
                    start_ns: sealed_ns,
                    end_ns: own_start_ns,
                    kernel: KernelPath::None,
                    density: 0.0,
                });
                let mut sim_end_ns = own_start_ns;
                for event in events {
                    let (stage, kernel) = match event.stage {
                        SimStage::Encode => (Stage::Encode, KernelPath::None),
                        SimStage::Noise => (Stage::Noise, KernelPath::None),
                        SimStage::Decode => (Stage::Decode, KernelPath::None),
                        SimStage::Forward => (
                            Stage::Simulate,
                            if event.sparse {
                                KernelPath::Sparse
                            } else {
                                KernelPath::Dense
                            },
                        ),
                    };
                    sim_end_ns = ns(event.end);
                    trace.spans.push(Span {
                        stage,
                        layer: Some(event.layer),
                        start_ns: ns(event.start),
                        end_ns: sim_end_ns,
                        kernel,
                        density: event.density,
                    });
                }
                // Build the reply inside the reply-serialization span, then
                // record the finished timeline *before* fulfilling the slot:
                // a client holding the reply can already resolve its trace.
                let reply = InferenceReply {
                    model: model.name.clone(),
                    predicted: outcome.predicted,
                    logits: ws.logits().to_vec(),
                    total_spikes: outcome.total_spikes,
                    latency_us,
                    trace_id: request.trace_id,
                };
                let done_ns = ns(Instant::now());
                trace.spans.push(Span {
                    stage: Stage::ReplySerialize,
                    layer: None,
                    start_ns: sim_end_ns,
                    end_ns: done_ns,
                    kernel: KernelPath::None,
                    density: 0.0,
                });
                trace.end_ns = done_ns;
                for span in &trace.spans {
                    core.metrics
                        .record_stage(worker, span.stage, span.duration_ns());
                }
                core.metrics.record_trace(worker, trace);
                request.slot.fulfill(Ok(reply));
            } else {
                request.slot.fulfill(Ok(InferenceReply {
                    model: model.name.clone(),
                    predicted: outcome.predicted,
                    logits: ws.logits().to_vec(),
                    total_spikes: outcome.total_spikes,
                    latency_us,
                    trace_id: 0,
                }));
            }
        },
    );
    // Reclaim the staging buffer's capacity for the next batch.
    *flat = inputs.into_vec();
    flat.clear();
    if let Err(e) = result {
        // simulate_batch_each validates before simulating, so a failure here
        // fails the whole batch: no slot has been fulfilled yet (and fulfil
        // is first-write-wins in any case).
        fail_batch(batch, &ServeError::from(e), &core.metrics, Some(worker));
    }
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseSpec, ServedModel};
    use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};

    fn toy_registry() -> ModelRegistry {
        let network = SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2]).unwrap(),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap();
        let mut registry = ModelRegistry::new();
        registry
            .insert(
                ServedModel::new(
                    "toy",
                    network,
                    CodingKind::Rate,
                    CodingConfig::new(32, 1.0),
                    NoiseSpec::Clean,
                    1.0,
                    7,
                )
                .unwrap(),
            )
            .unwrap();
        registry
    }

    #[test]
    fn config_validation() {
        assert!(ServerConfig::default().validate().is_ok());
        let no_batch = ServerConfig {
            max_batch: 0,
            ..ServerConfig::default()
        };
        assert!(no_batch.validate().is_err());
        let no_queue = ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        };
        assert!(no_queue.validate().is_err());
        // An absurd batch window is rejected up front instead of letting
        // deadline arithmetic panic inside a worker.
        let absurd_window = ServerConfig {
            batch_window: Duration::from_secs(u64::MAX),
            ..ServerConfig::default()
        };
        assert!(absurd_window.validate().is_err());
        let max_window = ServerConfig {
            batch_window: ServerConfig::MAX_BATCH_WINDOW,
            ..ServerConfig::default()
        };
        assert!(max_window.validate().is_ok());
        assert!(ServerConfig::default().effective_workers() >= 1);
        assert_eq!(
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            }
            .effective_workers(),
            3
        );
    }

    #[test]
    fn submit_validates_model_and_width() {
        let core = ServerCore::new(toy_registry(), ServerConfig::default());
        assert!(matches!(
            core.submit("missing", vec![0.1, 0.2], 0),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            core.submit("toy", vec![0.1], 0),
            Err(ServeError::InputMismatch {
                expected: 2,
                actual: 1,
                ..
            })
        ));
        assert!(matches!(
            core.submit("toy", vec![0.1, f32::NAN], 0),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            core.submit("toy", vec![f32::INFINITY, 0.2], 0),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(core.submit("toy", vec![0.1, 0.2], 0).is_ok());
        assert_eq!(core.queued(), 1);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let config = ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        };
        let core = ServerCore::new(toy_registry(), config);
        core.submit("toy", vec![0.1, 0.2], 0).unwrap();
        core.submit("toy", vec![0.1, 0.2], 1).unwrap();
        assert!(matches!(
            core.submit("toy", vec![0.1, 0.2], 2),
            Err(ServeError::Busy { capacity: 2 })
        ));
        let stats = core.metrics.snapshot();
        // The bounced submit still counts as received.
        assert_eq!(stats.requests_received, 3);
        assert_eq!(stats.rejected_busy, 1);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let core = ServerCore::new(toy_registry(), ServerConfig::default());
        core.begin_shutdown();
        assert!(matches!(
            core.submit("toy", vec![0.1, 0.2], 0),
            Err(ServeError::ShuttingDown)
        ));
        assert!(core.is_shutting_down());
    }

    #[test]
    fn drain_same_model_preserves_arrival_order_and_skips_other_models() {
        let slot = || Arc::new(ResponseSlot::default());
        let request = |model: usize, seed: u64| PendingRequest {
            model,
            seed,
            input: vec![],
            enqueued: Instant::now(),
            trace_id: 0,
            slot: slot(),
            metrics: Arc::new(Metrics::default()),
        };
        let mut queue: VecDeque<PendingRequest> =
            [request(0, 1), request(1, 2), request(0, 3), request(0, 4)]
                .into_iter()
                .collect();
        let mut batch = vec![request(0, 0)];
        let mut skipped = VecDeque::new();
        drain_same_model(&mut queue, 0, &mut batch, 3, &mut skipped);
        assert!(skipped.is_empty(), "skipped deque must be left empty");
        let seeds: Vec<u64> = batch.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![0, 1, 3]); // capped at max=3, order kept
        assert_eq!(queue.len(), 2);
        assert_eq!(queue[0].model, 1);
        assert_eq!(queue[1].seed, 4);
    }

    #[test]
    fn worker_drains_queue_then_stops_on_shutdown() {
        let core = Arc::new(ServerCore::new(
            toy_registry(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        ));
        let slots: Vec<_> = (0..5)
            .map(|seed| core.submit("toy", vec![0.9, 0.1], seed).unwrap())
            .collect();
        core.begin_shutdown();
        let worker = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || worker_loop(&core, 0))
        };
        worker.join().unwrap();
        for slot in slots {
            let reply = slot.wait().unwrap();
            assert_eq!(reply.predicted, 0);
            assert_eq!(reply.logits.len(), 2);
        }
        let stats = core.metrics.snapshot();
        assert_eq!(stats.requests_served, 5);
        assert_eq!(stats.failed, 0);
        assert_eq!(core.queued(), 0);
    }

    #[test]
    fn dropping_an_unanswered_request_unblocks_its_waiter_with_an_error() {
        // Models a worker crashing after claiming a batch: the pending
        // requests unwind, and every waiter must receive a typed error
        // instead of hanging on the condvar forever.
        let slot = Arc::new(ResponseSlot::default());
        let metrics = Arc::new(Metrics::default());
        let request = PendingRequest {
            model: 0,
            seed: 1,
            input: vec![0.5, 0.5],
            enqueued: Instant::now(),
            trace_id: 0,
            slot: Arc::clone(&slot),
            metrics: Arc::clone(&metrics),
        };
        drop(request);
        assert!(matches!(slot.wait(), Err(ServeError::Internal(_))));
        // The stranded request is accounted as failed, keeping the stats
        // invariant `received == served + failed + rejected_busy` intact.
        assert_eq!(metrics.snapshot().failed, 1);
    }

    #[test]
    fn slot_fulfil_is_first_write_wins() {
        let slot = ResponseSlot::default();
        slot.fulfill(Err(ServeError::ShuttingDown));
        slot.fulfill(Ok(InferenceReply {
            model: "m".to_string(),
            predicted: 0,
            logits: vec![],
            total_spikes: 0,
            latency_us: 0,
            trace_id: 0,
        }));
        assert!(matches!(slot.wait(), Err(ServeError::ShuttingDown)));
    }
}
