//! Serializable model specifications and their warm, servable form.
//!
//! A [`ModelSpec`] is the on-disk description of one servable SNN: the
//! converted layer architecture, its parameters (reusing the
//! [`NetworkWeights`] container from `nrsnn-dnn`, in the same
//! weights-then-bias per-layer order), the neural coding, the coding
//! configuration, the deployment noise model and the weight-scaling factor
//! that was folded into the parameters.  [`ModelSpec::build`] turns it into
//! a [`ServedModel`]: the reconstructed [`SnnNetwork`] plus ready-to-use
//! coding and noise objects, kept warm by the registry for the lifetime of
//! the server.

use nrsnn_dnn::NetworkWeights;
use nrsnn_noise::{CompositeNoise, DeletionNoise, JitterNoise};
use nrsnn_snn::{
    CodingConfig, CodingKind, IdentityTransform, NeuralCoding, SnnLayer, SnnNetwork, SpikeTransform,
};
use nrsnn_tensor::{Conv2dGeometry, Pool2dGeometry, Tensor};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::protocol::{seed_from_value, seed_to_value};
use crate::{Result, ServeError};

/// Architecture of one converted-SNN layer, without its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpec {
    /// Fully connected layer (`out x input` weights plus `out` biases).
    Linear {
        /// Output width.
        out: usize,
        /// Input width.
        input: usize,
    },
    /// Convolution layer (flattened `out_channels x patch` kernel bank plus
    /// `out_channels` biases).
    Conv {
        /// Number of output channels.
        out_channels: usize,
        /// Number of input channels.
        in_channels: usize,
        /// Input height in pixels.
        in_height: usize,
        /// Input width in pixels.
        in_width: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride in both directions.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Average pooling (parameter-free).
    AvgPool {
        /// Number of channels.
        channels: usize,
        /// Input height in pixels.
        in_height: usize,
        /// Input width in pixels.
        in_width: usize,
        /// Square pooling window.
        window: usize,
        /// Stride (commonly equal to the window).
        stride: usize,
    },
}

impl LayerSpec {
    /// Extracts the architecture of an existing network layer.
    pub fn of_layer(layer: &SnnLayer) -> LayerSpec {
        match layer {
            SnnLayer::Linear { weights, .. } => LayerSpec::Linear {
                out: weights.dims()[0],
                input: weights.dims()[1],
            },
            SnnLayer::Conv {
                weights, geometry, ..
            } => LayerSpec::Conv {
                out_channels: weights.dims()[0],
                in_channels: geometry.in_channels,
                in_height: geometry.in_height,
                in_width: geometry.in_width,
                kernel: geometry.kernel,
                stride: geometry.stride,
                padding: geometry.padding,
            },
            SnnLayer::AvgPool { geometry } => LayerSpec::AvgPool {
                channels: geometry.channels,
                in_height: geometry.in_height,
                in_width: geometry.in_width,
                window: geometry.window,
                stride: geometry.stride,
            },
        }
    }

    /// Number of parameter tensors this layer consumes from the flat
    /// [`NetworkWeights`] list (weights + bias, or none for pooling).
    pub fn param_count(&self) -> usize {
        match self {
            LayerSpec::Linear { .. } | LayerSpec::Conv { .. } => 2,
            LayerSpec::AvgPool { .. } => 0,
        }
    }
}

impl Serialize for LayerSpec {
    fn to_value(&self) -> Value {
        match *self {
            LayerSpec::Linear { out, input } => Value::Object(vec![
                ("kind".to_string(), "linear".to_value()),
                ("out".to_string(), out.to_value()),
                ("in".to_string(), input.to_value()),
            ]),
            LayerSpec::Conv {
                out_channels,
                in_channels,
                in_height,
                in_width,
                kernel,
                stride,
                padding,
            } => Value::Object(vec![
                ("kind".to_string(), "conv".to_value()),
                ("out_channels".to_string(), out_channels.to_value()),
                ("in_channels".to_string(), in_channels.to_value()),
                ("in_height".to_string(), in_height.to_value()),
                ("in_width".to_string(), in_width.to_value()),
                ("kernel".to_string(), kernel.to_value()),
                ("stride".to_string(), stride.to_value()),
                ("padding".to_string(), padding.to_value()),
            ]),
            LayerSpec::AvgPool {
                channels,
                in_height,
                in_width,
                window,
                stride,
            } => Value::Object(vec![
                ("kind".to_string(), "avgpool".to_value()),
                ("channels".to_string(), channels.to_value()),
                ("in_height".to_string(), in_height.to_value()),
                ("in_width".to_string(), in_width.to_value()),
                ("window".to_string(), window.to_value()),
                ("stride".to_string(), stride.to_value()),
            ]),
        }
    }
}

fn field<T: Deserialize>(value: &Value, key: &str) -> std::result::Result<T, DeError> {
    let v = value
        .get(key)
        .ok_or_else(|| DeError::new(format!("missing field {key:?}")))?;
    T::from_value(v)
}

impl Deserialize for LayerSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = field(value, "kind")?;
        match kind.as_str() {
            "linear" => Ok(LayerSpec::Linear {
                out: field(value, "out")?,
                input: field(value, "in")?,
            }),
            "conv" => Ok(LayerSpec::Conv {
                out_channels: field(value, "out_channels")?,
                in_channels: field(value, "in_channels")?,
                in_height: field(value, "in_height")?,
                in_width: field(value, "in_width")?,
                kernel: field(value, "kernel")?,
                stride: field(value, "stride")?,
                padding: field(value, "padding")?,
            }),
            "avgpool" => Ok(LayerSpec::AvgPool {
                channels: field(value, "channels")?,
                in_height: field(value, "in_height")?,
                in_width: field(value, "in_width")?,
                window: field(value, "window")?,
                stride: field(value, "stride")?,
            }),
            other => Err(DeError::new(format!("unknown layer kind {other:?}"))),
        }
    }
}

/// Serializable description of the noise transform a model is served under.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseSpec {
    /// No noise (the clean baseline).
    Clean,
    /// Independent per-spike deletion with the given probability.
    Deletion(f64),
    /// Gaussian spike-time jitter with the given standard deviation.
    Jitter(f64),
    /// A chain of primitive stages applied in order (stages must not
    /// themselves be composites).
    Composite(Vec<NoiseSpec>),
}

impl NoiseSpec {
    /// Builds the runtime transform this specification describes.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] for out-of-range parameters or nested
    /// composites.
    pub fn build(&self) -> Result<Box<dyn SpikeTransform>> {
        match self {
            NoiseSpec::Clean => Ok(Box::new(IdentityTransform)),
            NoiseSpec::Deletion(p) => Ok(Box::new(DeletionNoise::new(*p)?)),
            NoiseSpec::Jitter(sigma) => Ok(Box::new(JitterNoise::new(*sigma)?)),
            NoiseSpec::Composite(stages) => {
                let mut chain = CompositeNoise::new();
                for stage in stages {
                    chain = match stage {
                        NoiseSpec::Clean => chain,
                        NoiseSpec::Deletion(p) => chain.then(DeletionNoise::new(*p)?),
                        NoiseSpec::Jitter(sigma) => chain.then(JitterNoise::new(*sigma)?),
                        NoiseSpec::Composite(_) => {
                            return Err(ServeError::Model(
                                "composite noise stages must be primitive".to_string(),
                            ))
                        }
                    };
                }
                Ok(Box::new(chain))
            }
        }
    }
}

impl Serialize for NoiseSpec {
    fn to_value(&self) -> Value {
        match self {
            NoiseSpec::Clean => Value::Object(vec![("kind".to_string(), "clean".to_value())]),
            NoiseSpec::Deletion(p) => Value::Object(vec![
                ("kind".to_string(), "deletion".to_value()),
                ("p".to_string(), p.to_value()),
            ]),
            NoiseSpec::Jitter(sigma) => Value::Object(vec![
                ("kind".to_string(), "jitter".to_value()),
                ("sigma".to_string(), sigma.to_value()),
            ]),
            NoiseSpec::Composite(stages) => Value::Object(vec![
                ("kind".to_string(), "composite".to_value()),
                ("stages".to_string(), stages.to_value()),
            ]),
        }
    }
}

impl Deserialize for NoiseSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = field(value, "kind")?;
        match kind.as_str() {
            "clean" => Ok(NoiseSpec::Clean),
            "deletion" => Ok(NoiseSpec::Deletion(field(value, "p")?)),
            "jitter" => Ok(NoiseSpec::Jitter(field(value, "sigma")?)),
            "composite" => Ok(NoiseSpec::Composite(field(value, "stages")?)),
            other => Err(DeError::new(format!("unknown noise kind {other:?}"))),
        }
    }
}

fn coding_to_value(kind: CodingKind) -> Value {
    match kind {
        CodingKind::Rate => Value::Object(vec![("kind".to_string(), "rate".to_value())]),
        CodingKind::Phase => Value::Object(vec![("kind".to_string(), "phase".to_value())]),
        CodingKind::Burst => Value::Object(vec![("kind".to_string(), "burst".to_value())]),
        CodingKind::Ttfs => Value::Object(vec![("kind".to_string(), "ttfs".to_value())]),
        CodingKind::Ttas(t_a) => Value::Object(vec![
            ("kind".to_string(), "ttas".to_value()),
            ("t_a".to_string(), t_a.to_value()),
        ]),
    }
}

fn coding_from_value(value: &Value) -> std::result::Result<CodingKind, DeError> {
    let kind: String = field(value, "kind")?;
    match kind.as_str() {
        "rate" => Ok(CodingKind::Rate),
        "phase" => Ok(CodingKind::Phase),
        "burst" => Ok(CodingKind::Burst),
        "ttfs" => Ok(CodingKind::Ttfs),
        "ttas" => Ok(CodingKind::Ttas(field(value, "t_a")?)),
        other => Err(DeError::new(format!("unknown coding kind {other:?}"))),
    }
}

/// The serializable description of one servable model.
///
/// The parameters in `weights` are the final (already weight-scaled)
/// converted-SNN tensors, in layer order with weights before bias —
/// exactly the order [`ModelSpec::from_network`] extracts them in.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Registry name clients address the model by.
    pub name: String,
    /// Neural coding used for every layer.
    pub coding: CodingKind,
    /// Simulation window length per layer.
    pub time_steps: u32,
    /// Encoding ceiling θ.
    pub threshold: f32,
    /// TTFS/TTAS PSC time constant as a fraction of the window.
    pub ttfs_tau_fraction: f32,
    /// The weight-scaling factor already folded into `weights` (recorded
    /// for reports; `1.0` means unscaled).
    pub scaling: f32,
    /// Noise transform injected into every transmitted raster.
    pub noise: NoiseSpec,
    /// Master seed mixed with each request's seed via
    /// [`nrsnn_runtime::derive_seed`].
    pub master_seed: u64,
    /// Layer architecture, input layer first.
    pub layers: Vec<LayerSpec>,
    /// Flat parameter list (see the struct docs for the order).
    pub weights: NetworkWeights,
}

impl ModelSpec {
    /// Captures an existing converted network as a servable specification.
    ///
    /// `scaling` records the factor already folded into the network's
    /// weights (use `1.0` for an unscaled conversion).
    pub fn from_network(
        name: impl Into<String>,
        network: &SnnNetwork,
        coding: CodingKind,
        config: &CodingConfig,
        noise: NoiseSpec,
        scaling: f32,
        master_seed: u64,
    ) -> ModelSpec {
        let mut params = Vec::new();
        let mut layers = Vec::with_capacity(network.num_layers());
        for layer in network.layers() {
            layers.push(LayerSpec::of_layer(layer));
            match layer {
                SnnLayer::Linear { weights, bias } | SnnLayer::Conv { weights, bias, .. } => {
                    params.push(weights.clone());
                    params.push(bias.clone());
                }
                SnnLayer::AvgPool { .. } => {}
            }
        }
        ModelSpec {
            name: name.into(),
            coding,
            time_steps: config.time_steps,
            threshold: config.threshold,
            ttfs_tau_fraction: config.ttfs_tau_fraction,
            scaling,
            noise,
            master_seed,
            layers,
            weights: NetworkWeights { params },
        }
    }

    /// The coding configuration this specification describes.
    pub fn coding_config(&self) -> CodingConfig {
        CodingConfig {
            time_steps: self.time_steps,
            threshold: self.threshold,
            ttfs_tau_fraction: self.ttfs_tau_fraction,
        }
    }

    /// Reconstructs the network and warms up the coding and noise objects.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] if the parameter list does not match
    /// the declared architecture, and propagates geometry/validation
    /// errors.
    pub fn build(&self) -> Result<ServedModel> {
        let expected: usize = self.layers.iter().map(LayerSpec::param_count).sum();
        if self.weights.params.len() != expected {
            return Err(ServeError::Model(format!(
                "model {:?} declares {} parameter tensors but carries {}",
                self.name,
                expected,
                self.weights.params.len()
            )));
        }
        let mut params = self.weights.params.iter();
        let mut take_pair = |what: &str, dims: &[usize]| -> Result<(Tensor, Tensor)> {
            // UNWRAP: infallible — the parameter count was checked against `expected` above.
            let weights = params.next().expect("count checked above").clone();
            // UNWRAP: infallible — same count check covers the bias tensor.
            let bias = params.next().expect("count checked above").clone();
            if weights.dims() != dims {
                return Err(ServeError::Model(format!(
                    "model {:?}: {what} weights have shape {:?}, expected {dims:?}",
                    self.name,
                    weights.dims()
                )));
            }
            if bias.dims() != [dims[0]] {
                return Err(ServeError::Model(format!(
                    "model {:?}: {what} bias has shape {:?}, expected [{}]",
                    self.name,
                    bias.dims(),
                    dims[0]
                )));
            }
            Ok((weights, bias))
        };

        let mut layers = Vec::with_capacity(self.layers.len());
        for spec in &self.layers {
            match *spec {
                LayerSpec::Linear { out, input } => {
                    let (weights, bias) = take_pair("linear", &[out, input])?;
                    layers.push(SnnLayer::Linear { weights, bias });
                }
                LayerSpec::Conv {
                    out_channels,
                    in_channels,
                    in_height,
                    in_width,
                    kernel,
                    stride,
                    padding,
                } => {
                    let geometry = Conv2dGeometry::new(
                        in_channels,
                        in_height,
                        in_width,
                        kernel,
                        stride,
                        padding,
                    )
                    .map_err(|e| ServeError::Model(e.to_string()))?;
                    let (weights, bias) = take_pair("conv", &[out_channels, geometry.patch_len()])?;
                    layers.push(SnnLayer::Conv {
                        weights,
                        bias,
                        geometry,
                    });
                }
                LayerSpec::AvgPool {
                    channels,
                    in_height,
                    in_width,
                    window,
                    stride,
                } => {
                    let geometry =
                        Pool2dGeometry::new(channels, in_height, in_width, window, stride)
                            .map_err(|e| ServeError::Model(e.to_string()))?;
                    layers.push(SnnLayer::AvgPool { geometry });
                }
            }
        }
        let network = SnnNetwork::new(layers).map_err(|e| ServeError::Model(e.to_string()))?;
        // A model file carrying a degenerate coding (e.g. TTAS with a
        // zero-length burst) is rejected here with a typed error instead of
        // being silently coerced into a different coding.
        self.coding
            .validate()
            .map_err(|e| ServeError::Model(e.to_string()))?;
        let config = self.coding_config();
        config
            .validate()
            .map_err(|e| ServeError::Model(e.to_string()))?;
        Ok(ServedModel {
            name: self.name.clone(),
            coding_kind: self.coding,
            coding: self.coding.build(),
            config,
            noise: self.noise.build()?,
            noise_spec: self.noise.clone(),
            scaling: self.scaling,
            master_seed: self.master_seed,
            network,
        })
    }

    /// Serializes the specification as compact JSON.
    pub fn to_json(&self) -> String {
        // UNWRAP: infallible — `ModelSpec` contains no map keys or
        // non-string-keyed data the JSON shim can reject.
        serde_json::to_string(self).expect("shim serialization is infallible")
    }

    /// Parses a specification from JSON text.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] on malformed JSON or schema mismatch.
    pub fn from_json(json: &str) -> Result<ModelSpec> {
        serde_json::from_str(json).map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Serializes the specification as a binary `nrsnn-wire` model file
    /// image (`NRSM` magic; see `nrsnn_wire::model` for the layout).
    /// Unlike [`ModelSpec::to_json`], the binary image is bit-exact and
    /// roughly 3x smaller: weights travel as raw IEEE bits and the master
    /// seed as a full u64.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] for specs the format cannot carry
    /// (dimensions above `u32::MAX`, nested composite noise).
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        nrsnn_wire::encode_model(&crate::binary::spec_to_record(self))
            .map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Parses a specification from a binary model file image.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] on any decode failure (bad magic,
    /// unsupported version, truncation, corrupt payload).
    pub fn from_binary(bytes: &[u8]) -> Result<ModelSpec> {
        nrsnn_wire::decode_model(bytes)
            .map(crate::binary::record_to_spec)
            .map_err(|e| ServeError::Model(e.to_string()))
    }
}

impl Serialize for ModelSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("coding".to_string(), coding_to_value(self.coding)),
            ("time_steps".to_string(), self.time_steps.to_value()),
            ("threshold".to_string(), self.threshold.to_value()),
            (
                "ttfs_tau_fraction".to_string(),
                self.ttfs_tau_fraction.to_value(),
            ),
            ("scaling".to_string(), self.scaling.to_value()),
            ("noise".to_string(), self.noise.to_value()),
            ("master_seed".to_string(), seed_to_value(self.master_seed)),
            ("layers".to_string(), self.layers.to_value()),
            ("weights".to_string(), self.weights.to_value()),
        ])
    }
}

impl Deserialize for ModelSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        Ok(ModelSpec {
            name: field(value, "name")?,
            coding: coding_from_value(
                value
                    .get("coding")
                    .ok_or_else(|| DeError::new("missing field \"coding\""))?,
            )?,
            time_steps: field(value, "time_steps")?,
            threshold: field(value, "threshold")?,
            ttfs_tau_fraction: field(value, "ttfs_tau_fraction")?,
            scaling: field(value, "scaling")?,
            noise: field(value, "noise")?,
            master_seed: seed_from_value(
                value
                    .get("master_seed")
                    .ok_or_else(|| DeError::new("missing field \"master_seed\""))?,
            )?,
            layers: field(value, "layers")?,
            weights: field(value, "weights")?,
        })
    }
}

/// A model kept warm by the registry: the reconstructed network plus
/// ready-built coding and noise objects.
pub struct ServedModel {
    /// Registry name.
    pub name: String,
    /// The coding kind tag (for reports and stats).
    pub coding_kind: CodingKind,
    /// The warm coding object.
    pub coding: Box<dyn NeuralCoding>,
    /// Shared coding configuration.
    pub config: CodingConfig,
    /// The warm noise transform.
    pub noise: Box<dyn SpikeTransform>,
    /// The serializable description of `noise`.
    pub noise_spec: NoiseSpec,
    /// Weight-scaling factor folded into the network.
    pub scaling: f32,
    /// Master seed mixed with each request's seed.
    pub master_seed: u64,
    /// The converted (and scaled) network.
    pub network: SnnNetwork,
}

impl ServedModel {
    /// Builds a served model directly from parts (the in-process
    /// equivalent of loading a [`ModelSpec`]).
    ///
    /// # Errors
    /// Propagates coding-kind and coding-configuration validation and noise
    /// construction — a degenerate coding (e.g. `Ttas(0)`) is a typed
    /// [`ServeError::Model`] at load time, never a silently coerced
    /// parameter serving live traffic.
    pub fn new(
        name: impl Into<String>,
        network: SnnNetwork,
        coding: CodingKind,
        config: CodingConfig,
        noise: NoiseSpec,
        scaling: f32,
        master_seed: u64,
    ) -> Result<ServedModel> {
        coding
            .validate()
            .map_err(|e| ServeError::Model(e.to_string()))?;
        config
            .validate()
            .map_err(|e| ServeError::Model(e.to_string()))?;
        Ok(ServedModel {
            name: name.into(),
            coding_kind: coding,
            coding: coding.build(),
            config,
            noise: noise.build()?,
            noise_spec: noise,
            scaling,
            master_seed,
            network,
        })
    }

    /// Input width a request for this model must carry.
    pub fn input_width(&self) -> usize {
        self.network.input_width()
    }

    /// Re-captures the model as a serializable specification.
    pub fn to_spec(&self) -> ModelSpec {
        ModelSpec::from_network(
            self.name.clone(),
            &self.network,
            self.coding_kind,
            &self.config,
            self.noise_spec.clone(),
            self.scaling,
            self.master_seed,
        )
    }
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("coding", &self.coding_kind)
            .field("layers", &self.network.num_layers())
            .field("input_width", &self.network.input_width())
            .field("noise", &self.noise.describe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_network() -> SnnNetwork {
        SnnNetwork::new(vec![
            SnnLayer::Linear {
                weights: Tensor::from_vec(vec![0.6, 0.4, 0.3, 0.7], &[2, 2]).unwrap(),
                bias: Tensor::from_vec(vec![0.05, -0.05], &[2]).unwrap(),
            },
            SnnLayer::Linear {
                weights: Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2]).unwrap(),
                bias: Tensor::zeros(&[2]),
            },
        ])
        .unwrap()
    }

    fn toy_spec() -> ModelSpec {
        ModelSpec::from_network(
            "toy",
            &toy_network(),
            CodingKind::Ttas(5),
            &CodingConfig::new(64, 1.0),
            NoiseSpec::Deletion(0.3),
            1.0,
            2021,
        )
    }

    #[test]
    fn degenerate_coding_kind_is_rejected_at_load_time() {
        // In-process construction path.
        assert!(matches!(
            ServedModel::new(
                "bad",
                toy_network(),
                CodingKind::Ttas(0),
                CodingConfig::new(64, 1.0),
                NoiseSpec::Clean,
                1.0,
                7,
            ),
            Err(ServeError::Model(_))
        ));
        // Model-file loading path: the same degenerate kind embedded in an
        // otherwise valid spec must fail `build`, not serve coerced.
        let mut spec = toy_spec();
        spec.coding = CodingKind::Ttas(0);
        assert!(matches!(spec.build(), Err(ServeError::Model(_))));
    }

    #[test]
    fn spec_round_trips_through_json_exactly() {
        let spec = toy_spec();
        let json = spec.to_json();
        let back = ModelSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // Parameter bytes survive the trip bit-for-bit.
        assert_eq!(back.weights, spec.weights);
    }

    #[test]
    fn built_model_simulates_identically_to_the_source_network() {
        let spec = toy_spec();
        let served = ModelSpec::from_json(&spec.to_json())
            .unwrap()
            .build()
            .unwrap();
        let source = toy_network();
        let coding = CodingKind::Ttas(5).build();
        let cfg = CodingConfig::new(64, 1.0);
        let noise = DeletionNoise::new(0.3).unwrap();
        for seed in 0..4u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let a = source
                .simulate(&[0.8, 0.3], coding.as_ref(), &cfg, &noise, &mut rng_a)
                .unwrap();
            let b = served
                .network
                .simulate(
                    &[0.8, 0.3],
                    served.coding.as_ref(),
                    &served.config,
                    served.noise.as_ref(),
                    &mut rng_b,
                )
                .unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn build_rejects_mismatched_parameter_lists() {
        let mut spec = toy_spec();
        spec.weights.params.pop();
        assert!(matches!(spec.build(), Err(ServeError::Model(_))));

        let mut spec = toy_spec();
        spec.layers[0] = LayerSpec::Linear { out: 3, input: 2 };
        assert!(matches!(spec.build(), Err(ServeError::Model(_))));
    }

    #[test]
    fn noise_specs_build_their_transforms() {
        assert!(NoiseSpec::Clean.build().unwrap().is_identity());
        assert_eq!(
            NoiseSpec::Deletion(0.4).build().unwrap().describe(),
            "deletion(p=0.4)"
        );
        assert!(NoiseSpec::Jitter(-1.0).build().is_err());
        assert!(NoiseSpec::Deletion(1.5).build().is_err());
        let composite =
            NoiseSpec::Composite(vec![NoiseSpec::Deletion(0.2), NoiseSpec::Jitter(1.0)]);
        assert!(composite.build().is_ok());
        let nested = NoiseSpec::Composite(vec![NoiseSpec::Composite(vec![])]);
        assert!(nested.build().is_err());
    }

    #[test]
    fn large_master_seeds_round_trip() {
        let mut spec = toy_spec();
        spec.master_seed = u64::MAX - 12345;
        let back = ModelSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.master_seed, spec.master_seed);
    }

    #[test]
    fn coding_kinds_round_trip() {
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(7),
        ] {
            let v = coding_to_value(kind);
            assert_eq!(coding_from_value(&v).unwrap(), kind);
        }
    }

    #[test]
    fn conv_and_pool_layers_round_trip() {
        let geometry = Conv2dGeometry::new(1, 8, 8, 3, 1, 1).unwrap();
        let conv = SnnLayer::Conv {
            weights: Tensor::ones(&[2, geometry.patch_len()]),
            bias: Tensor::zeros(&[2]),
            geometry,
        };
        let pool = SnnLayer::AvgPool {
            geometry: Pool2dGeometry::new(2, 8, 8, 2, 2).unwrap(),
        };
        let dense = SnnLayer::Linear {
            weights: Tensor::ones(&[3, 2 * 4 * 4]),
            bias: Tensor::zeros(&[3]),
        };
        let network = SnnNetwork::new(vec![conv, pool, dense]).unwrap();
        let spec = ModelSpec::from_network(
            "cnn",
            &network,
            CodingKind::Rate,
            &CodingConfig::new(32, 1.0),
            NoiseSpec::Clean,
            1.0,
            7,
        );
        let served = ModelSpec::from_json(&spec.to_json())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(served.network, network);
        assert_eq!(served.to_spec(), spec);
    }
}
