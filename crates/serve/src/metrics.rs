//! Serving observability: counters, batch-size histogram and latency
//! percentiles.
//!
//! Latencies are recorded into power-of-two microsecond buckets, so the
//! reported p50/p99 are upper bounds accurate to within one octave while
//! memory stays constant no matter how many requests pass through; the
//! mean is exact.  Everything lives behind one mutex that is touched once
//! per request and once per batch — negligible against millisecond-scale
//! simulations.

use std::sync::Mutex;

use serde::{DeError, Deserialize, Serialize, Value};

/// Number of power-of-two latency buckets (bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds); 40 octaves ≈ 12 days, comfortably more
/// than any request latency.
const LATENCY_BUCKETS: usize = 40;

#[derive(Debug)]
struct MetricsInner {
    received: u64,
    served: u64,
    rejected_busy: u64,
    failed: u64,
    batches: u64,
    batch_sizes: Vec<u64>,
    latency_buckets: [u64; LATENCY_BUCKETS],
    latency_sum_us: u64,
    total_spikes: u64,
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            received: 0,
            served: 0,
            rejected_busy: 0,
            failed: 0,
            batches: 0,
            batch_sizes: Vec::new(),
            latency_buckets: [0; LATENCY_BUCKETS],
            latency_sum_us: 0,
            total_spikes: 0,
        }
    }
}

/// Shared, thread-safe metrics sink of one server.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    inner: Mutex<MetricsInner>,
}

fn latency_bucket(us: u64) -> usize {
    ((63 - us.max(1).leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Upper bound (exclusive) of a latency bucket in microseconds.
fn bucket_ceiling(index: usize) -> u64 {
    1u64 << (index + 1)
}

impl Metrics {
    pub(crate) fn record_received(&self) {
        self.inner.lock().expect("metrics lock").received += 1;
    }

    pub(crate) fn record_busy(&self) {
        self.inner.lock().expect("metrics lock").rejected_busy += 1;
    }

    pub(crate) fn record_failed(&self, requests: u64) {
        self.inner.lock().expect("metrics lock").failed += requests;
    }

    pub(crate) fn record_batch(&self, size: usize) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.batches += 1;
        if inner.batch_sizes.len() <= size {
            inner.batch_sizes.resize(size + 1, 0);
        }
        inner.batch_sizes[size] += 1;
    }

    pub(crate) fn record_served(&self, latency_us: u64, spikes: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.served += 1;
        inner.latency_buckets[latency_bucket(latency_us)] += 1;
        inner.latency_sum_us += latency_us;
        inner.total_spikes += spikes;
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        let inner = self.inner.lock().expect("metrics lock");
        // One shared zero-traffic guard for every served-derived statistic:
        // before any request is served, percentiles, means and ratios are
        // all well-defined zeros.  (Previously the percentile rank and the
        // mean clamped `served` independently — one via an early return,
        // one via `max(1)` — which is the kind of drift that ends with one
        // path dividing by zero or reporting a phantom bucket ceiling.)
        let served = inner.served;
        let percentile = |q: f64| -> u64 {
            if served == 0 {
                return 0;
            }
            let rank = (q * served as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (index, &count) in inner.latency_buckets.iter().enumerate() {
                seen += count;
                if seen >= rank {
                    return bucket_ceiling(index);
                }
            }
            bucket_ceiling(LATENCY_BUCKETS - 1)
        };
        let per_served = |total: u64| -> f64 {
            if served == 0 {
                0.0
            } else {
                total as f64 / served as f64
            }
        };
        // Mean over *executed* batches, from the histogram itself — using
        // served/batches instead would under-report whenever a batch's
        // requests subsequently failed.
        let batched_requests: u64 = inner
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        ServerStats {
            requests_received: inner.received,
            requests_served: served,
            rejected_busy: inner.rejected_busy,
            failed: inner.failed,
            batches: inner.batches,
            batch_size_histogram: inner.batch_sizes.clone(),
            mean_batch_size: if inner.batches == 0 {
                0.0
            } else {
                batched_requests as f64 / inner.batches as f64
            },
            p50_latency_us: percentile(0.50),
            p99_latency_us: percentile(0.99),
            mean_latency_us: per_served(inner.latency_sum_us),
            total_spikes: inner.total_spikes,
            spikes_per_inference: per_served(inner.total_spikes),
        }
    }
}

/// A point-in-time snapshot of the server's counters, as returned by the
/// `stats` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Validly-addressed submits, whether admitted or rejected for
    /// backpressure: at quiescence
    /// `requests_received == requests_served + failed + rejected_busy`.
    pub requests_received: u64,
    /// Requests answered successfully.
    pub requests_served: u64,
    /// Requests rejected with [`crate::ServeError::Busy`] (backpressure).
    pub rejected_busy: u64,
    /// Requests that failed after being queued.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// `batch_size_histogram[s]` = number of executed batches of size `s`
    /// (index 0 is always zero).
    pub batch_size_histogram: Vec<u64>,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Median end-to-end latency (µs, upper bound of its power-of-two
    /// bucket).
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end latency (µs, upper bound of its
    /// power-of-two bucket).
    pub p99_latency_us: u64,
    /// Exact mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Total spikes transmitted across all served inferences.
    pub total_spikes: u64,
    /// Mean spikes per served inference.
    pub spikes_per_inference: f64,
}

impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "requests_received".to_string(),
                self.requests_received.to_value(),
            ),
            (
                "requests_served".to_string(),
                self.requests_served.to_value(),
            ),
            ("rejected_busy".to_string(), self.rejected_busy.to_value()),
            ("failed".to_string(), self.failed.to_value()),
            ("batches".to_string(), self.batches.to_value()),
            (
                "batch_size_histogram".to_string(),
                self.batch_size_histogram.to_value(),
            ),
            (
                "mean_batch_size".to_string(),
                self.mean_batch_size.to_value(),
            ),
            ("p50_latency_us".to_string(), self.p50_latency_us.to_value()),
            ("p99_latency_us".to_string(), self.p99_latency_us.to_value()),
            (
                "mean_latency_us".to_string(),
                self.mean_latency_us.to_value(),
            ),
            ("total_spikes".to_string(), self.total_spikes.to_value()),
            (
                "spikes_per_inference".to_string(),
                self.spikes_per_inference.to_value(),
            ),
        ])
    }
}

impl Deserialize for ServerStats {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("stats missing field {key:?}")))
        };
        Ok(ServerStats {
            requests_received: u64::from_value(field("requests_received")?)?,
            requests_served: u64::from_value(field("requests_served")?)?,
            rejected_busy: u64::from_value(field("rejected_busy")?)?,
            failed: u64::from_value(field("failed")?)?,
            batches: u64::from_value(field("batches")?)?,
            batch_size_histogram: Vec::<u64>::from_value(field("batch_size_histogram")?)?,
            mean_batch_size: f64::from_value(field("mean_batch_size")?)?,
            p50_latency_us: u64::from_value(field("p50_latency_us")?)?,
            p99_latency_us: u64::from_value(field("p99_latency_us")?)?,
            mean_latency_us: f64::from_value(field("mean_latency_us")?)?,
            total_spikes: u64::from_value(field("total_spikes")?)?,
            spikes_per_inference: f64::from_value(field("spikes_per_inference")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_land_in_their_octave_buckets() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_recorded_traffic() {
        let m = Metrics::default();
        for _ in 0..10 {
            m.record_received();
        }
        m.record_batch(4);
        m.record_batch(6);
        for i in 0..10u64 {
            m.record_served(100 + i, 50);
        }
        m.record_busy();
        let stats = m.snapshot();
        assert_eq!(stats.requests_received, 10);
        assert_eq!(stats.requests_served, 10);
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.mean_batch_size, 5.0);
        assert_eq!(stats.batch_size_histogram[4], 1);
        assert_eq!(stats.batch_size_histogram[6], 1);
        assert_eq!(stats.total_spikes, 500);
        assert_eq!(stats.spikes_per_inference, 50.0);
        // 100..110 µs all fall into the [64, 128) bucket -> ceiling 128.
        assert_eq!(stats.p50_latency_us, 128);
        assert_eq!(stats.p99_latency_us, 128);
        assert!((stats.mean_latency_us - 104.5).abs() < 1e-9);
    }

    #[test]
    fn mean_batch_size_counts_batched_requests_even_when_they_fail() {
        let m = Metrics::default();
        m.record_batch(8); // all 8 requests of this batch later fail
        m.record_failed(8);
        m.record_batch(4);
        for _ in 0..4 {
            m.record_served(10, 1);
        }
        let stats = m.snapshot();
        assert_eq!(stats.mean_batch_size, 6.0); // (8 + 4) / 2, not 4 / 2
    }

    /// A stats request before any traffic must return well-defined zeros in
    /// **every** field — no phantom bucket ceilings from clamped ranks, no
    /// NaNs from zero denominators.
    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let stats = Metrics::default().snapshot();
        assert_eq!(stats.requests_received, 0);
        assert_eq!(stats.requests_served, 0);
        assert_eq!(stats.rejected_busy, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.batches, 0);
        assert!(stats.batch_size_histogram.is_empty());
        assert_eq!(stats.mean_batch_size, 0.0);
        assert_eq!(stats.p50_latency_us, 0);
        assert_eq!(stats.p99_latency_us, 0);
        assert_eq!(stats.mean_latency_us.to_bits(), 0.0f64.to_bits());
        assert_eq!(stats.total_spikes, 0);
        assert_eq!(stats.spikes_per_inference.to_bits(), 0.0f64.to_bits());
    }

    /// Receiving (or bouncing) requests without serving any must still keep
    /// the served-derived statistics at zero: the percentile path and the
    /// mean path share one guard.
    #[test]
    fn received_but_unserved_traffic_keeps_served_statistics_zero() {
        let m = Metrics::default();
        m.record_received();
        m.record_received();
        m.record_busy();
        m.record_batch(2);
        m.record_failed(2);
        let stats = m.snapshot();
        assert_eq!(stats.requests_received, 2);
        assert_eq!(stats.requests_served, 0);
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.p50_latency_us, 0);
        assert_eq!(stats.p99_latency_us, 0);
        assert_eq!(stats.mean_latency_us, 0.0);
        assert_eq!(stats.spikes_per_inference, 0.0);
        // Batch statistics are batch-derived, not served-derived.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.mean_batch_size, 2.0);
    }

    #[test]
    fn p99_lands_in_the_tail_bucket() {
        let m = Metrics::default();
        for _ in 0..99 {
            m.record_served(10, 0); // [8, 16) bucket
        }
        m.record_served(1_000_000, 0); // ~2^20 bucket
        let stats = m.snapshot();
        assert_eq!(stats.p50_latency_us, 16);
        assert!(stats.p99_latency_us <= 16);
        // The single outlier only shows up beyond p99.
        let m2 = Metrics::default();
        for _ in 0..50 {
            m2.record_served(10, 0);
        }
        for _ in 0..50 {
            m2.record_served(1_000_000, 0);
        }
        assert!(m2.snapshot().p99_latency_us > 1_000_000);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let m = Metrics::default();
        m.record_received();
        m.record_batch(1);
        m.record_served(250, 42);
        let stats = m.snapshot();
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
