//! Serving observability: sharded counters, log-linear latency histograms,
//! per-stage percentiles and the flight recorder.
//!
//! Every hot-path record lands in the recording worker's **own shard** —
//! `Relaxed` atomics for counters/histograms, an uncontended per-worker
//! mutex for the batch-size histogram and the flight recorder — so workers
//! never contend with each other on metrics. Shards are aggregated only in
//! [`Metrics::snapshot`], on the stats-scrape path. (The previous design
//! funnelled every request through one `Mutex<MetricsInner>`.)
//!
//! Latencies use the log-linear histograms of `nrsnn-obs`: reported
//! p50/p99/p999 are upper bounds within ~3% of the true order statistic
//! (the old octave buckets could overshoot by almost 2x); means stay exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
// nrsnn-lint: allow(forbidden-api) -- Instant anchors the process epoch
// exactly once, in MetricsEpoch::new; every later stamp derives from the
// obs MonotonicClock against that anchor.
use std::time::Instant;

use nrsnn_obs::{
    FlightRecorder, MonotonicClock, RecorderConfig, ShardedCounter, ShardedHistogram, Stage,
    TraceRecord,
};
use serde::{DeError, Deserialize, Serialize, Value};

/// Flight-recorder sizing: per worker, the last `RECENT_TRACES` request
/// timelines plus up to `OUTLIER_TRACES` retained slow/failed outliers.
const RECENT_TRACES: usize = 256;
const OUTLIER_TRACES: usize = 32;
/// A successful request at least this slow is retained as an outlier.
const SLOW_TRACE_NS: u64 = 100_000_000; // 100 ms

/// Sharded, thread-safe metrics sink of one server.
///
/// Shard layout: one shard per batcher worker (indices `0..workers`) plus
/// one extra *submit shard* (index `workers`) taken by the submission path
/// (received/busy counts under the queue lock) and the [`Drop`] safety net
/// of stranded requests — neither of which runs on a worker thread.
#[derive(Debug)]
pub(crate) struct Metrics {
    clock: MonotonicClock,
    tracing: bool,
    /// Next trace id to hand out; ids start at 1 so `0` can mean "tracing
    /// off" in replies.
    next_trace_id: AtomicU64,
    workers: usize,
    received: ShardedCounter,
    rejected_busy: ShardedCounter,
    failed: ShardedCounter,
    batches: ShardedCounter,
    total_spikes: ShardedCounter,
    /// End-to-end latency in µs; its count is the served-request count.
    latency_us: ShardedHistogram,
    /// Per-stage durations in ns, indexed by [`Stage::code`].
    stage_ns: Vec<ShardedHistogram>,
    /// Per-worker batch-size tallies (`tally[s]` = batches of size `s`);
    /// uncontended single-writer mutexes, merged and zero-head-trimmed at
    /// snapshot time.
    batch_sizes: Vec<Mutex<Vec<u64>>>,
    recorder: FlightRecorder,
}

impl Metrics {
    pub(crate) fn new(workers: usize, tracing: bool) -> Metrics {
        let workers = workers.max(1);
        let shards = workers + 1;
        Metrics {
            clock: MonotonicClock::new(),
            tracing,
            next_trace_id: AtomicU64::new(1),
            workers,
            received: ShardedCounter::new(shards),
            rejected_busy: ShardedCounter::new(shards),
            failed: ShardedCounter::new(shards),
            batches: ShardedCounter::new(shards),
            total_spikes: ShardedCounter::new(shards),
            latency_us: ShardedHistogram::new(shards),
            stage_ns: Stage::ALL
                .iter()
                .map(|_| ShardedHistogram::new(shards))
                .collect(),
            batch_sizes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            recorder: FlightRecorder::new(RecorderConfig {
                shards: workers,
                recent_capacity: if tracing { RECENT_TRACES } else { 0 },
                outlier_capacity: if tracing { OUTLIER_TRACES } else { 0 },
                slow_threshold_ns: SLOW_TRACE_NS,
            }),
        }
    }

    /// The shard the submission path and drop safety net record into.
    fn submit_shard(&self) -> usize {
        self.workers
    }

    /// Whether per-request tracing (stage spans + flight recorder) is on.
    pub(crate) fn tracing(&self) -> bool {
        self.tracing
    }

    /// Hands out the next server-unique trace id (starting at 1).
    pub(crate) fn next_trace_id(&self) -> u64 {
        // ORDERING: Relaxed — fetch_add is already atomic, so ids are
        // unique; no other memory is published alongside the counter.
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds between the metrics epoch and `at` (saturating).
    pub(crate) fn ns_since_epoch(&self, at: Instant) -> u64 {
        self.clock.ns_since_epoch(at)
    }

    /// The flight recorder holding recent request timelines.
    pub(crate) fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Records one finished request timeline into the recording worker's
    /// recorder shard. Allocation-free after warm-up.
    pub(crate) fn record_trace(&self, worker: usize, trace: &TraceRecord) {
        self.recorder.record(worker, trace);
    }

    pub(crate) fn record_received(&self) {
        self.received.incr(self.submit_shard());
    }

    pub(crate) fn record_busy(&self) {
        self.rejected_busy.incr(self.submit_shard());
    }

    pub(crate) fn record_failed(&self, requests: u64) {
        self.failed.add(self.submit_shard(), requests);
    }

    pub(crate) fn record_batch(&self, worker: usize, size: usize) {
        self.batches.incr(worker);
        // UNWRAP: lock poisoning — a recorder panicked mid-tally; stats are already suspect.
        let mut tally = self.batch_sizes[worker].lock().expect("batch-size lock");
        if tally.len() <= size {
            tally.resize(size + 1, 0);
        }
        tally[size] += 1;
    }

    pub(crate) fn record_served(&self, worker: usize, latency_us: u64, spikes: u64) {
        self.latency_us.record(worker, latency_us);
        self.total_spikes.add(worker, spikes);
    }

    /// Records one stage span duration into the worker's per-stage
    /// histogram.
    pub(crate) fn record_stage(&self, worker: usize, stage: Stage, duration_ns: u64) {
        self.stage_ns[stage.code() as usize].record(worker, duration_ns);
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        // Aggregate the shards once, here on the scrape path — the record
        // paths above never see each other.
        let latency = self.latency_us.snapshot();
        // One shared zero-traffic guard for every served-derived statistic:
        // before any request is served, percentiles, means and ratios are
        // all well-defined zeros.
        let served = latency.count();
        let per_served = |total: u64| -> f64 {
            if served == 0 {
                0.0
            } else {
                total as f64 / served as f64
            }
        };

        // Merge the per-worker batch-size tallies, then trim the zero head
        // (sizes below the smallest executed batch — including the size-0
        // slot that can never occur) into `batch_size_offset`.  Invariant:
        // the trimmed histogram is empty, or its first and last entries are
        // both nonzero.
        let mut merged: Vec<u64> = Vec::new();
        for shard in &self.batch_sizes {
            // UNWRAP: lock poisoning — same batch-size-lock argument as `record_batch`.
            let tally = shard.lock().expect("batch-size lock");
            if tally.len() > merged.len() {
                merged.resize(tally.len(), 0);
            }
            for (size, &count) in tally.iter().enumerate() {
                merged[size] += count;
            }
        }
        let batched_requests: u64 = merged
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        let first_nonzero = merged.iter().position(|&c| c != 0);
        let (batch_size_offset, batch_size_histogram) = match first_nonzero {
            Some(first) => (first as u64, merged.split_off(first)),
            None => (0, Vec::new()),
        };

        let batches = self.batches.total();
        let stage_latency_ns = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let hist = self.stage_ns[stage.code() as usize].snapshot();
                if hist.count() == 0 {
                    return None;
                }
                Some(StageLatency {
                    stage: stage.as_str().to_string(),
                    p50_ns: hist.value_at_quantile(0.50),
                    p99_ns: hist.value_at_quantile(0.99),
                })
            })
            .collect();

        ServerStats {
            requests_received: self.received.total(),
            requests_served: served,
            rejected_busy: self.rejected_busy.total(),
            failed: self.failed.total(),
            batches,
            batch_size_histogram,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            p50_latency_us: latency.value_at_quantile(0.50),
            p99_latency_us: latency.value_at_quantile(0.99),
            mean_latency_us: latency.mean(),
            total_spikes: self.total_spikes.total(),
            spikes_per_inference: per_served(self.total_spikes.total()),
            batch_size_offset,
            p999_latency_us: latency.value_at_quantile(0.999),
            stage_latency_ns,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(1, true)
    }
}

/// p50/p99 of one pipeline stage, in nanoseconds (stage durations are
/// often sub-microsecond, so µs granularity would collapse them to zero).
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// Stage name (`"queue_wait"`, `"encode"`, … — see the span taxonomy
    /// in docs/ARCHITECTURE.md).
    pub stage: String,
    /// Median stage duration (ns, log-linear upper bound within ~3%).
    pub p50_ns: u64,
    /// 99th-percentile stage duration (ns, same precision).
    pub p99_ns: u64,
}

/// A point-in-time snapshot of the server's counters, as returned by the
/// `stats` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Validly-addressed submits, whether admitted or rejected for
    /// backpressure: at quiescence
    /// `requests_received == requests_served + failed + rejected_busy`.
    pub requests_received: u64,
    /// Requests answered successfully.
    pub requests_served: u64,
    /// Requests rejected with [`crate::ServeError::Busy`] (backpressure).
    pub rejected_busy: u64,
    /// Requests that failed after being queued.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// `batch_size_histogram[i]` = number of executed batches of size
    /// `batch_size_offset + i`.  The zero head below the smallest executed
    /// batch is trimmed at snapshot time: the histogram is either empty or
    /// has nonzero first and last entries.
    pub batch_size_histogram: Vec<u64>,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Median end-to-end latency (µs; log-linear bucket upper bound,
    /// within ~3% of the true order statistic).
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end latency (µs, same precision).
    pub p99_latency_us: u64,
    /// Exact mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Total spikes transmitted across all served inferences.
    pub total_spikes: u64,
    /// Mean spikes per served inference.
    pub spikes_per_inference: f64,
    /// Batch size of `batch_size_histogram[0]` (0 when no batches ran).
    pub batch_size_offset: u64,
    /// 99.9th-percentile end-to-end latency (µs, same precision as p50).
    pub p999_latency_us: u64,
    /// Per-stage p50/p99 durations for every stage that recorded at least
    /// one span (empty when tracing is disabled or pre-traffic).
    pub stage_latency_ns: Vec<StageLatency>,
}

impl Serialize for StageLatency {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("stage".to_string(), self.stage.to_value()),
            ("p50_ns".to_string(), self.p50_ns.to_value()),
            ("p99_ns".to_string(), self.p99_ns.to_value()),
        ])
    }
}

impl Deserialize for StageLatency {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("stage latency missing field {key:?}")))
        };
        Ok(StageLatency {
            stage: String::from_value(field("stage")?)?,
            p50_ns: u64::from_value(field("p50_ns")?)?,
            p99_ns: u64::from_value(field("p99_ns")?)?,
        })
    }
}

impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "requests_received".to_string(),
                self.requests_received.to_value(),
            ),
            (
                "requests_served".to_string(),
                self.requests_served.to_value(),
            ),
            ("rejected_busy".to_string(), self.rejected_busy.to_value()),
            ("failed".to_string(), self.failed.to_value()),
            ("batches".to_string(), self.batches.to_value()),
            (
                "batch_size_histogram".to_string(),
                self.batch_size_histogram.to_value(),
            ),
            (
                "mean_batch_size".to_string(),
                self.mean_batch_size.to_value(),
            ),
            ("p50_latency_us".to_string(), self.p50_latency_us.to_value()),
            ("p99_latency_us".to_string(), self.p99_latency_us.to_value()),
            (
                "mean_latency_us".to_string(),
                self.mean_latency_us.to_value(),
            ),
            ("total_spikes".to_string(), self.total_spikes.to_value()),
            (
                "spikes_per_inference".to_string(),
                self.spikes_per_inference.to_value(),
            ),
            (
                "batch_size_offset".to_string(),
                self.batch_size_offset.to_value(),
            ),
            (
                "p999_latency_us".to_string(),
                self.p999_latency_us.to_value(),
            ),
            (
                "stage_latency_ns".to_string(),
                self.stage_latency_ns.to_value(),
            ),
        ])
    }
}

impl Deserialize for ServerStats {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("stats missing field {key:?}")))
        };
        Ok(ServerStats {
            requests_received: u64::from_value(field("requests_received")?)?,
            requests_served: u64::from_value(field("requests_served")?)?,
            rejected_busy: u64::from_value(field("rejected_busy")?)?,
            failed: u64::from_value(field("failed")?)?,
            batches: u64::from_value(field("batches")?)?,
            batch_size_histogram: Vec::<u64>::from_value(field("batch_size_histogram")?)?,
            mean_batch_size: f64::from_value(field("mean_batch_size")?)?,
            p50_latency_us: u64::from_value(field("p50_latency_us")?)?,
            p99_latency_us: u64::from_value(field("p99_latency_us")?)?,
            mean_latency_us: f64::from_value(field("mean_latency_us")?)?,
            total_spikes: u64::from_value(field("total_spikes")?)?,
            spikes_per_inference: f64::from_value(field("spikes_per_inference")?)?,
            // The three observability fields are additive (introduced after
            // the first stats consumers shipped): absent fields decode to
            // their zero values so older snapshots keep round-tripping.
            batch_size_offset: match value.get("batch_size_offset") {
                Some(v) => u64::from_value(v)?,
                None => 0,
            },
            p999_latency_us: match value.get("p999_latency_us") {
                Some(v) => u64::from_value(v)?,
                None => 0,
            },
            stage_latency_ns: match value.get("stage_latency_ns") {
                Some(v) => Vec::<StageLatency>::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_traffic() {
        let m = Metrics::default();
        for _ in 0..10 {
            m.record_received();
        }
        m.record_batch(0, 4);
        m.record_batch(0, 6);
        for i in 0..10u64 {
            m.record_served(0, 100 + i, 50);
        }
        m.record_busy();
        let stats = m.snapshot();
        assert_eq!(stats.requests_received, 10);
        assert_eq!(stats.requests_served, 10);
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.mean_batch_size, 5.0);
        // Zero head trimmed: sizes 0..=3 disappear into the offset.
        assert_eq!(stats.batch_size_offset, 4);
        assert_eq!(stats.batch_size_histogram, vec![1, 0, 1]);
        assert_eq!(stats.total_spikes, 500);
        assert_eq!(stats.spikes_per_inference, 50.0);
        // The log-linear buckets are exact to within 1/32 (~3%): latencies
        // of 100..110 µs report percentiles inside [100, 113], not the old
        // octave ceiling of 128.
        assert!(
            (100..=113).contains(&stats.p50_latency_us),
            "p50 {}",
            stats.p50_latency_us
        );
        assert!((100..=113).contains(&stats.p99_latency_us));
        assert!((100..=113).contains(&stats.p999_latency_us));
        assert!(stats.p50_latency_us <= stats.p99_latency_us);
        assert!(stats.p99_latency_us <= stats.p999_latency_us);
        assert!((stats.mean_latency_us - 104.5).abs() < 1e-9);
    }

    /// The shards really are independent sinks: traffic recorded through
    /// different worker shards (and the submit shard) aggregates to one
    /// coherent snapshot.
    #[test]
    fn shards_aggregate_only_at_snapshot() {
        let m = Metrics::new(3, true);
        m.record_received(); // submit shard
        m.record_batch(0, 1);
        m.record_batch(2, 3);
        m.record_served(0, 10, 5);
        m.record_served(1, 20, 5);
        m.record_served(2, 30, 5);
        m.record_failed(1);
        let stats = m.snapshot();
        assert_eq!(stats.requests_served, 3);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.total_spikes, 15);
        assert_eq!(stats.batch_size_offset, 1);
        assert_eq!(stats.batch_size_histogram, vec![1, 0, 1]);
        assert!((stats.mean_latency_us - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mean_batch_size_counts_batched_requests_even_when_they_fail() {
        let m = Metrics::default();
        m.record_batch(0, 8); // all 8 requests of this batch later fail
        m.record_failed(8);
        m.record_batch(0, 4);
        for _ in 0..4 {
            m.record_served(0, 10, 1);
        }
        let stats = m.snapshot();
        assert_eq!(stats.mean_batch_size, 6.0); // (8 + 4) / 2, not 4 / 2
    }

    /// A stats request before any traffic must return well-defined zeros in
    /// **every** field — no phantom bucket ceilings from clamped ranks, no
    /// NaNs from zero denominators.
    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let stats = Metrics::default().snapshot();
        assert_eq!(stats.requests_received, 0);
        assert_eq!(stats.requests_served, 0);
        assert_eq!(stats.rejected_busy, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.batches, 0);
        assert!(stats.batch_size_histogram.is_empty());
        assert_eq!(stats.batch_size_offset, 0);
        assert_eq!(stats.mean_batch_size, 0.0);
        assert_eq!(stats.p50_latency_us, 0);
        assert_eq!(stats.p99_latency_us, 0);
        assert_eq!(stats.p999_latency_us, 0);
        assert_eq!(stats.mean_latency_us.to_bits(), 0.0f64.to_bits());
        assert_eq!(stats.total_spikes, 0);
        assert_eq!(stats.spikes_per_inference.to_bits(), 0.0f64.to_bits());
        assert!(stats.stage_latency_ns.is_empty());
    }

    /// Receiving (or bouncing) requests without serving any must still keep
    /// the served-derived statistics at zero: the percentile path and the
    /// mean path share one guard.
    #[test]
    fn received_but_unserved_traffic_keeps_served_statistics_zero() {
        let m = Metrics::default();
        m.record_received();
        m.record_received();
        m.record_busy();
        m.record_batch(0, 2);
        m.record_failed(2);
        let stats = m.snapshot();
        assert_eq!(stats.requests_received, 2);
        assert_eq!(stats.requests_served, 0);
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.p50_latency_us, 0);
        assert_eq!(stats.p99_latency_us, 0);
        assert_eq!(stats.p999_latency_us, 0);
        assert_eq!(stats.mean_latency_us, 0.0);
        assert_eq!(stats.spikes_per_inference, 0.0);
        // Batch statistics are batch-derived, not served-derived.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.mean_batch_size, 2.0);
    }

    #[test]
    fn tail_percentiles_separate_the_outliers() {
        let m = Metrics::default();
        for _ in 0..99 {
            m.record_served(0, 10, 0);
        }
        m.record_served(0, 1_000_000, 0);
        let stats = m.snapshot();
        assert_eq!(stats.p50_latency_us, 10); // exact below 32
        assert!(stats.p99_latency_us <= 10);
        // The single 1-in-100 outlier shows up at p999 but not p99.
        assert!(stats.p999_latency_us >= 1_000_000);
        let m2 = Metrics::default();
        for _ in 0..50 {
            m2.record_served(0, 10, 0);
        }
        for _ in 0..50 {
            m2.record_served(0, 1_000_000, 0);
        }
        assert!(m2.snapshot().p99_latency_us >= 1_000_000);
    }

    /// The trimmed batch histogram invariant: empty, or first and last
    /// entries nonzero, with `batch_size_offset` mapping index 0 back to a
    /// real size.
    #[test]
    fn batch_histogram_trims_its_zero_head() {
        let m = Metrics::default();
        assert!(m.snapshot().batch_size_histogram.is_empty());
        m.record_batch(0, 7);
        m.record_batch(0, 9);
        let stats = m.snapshot();
        assert_eq!(stats.batch_size_offset, 7);
        assert_eq!(stats.batch_size_histogram, vec![1, 0, 1]);
        assert_ne!(*stats.batch_size_histogram.first().unwrap(), 0);
        assert_ne!(*stats.batch_size_histogram.last().unwrap(), 0);
        // Reconstructed sizes drive the mean: (7 + 9) / 2.
        assert_eq!(stats.mean_batch_size, 8.0);
        // A size-1 batch grows the head back down to offset 1 (size 0 can
        // never occur, so the offset never reaches 0 once traffic exists).
        m.record_batch(0, 1);
        let stats = m.snapshot();
        assert_eq!(stats.batch_size_offset, 1);
        assert_eq!(stats.batch_size_histogram.len(), 9);
    }

    #[test]
    fn stage_latencies_appear_per_recorded_stage() {
        let m = Metrics::new(2, true);
        for _ in 0..10 {
            m.record_stage(0, Stage::Encode, 1_000);
            m.record_stage(1, Stage::Simulate, 50_000);
        }
        m.record_stage(1, Stage::Simulate, 5_000_000);
        let stats = m.snapshot();
        assert_eq!(stats.stage_latency_ns.len(), 2);
        let encode = &stats.stage_latency_ns[0];
        assert_eq!(encode.stage, "encode");
        assert!(
            (1_000..=1_032).contains(&encode.p50_ns),
            "{}",
            encode.p50_ns
        );
        let simulate = &stats.stage_latency_ns[1];
        assert_eq!(simulate.stage, "simulate");
        assert!(simulate.p50_ns < 52_000);
        assert!(simulate.p99_ns >= 5_000_000);
    }

    #[test]
    fn trace_ids_are_unique_and_start_at_one() {
        let m = Metrics::default();
        assert!(m.tracing());
        assert_eq!(m.next_trace_id(), 1);
        assert_eq!(m.next_trace_id(), 2);
        let off = Metrics::new(1, false);
        assert!(!off.tracing());
    }

    #[test]
    fn stats_round_trip_through_json() {
        let m = Metrics::default();
        m.record_received();
        m.record_batch(0, 1);
        m.record_served(0, 250, 42);
        m.record_stage(0, Stage::QueueWait, 125_000);
        let stats = m.snapshot();
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    /// Backward compatibility: a pre-observability stats JSON (no offset,
    /// p999 or stage map) still decodes, with the new fields at their zero
    /// values.
    #[test]
    fn legacy_stats_json_still_decodes() {
        let legacy = r#"{
            "requests_received": 3, "requests_served": 2, "rejected_busy": 0,
            "failed": 1, "batches": 2, "batch_size_histogram": [0, 2],
            "mean_batch_size": 1.0, "p50_latency_us": 128,
            "p99_latency_us": 256, "mean_latency_us": 100.5,
            "total_spikes": 84, "spikes_per_inference": 42.0
        }"#;
        let stats: ServerStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(stats.requests_served, 2);
        assert_eq!(stats.batch_size_offset, 0);
        assert_eq!(stats.p999_latency_us, 0);
        assert!(stats.stage_latency_ns.is_empty());
    }
}
