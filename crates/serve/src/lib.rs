//! # nrsnn-serve
//!
//! The inference-serving subsystem of the NRSNN reproduction: a std-only,
//! long-lived service that accepts concurrent classification requests,
//! coalesces them into batched simulations on the allocation-free engine
//! from `nrsnn-snn`, and reports latency/throughput/spike metrics.
//!
//! The paper targets energy-efficient SNN *inference* on deployed
//! neuromorphic substrates; this crate supplies the request/response
//! machinery such a deployment needs around the simulator:
//!
//! * **[`ModelRegistry`]** — named, warm [`ServedModel`]s (converted
//!   network + coding + noise transform + weight scaling), loadable from
//!   serialized [`ModelSpec`] JSON files whose parameters reuse the
//!   `NetworkWeights` container from `nrsnn-dnn`;
//! * **dynamic batcher** — a bounded queue ([`ServeError::Busy`]
//!   backpressure, nothing dropped silently) drained by a
//!   [`nrsnn_runtime::WorkerPool`]; each worker owns one reusable
//!   `SimWorkspace` and turns the same-model requests it claims into one
//!   batched simulation call (see [`ServerConfig`] for the window/size
//!   policy);
//! * **front-ends** — the in-process [`Client`] and a
//!   [`std::net::TcpListener`] endpoint speaking newline-delimited JSON
//!   ([`protocol`]), with graceful [`Server::shutdown`];
//! * **metrics** — [`ServerStats`] (requests served, batch-size histogram,
//!   p50/p99/p999 latency, per-stage latency, spikes per inference) via
//!   [`Client::stats`] or the wire-level `stats` request, aggregated from
//!   per-worker sharded sinks only at snapshot time;
//! * **tracing** — every reply carries a trace id resolving to a per-stage
//!   timeline ([`RequestTrace`]) in a preallocated flight recorder, fetched
//!   via [`Client::trace`] or the wire-level `trace` request (slow and
//!   failed requests are retained as outliers).
//!
//! ## Determinism contract
//!
//! A request is simulated with a fresh RNG seeded
//! `derive_seed(model.master_seed, request.seed)` — a pure function of the
//! model and the request.  The reply's logits are therefore **byte-identical**
//! to the offline single-threaded `SnnNetwork::simulate_with` path with the
//! same derived seed, regardless of batch companions, queue order or worker
//! count.
//!
//! ## Example
//!
//! ```
//! use nrsnn_serve::{ModelRegistry, NoiseSpec, ServedModel, Server, ServerConfig};
//! use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
//! use nrsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), nrsnn_serve::ServeError> {
//! let network = SnnNetwork::new(vec![SnnLayer::Linear {
//!     weights: Tensor::eye(2),
//!     bias: Tensor::zeros(&[2]),
//! }])
//! .map_err(|e| nrsnn_serve::ServeError::Model(e.to_string()))?;
//! let mut registry = ModelRegistry::new();
//! registry.insert(ServedModel::new(
//!     "demo",
//!     network,
//!     CodingKind::Rate,
//!     CodingConfig::new(32, 1.0),
//!     NoiseSpec::Clean,
//!     1.0,
//!     0,
//! )?)?;
//!
//! let server = Server::start(registry, ServerConfig::default())?;
//! let client = server.client();
//! let reply = client.infer("demo", &[0.9, 0.1], 42)?;
//! assert_eq!(reply.predicted, 0);
//! assert_eq!(client.stats().requests_served, 1);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod batcher;
pub mod binary;
mod error;
mod metrics;
mod model;
pub mod protocol;
mod registry;
mod server;

pub use batcher::ServerConfig;
pub use error::ServeError;
pub use metrics::{ServerStats, StageLatency};
pub use model::{LayerSpec, ModelSpec, NoiseSpec, ServedModel};
pub use protocol::{InferenceReply, Request, RequestTrace, Response, TraceSpan};
pub use registry::ModelRegistry;
pub use server::{Client, Server, TcpClient, RETRY_BUDGET};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
