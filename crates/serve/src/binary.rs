//! Lossless conversions between the serve-side protocol/model types and
//! their `nrsnn-wire` mirrors.
//!
//! `nrsnn-wire` cannot depend on this crate (the dependency points the
//! other way), so it carries its own `Frame`/`StatsBody`/`ModelRecord`
//! mirrors; every conversion here is total in the encode direction and
//! bit-preserving in both (logits/weights keep their IEEE bits, seeds keep
//! all 64 bits).  The determinism contract does not change: a reply is a
//! function of model, input and seed — never of the wire format that
//! carried it.

use nrsnn_obs::{KernelPath, Stage};
use nrsnn_wire::{
    Frame, LayerDesc, ModelRecord, NoiseDesc, StageLatencyBody, StatsBody, TraceBody,
    TraceSpanBody, TRACE_NO_LAYER,
};

use crate::metrics::StageLatency;
use crate::protocol::{InferenceReply, Request, RequestTrace, Response, TraceSpan};
use crate::{LayerSpec, ModelSpec, NoiseSpec, ServeError, ServerStats};

/// Converts a client request into its wire frame.
pub fn request_to_frame(request: &Request) -> Frame {
    match request {
        Request::Infer { model, seed, input } => Frame::InferRequest {
            model: model.clone(),
            seed: *seed,
            input: input.clone(),
        },
        Request::Stats => Frame::StatsRequest,
        Request::ListModels => Frame::ListModelsRequest,
        Request::Ping => Frame::PingRequest,
        Request::Trace { last } => Frame::TraceRequest {
            last: u32::try_from(*last).unwrap_or(u32::MAX),
        },
    }
}

/// Converts a decoded wire frame into a client request.
///
/// # Errors
/// [`ServeError::InvalidRequest`] if the frame is a reply type (the server
/// only accepts request frames on its listening side).
pub fn frame_to_request(frame: Frame) -> crate::Result<Request> {
    match frame {
        Frame::InferRequest { model, seed, input } => Ok(Request::Infer { model, seed, input }),
        Frame::StatsRequest => Ok(Request::Stats),
        Frame::ListModelsRequest => Ok(Request::ListModels),
        Frame::PingRequest => Ok(Request::Ping),
        Frame::TraceRequest { last } => Ok(Request::Trace {
            last: last as usize,
        }),
        other => Err(ServeError::InvalidRequest(format!(
            "expected a request frame, got tag 0x{:02X}",
            other.tag()
        ))),
    }
}

/// Converts a server response into its wire frame.
pub fn response_to_frame(response: &Response) -> Frame {
    match response {
        Response::Infer(reply) => Frame::InferReply {
            model: reply.model.clone(),
            predicted: reply.predicted as u64,
            logits: reply.logits.clone(),
            total_spikes: reply.total_spikes as u64,
            latency_us: reply.latency_us,
            trace_id: reply.trace_id,
        },
        Response::Stats(stats) => Frame::StatsReply(stats_to_body(stats)),
        Response::Models(models) => Frame::ModelsReply(models.clone()),
        Response::Pong => Frame::PongReply,
        Response::Trace(traces) => Frame::TraceReply(traces.iter().map(trace_to_body).collect()),
        Response::Error { code, message } => Frame::ErrorReply {
            code: code.clone(),
            message: message.clone(),
        },
    }
}

/// Converts a decoded wire frame into a server response.
///
/// # Errors
/// [`ServeError::Io`] if the frame is a request type or carries counters
/// that do not fit this platform's `usize` (a malformed response means the
/// transport, not the request, is broken — mirroring
/// [`crate::protocol::decode_response`]).
pub fn frame_to_response(frame: Frame) -> crate::Result<Response> {
    let narrow = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| ServeError::Io(format!("{what} {v} does not fit usize")))
    };
    match frame {
        Frame::InferReply {
            model,
            predicted,
            logits,
            total_spikes,
            latency_us,
            trace_id,
        } => Ok(Response::Infer(InferenceReply {
            model,
            predicted: narrow(predicted, "predicted index")?,
            logits,
            total_spikes: narrow(total_spikes, "spike count")?,
            latency_us,
            trace_id,
        })),
        Frame::StatsReply(body) => Ok(Response::Stats(body_to_stats(body))),
        Frame::ModelsReply(models) => Ok(Response::Models(models)),
        Frame::PongReply => Ok(Response::Pong),
        Frame::TraceReply(traces) => Ok(Response::Trace(
            traces.into_iter().map(body_to_trace).collect(),
        )),
        Frame::ErrorReply { code, message } => Ok(Response::Error { code, message }),
        other => Err(ServeError::Io(format!(
            "expected a reply frame, got tag 0x{:02X}",
            other.tag()
        ))),
    }
}

/// Mirrors a metrics snapshot onto the wire.
pub fn stats_to_body(stats: &ServerStats) -> StatsBody {
    StatsBody {
        requests_received: stats.requests_received,
        requests_served: stats.requests_served,
        rejected_busy: stats.rejected_busy,
        failed: stats.failed,
        batches: stats.batches,
        batch_size_histogram: stats.batch_size_histogram.clone(),
        mean_batch_size: stats.mean_batch_size,
        p50_latency_us: stats.p50_latency_us,
        p99_latency_us: stats.p99_latency_us,
        mean_latency_us: stats.mean_latency_us,
        total_spikes: stats.total_spikes,
        spikes_per_inference: stats.spikes_per_inference,
        batch_size_offset: stats.batch_size_offset,
        p999_latency_us: stats.p999_latency_us,
        stage_latency_ns: stats
            .stage_latency_ns
            .iter()
            .map(|entry| StageLatencyBody {
                stage: entry.stage.clone(),
                p50_ns: entry.p50_ns,
                p99_ns: entry.p99_ns,
            })
            .collect(),
    }
}

/// Reconstructs a metrics snapshot from the wire.
pub fn body_to_stats(body: StatsBody) -> ServerStats {
    ServerStats {
        requests_received: body.requests_received,
        requests_served: body.requests_served,
        rejected_busy: body.rejected_busy,
        failed: body.failed,
        batches: body.batches,
        batch_size_histogram: body.batch_size_histogram,
        mean_batch_size: body.mean_batch_size,
        p50_latency_us: body.p50_latency_us,
        p99_latency_us: body.p99_latency_us,
        mean_latency_us: body.mean_latency_us,
        total_spikes: body.total_spikes,
        spikes_per_inference: body.spikes_per_inference,
        batch_size_offset: body.batch_size_offset,
        p999_latency_us: body.p999_latency_us,
        stage_latency_ns: body
            .stage_latency_ns
            .into_iter()
            .map(|entry| StageLatency {
                stage: entry.stage,
                p50_ns: entry.p50_ns,
                p99_ns: entry.p99_ns,
            })
            .collect(),
    }
}

/// Mirrors one recorded timeline onto the wire.  Stage and kernel names
/// compress to the `nrsnn-obs` taxonomy codes; a name outside the taxonomy
/// (which cannot be produced by this server) maps to an out-of-range code
/// and resurfaces as an empty stage name on decode.
pub fn trace_to_body(trace: &RequestTrace) -> TraceBody {
    TraceBody {
        trace_id: trace.trace_id,
        model: trace.model.clone(),
        seed: trace.seed,
        worker: trace.worker,
        start_ns: trace.start_ns,
        end_ns: trace.end_ns,
        ok: trace.ok,
        backend: trace.backend.clone(),
        spans: trace
            .spans
            .iter()
            .map(|span| TraceSpanBody {
                stage: Stage::from_name(&span.stage).map_or(u8::MAX, |s| s.code()),
                layer: span.layer.unwrap_or(TRACE_NO_LAYER),
                start_ns: span.start_ns,
                end_ns: span.end_ns,
                kernel: match span.kernel.as_deref() {
                    Some("sparse") => KernelPath::Sparse.code(),
                    Some("dense") => KernelPath::Dense.code(),
                    _ => KernelPath::None.code(),
                },
                density: span.density,
            })
            .collect(),
        dropped_spans: trace.dropped_spans,
    }
}

/// Reconstructs one recorded timeline from the wire.
pub fn body_to_trace(body: TraceBody) -> RequestTrace {
    RequestTrace {
        trace_id: body.trace_id,
        model: body.model,
        seed: body.seed,
        worker: body.worker,
        start_ns: body.start_ns,
        end_ns: body.end_ns,
        ok: body.ok,
        backend: body.backend,
        spans: body
            .spans
            .into_iter()
            .map(|span| TraceSpan {
                stage: Stage::from_code(span.stage)
                    .map_or_else(String::new, |s| s.as_str().to_string()),
                layer: (span.layer != TRACE_NO_LAYER).then_some(span.layer),
                start_ns: span.start_ns,
                end_ns: span.end_ns,
                kernel: KernelPath::from_code(span.kernel)
                    .and_then(|k| k.as_str())
                    .map(str::to_string),
                density: span.density,
            })
            .collect(),
        dropped_spans: body.dropped_spans,
    }
}

fn noise_to_desc(noise: &NoiseSpec) -> NoiseDesc {
    match noise {
        NoiseSpec::Clean => NoiseDesc::Clean,
        NoiseSpec::Deletion(p) => NoiseDesc::Deletion(*p),
        NoiseSpec::Jitter(sigma) => NoiseDesc::Jitter(*sigma),
        NoiseSpec::Composite(stages) => {
            NoiseDesc::Composite(stages.iter().map(noise_to_desc).collect())
        }
    }
}

fn desc_to_noise(desc: NoiseDesc) -> NoiseSpec {
    match desc {
        NoiseDesc::Clean => NoiseSpec::Clean,
        NoiseDesc::Deletion(p) => NoiseSpec::Deletion(p),
        NoiseDesc::Jitter(sigma) => NoiseSpec::Jitter(sigma),
        NoiseDesc::Composite(stages) => {
            NoiseSpec::Composite(stages.into_iter().map(desc_to_noise).collect())
        }
    }
}

fn layer_to_desc(layer: &LayerSpec) -> LayerDesc {
    match *layer {
        LayerSpec::Linear { out, input } => LayerDesc::Linear { out, input },
        LayerSpec::Conv {
            out_channels,
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        } => LayerDesc::Conv {
            out_channels,
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        },
        LayerSpec::AvgPool {
            channels,
            in_height,
            in_width,
            window,
            stride,
        } => LayerDesc::AvgPool {
            channels,
            in_height,
            in_width,
            window,
            stride,
        },
    }
}

fn desc_to_layer(desc: LayerDesc) -> LayerSpec {
    match desc {
        LayerDesc::Linear { out, input } => LayerSpec::Linear { out, input },
        LayerDesc::Conv {
            out_channels,
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        } => LayerSpec::Conv {
            out_channels,
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        },
        LayerDesc::AvgPool {
            channels,
            in_height,
            in_width,
            window,
            stride,
        } => LayerSpec::AvgPool {
            channels,
            in_height,
            in_width,
            window,
            stride,
        },
    }
}

/// Mirrors a model specification onto the on-disk record.
pub fn spec_to_record(spec: &ModelSpec) -> ModelRecord {
    ModelRecord {
        name: spec.name.clone(),
        coding: spec.coding,
        time_steps: spec.time_steps,
        threshold: spec.threshold,
        ttfs_tau_fraction: spec.ttfs_tau_fraction,
        scaling: spec.scaling,
        noise: noise_to_desc(&spec.noise),
        master_seed: spec.master_seed,
        layers: spec.layers.iter().map(layer_to_desc).collect(),
        weights: spec.weights.clone(),
    }
}

/// Reconstructs a model specification from an on-disk record.
pub fn record_to_spec(record: ModelRecord) -> ModelSpec {
    ModelSpec {
        name: record.name,
        coding: record.coding,
        time_steps: record.time_steps,
        threshold: record.threshold,
        ttfs_tau_fraction: record.ttfs_tau_fraction,
        scaling: record.scaling,
        noise: desc_to_noise(record.noise),
        master_seed: record.master_seed,
        layers: record.layers.into_iter().map(desc_to_layer).collect(),
        weights: record.weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
    use nrsnn_tensor::Tensor;

    fn sample_spec() -> ModelSpec {
        let network = SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::from_vec(vec![-0.0, 1.5e-42, f32::MAX, 0.25], &[2, 2]).unwrap(),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap();
        ModelSpec::from_network(
            "conv-demo",
            &network,
            CodingKind::Ttas(5),
            &CodingConfig::new(96, 1.0),
            NoiseSpec::Composite(vec![NoiseSpec::Deletion(0.35), NoiseSpec::Jitter(1.5)]),
            0.5,
            (1u64 << 60) + 99,
        )
    }

    #[test]
    fn requests_and_responses_round_trip_through_frames() {
        let requests = [
            Request::Infer {
                model: "m".to_string(),
                seed: u64::MAX - 1,
                input: vec![-0.0, 0.5],
            },
            Request::Stats,
            Request::ListModels,
            Request::Ping,
            Request::Trace { last: 8 },
        ];
        for request in requests {
            let back = frame_to_request(request_to_frame(&request)).unwrap();
            assert_eq!(back, request);
        }
        let responses = [
            Response::Infer(InferenceReply {
                model: "m".to_string(),
                predicted: 3,
                logits: vec![-0.0, f32::MIN_POSITIVE / 2.0],
                total_spikes: 77,
                latency_us: 901,
                trace_id: u64::MAX - 9,
            }),
            Response::Models(vec!["a".to_string()]),
            Response::Pong,
            Response::Trace(vec![RequestTrace {
                trace_id: 5,
                model: "m".to_string(),
                seed: u64::MAX - 2,
                worker: 1,
                start_ns: 100,
                end_ns: 9_100,
                ok: true,
                backend: "avx2".to_string(),
                spans: vec![
                    TraceSpan {
                        stage: "queue_wait".to_string(),
                        layer: None,
                        start_ns: 100,
                        end_ns: 900,
                        kernel: None,
                        density: 0.0,
                    },
                    TraceSpan {
                        stage: "simulate".to_string(),
                        layer: Some(2),
                        start_ns: 900,
                        end_ns: 9_100,
                        kernel: Some("dense".to_string()),
                        density: 0.75,
                    },
                ],
                dropped_spans: 0,
            }]),
            Response::Error {
                code: "busy".to_string(),
                message: "server busy".to_string(),
            },
        ];
        for response in responses {
            let back = frame_to_response(response_to_frame(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn stats_mirror_is_field_complete() {
        let stats = ServerStats {
            requests_received: 1,
            requests_served: 2,
            rejected_busy: 3,
            failed: 4,
            batches: 5,
            batch_size_histogram: vec![6, 7],
            mean_batch_size: 8.5,
            p50_latency_us: 9,
            p99_latency_us: 10,
            mean_latency_us: 11.25,
            total_spikes: 12,
            spikes_per_inference: 13.5,
            batch_size_offset: 14,
            p999_latency_us: 15,
            stage_latency_ns: vec![StageLatency {
                stage: "encode".to_string(),
                p50_ns: 16,
                p99_ns: 17,
            }],
        };
        assert_eq!(body_to_stats(stats_to_body(&stats)), stats);
    }

    #[test]
    fn every_stage_and_kernel_name_survives_the_code_mapping() {
        for stage in Stage::ALL {
            let span = TraceSpan {
                stage: stage.as_str().to_string(),
                layer: Some(0),
                start_ns: 0,
                end_ns: 1,
                kernel: Some("sparse".to_string()),
                density: 0.5,
            };
            let trace = RequestTrace {
                trace_id: 1,
                model: "m".to_string(),
                seed: 0,
                worker: 0,
                start_ns: 0,
                end_ns: 1,
                ok: false,
                backend: "scalar".to_string(),
                spans: vec![span],
                dropped_spans: 3,
            };
            assert_eq!(body_to_trace(trace_to_body(&trace)), trace);
        }
    }

    #[test]
    fn reply_frames_are_rejected_as_requests_and_vice_versa() {
        assert!(frame_to_request(Frame::PongReply).is_err());
        assert!(frame_to_response(Frame::PingRequest).is_err());
    }

    #[test]
    fn model_spec_round_trips_through_the_record() {
        let spec = sample_spec();
        let back = record_to_spec(spec_to_record(&spec));
        assert_eq!(back, spec);
        for (a, b) in back.weights.params.iter().zip(&spec.weights.params) {
            for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
