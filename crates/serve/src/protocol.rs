//! The newline-delimited JSON wire protocol of the TCP front-end.
//!
//! Every request and every response is one compact JSON object on one line,
//! discriminated by its `"type"` field:
//!
//! ```text
//! -> {"type":"infer","model":"fig7","seed":"42","input":[0.1,0.9]}
//! <- {"type":"infer","model":"fig7","predicted":1,"logits":[...],"total_spikes":512,"latency_us":830}
//! -> {"type":"stats"}
//! <- {"type":"stats","stats":{...}}
//! -> {"type":"list_models"}
//! <- {"type":"models","models":["fig7"]}
//! -> {"type":"ping"}
//! <- {"type":"pong"}
//! <- {"type":"error","code":"busy","message":"server busy: ..."}
//! ```
//!
//! Seeds travel as **strings** (`"seed":"42"`): JSON numbers are IEEE
//! doubles, which would silently truncate seeds above 2^53 and break the
//! bit-exact determinism contract.  Numeric seeds are still accepted on
//! input when they are strictly below 2^53 (2^53 itself is rejected even
//! though it is representable, because 2^53 + 1 collides with it after
//! parsing and could not be told apart).

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{ServeError, ServerStats};

/// Largest integer exactly representable as an IEEE double (2^53).
const MAX_EXACT_F64_INT: f64 = 9_007_199_254_740_992.0;

/// Encodes a seed for the wire (always a decimal string).
pub(crate) fn seed_to_value(seed: u64) -> Value {
    Value::String(seed.to_string())
}

/// Decodes a seed from either a decimal string or an exactly-representable
/// JSON number.
pub(crate) fn seed_from_value(value: &Value) -> std::result::Result<u64, DeError> {
    match value {
        Value::String(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| DeError::new(format!("seed {s:?} is not a u64"))),
        Value::Number(n) => {
            if n.fract() == 0.0 && (0.0..MAX_EXACT_F64_INT).contains(n) {
                Ok(*n as u64)
            } else {
                Err(DeError::new(format!(
                    "numeric seed {n} is not an exactly-representable non-negative integer; \
                     send seeds as strings"
                )))
            }
        }
        other => Err(DeError::new(format!("expected seed, got {other:?}"))),
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one input vector under the named model.
    Infer {
        /// Registry name of the model.
        model: String,
        /// Request seed; together with the model's master seed it fully
        /// determines the noise realisation (see
        /// [`nrsnn_runtime::derive_seed`]).
        seed: u64,
        /// Dense input vector (must match the model's input width).
        input: Vec<f32>,
    },
    /// Fetch the server's metrics snapshot.
    Stats,
    /// List the registered model names.
    ListModels,
    /// Liveness probe.
    Ping,
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Infer { model, seed, input } => Value::Object(vec![
                ("type".to_string(), "infer".to_value()),
                ("model".to_string(), model.to_value()),
                ("seed".to_string(), seed_to_value(*seed)),
                ("input".to_string(), input.to_value()),
            ]),
            Request::Stats => Value::Object(vec![("type".to_string(), "stats".to_value())]),
            Request::ListModels => {
                Value::Object(vec![("type".to_string(), "list_models".to_value())])
            }
            Request::Ping => Value::Object(vec![("type".to_string(), "ping".to_value())]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = value
            .get("type")
            .ok_or_else(|| DeError::new("request is missing \"type\""))
            .and_then(String::from_value)?;
        match kind.as_str() {
            "infer" => {
                let model = value
                    .get("model")
                    .ok_or_else(|| DeError::new("infer request is missing \"model\""))
                    .and_then(String::from_value)?;
                let seed = match value.get("seed") {
                    Some(v) => seed_from_value(v)?,
                    None => 0,
                };
                let input = value
                    .get("input")
                    .ok_or_else(|| DeError::new("infer request is missing \"input\""))
                    .and_then(Vec::<f32>::from_value)?;
                Ok(Request::Infer { model, seed, input })
            }
            "stats" => Ok(Request::Stats),
            "list_models" => Ok(Request::ListModels),
            "ping" => Ok(Request::Ping),
            other => Err(DeError::new(format!("unknown request type {other:?}"))),
        }
    }
}

/// The successful result of one inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReply {
    /// The model that served the request.
    pub model: String,
    /// Index of the winning output neuron.
    pub predicted: usize,
    /// Output-layer activations, bit-identical to the offline
    /// `simulate_with` path for the same `(master_seed, request seed)`.
    pub logits: Vec<f32>,
    /// Total spikes transmitted during the inference (after noise).
    pub total_spikes: usize,
    /// End-to-end latency observed by the server (queue + batch wait +
    /// simulation), in microseconds.
    pub latency_us: u64,
}

impl Serialize for InferenceReply {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("type".to_string(), "infer".to_value()),
            ("model".to_string(), self.model.to_value()),
            ("predicted".to_string(), self.predicted.to_value()),
            ("logits".to_string(), self.logits.to_value()),
            ("total_spikes".to_string(), self.total_spikes.to_value()),
            ("latency_us".to_string(), self.latency_us.to_value()),
        ])
    }
}

impl Deserialize for InferenceReply {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("infer reply missing field {key:?}")))
        };
        Ok(InferenceReply {
            model: String::from_value(field("model")?)?,
            predicted: usize::from_value(field("predicted")?)?,
            logits: Vec::<f32>::from_value(field("logits")?)?,
            total_spikes: usize::from_value(field("total_spikes")?)?,
            latency_us: u64::from_value(field("latency_us")?)?,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful inference.
    Infer(InferenceReply),
    /// Metrics snapshot.
    Stats(ServerStats),
    /// Registered model names.
    Models(Vec<String>),
    /// Liveness answer.
    Pong,
    /// Any failure, carrying the stable error code and a human-readable
    /// message.
    Error {
        /// Stable machine-readable code (see [`ServeError::code`]).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Wraps a [`ServeError`] for the wire.
    pub fn from_error(error: &ServeError) -> Response {
        Response::Error {
            code: error.code().to_string(),
            message: error.to_string(),
        }
    }

    /// Converts an error response back into a [`ServeError`] (best-effort:
    /// the structured payload of the original error is not on the wire, so
    /// at most the code survives — `"busy"` loses its capacity value, and
    /// `"input_mismatch"` degrades to [`ServeError::InvalidRequest`]
    /// because its model/width fields cannot be reconstructed from the
    /// message).
    pub fn into_result(self) -> std::result::Result<Response, ServeError> {
        match self {
            Response::Error { code, message } => Err(match code.as_str() {
                "busy" => ServeError::Busy { capacity: 0 },
                "shutting_down" => ServeError::ShuttingDown,
                "unknown_model" => ServeError::UnknownModel(message),
                "input_mismatch" => ServeError::InvalidRequest(message),
                "model" => ServeError::Model(message),
                "simulation" => ServeError::Simulation(message),
                "internal" => ServeError::Internal(message),
                "io" => ServeError::Io(message),
                _ => ServeError::InvalidRequest(message),
            }),
            other => Ok(other),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Infer(reply) => reply.to_value(),
            Response::Stats(stats) => Value::Object(vec![
                ("type".to_string(), "stats".to_value()),
                ("stats".to_string(), stats.to_value()),
            ]),
            Response::Models(models) => Value::Object(vec![
                ("type".to_string(), "models".to_value()),
                ("models".to_string(), models.to_value()),
            ]),
            Response::Pong => Value::Object(vec![("type".to_string(), "pong".to_value())]),
            Response::Error { code, message } => Value::Object(vec![
                ("type".to_string(), "error".to_value()),
                ("code".to_string(), code.to_value()),
                ("message".to_string(), message.to_value()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = value
            .get("type")
            .ok_or_else(|| DeError::new("response is missing \"type\""))
            .and_then(String::from_value)?;
        match kind.as_str() {
            "infer" => Ok(Response::Infer(InferenceReply::from_value(value)?)),
            "stats" => Ok(Response::Stats(ServerStats::from_value(
                value
                    .get("stats")
                    .ok_or_else(|| DeError::new("stats response missing \"stats\""))?,
            )?)),
            "models" => Ok(Response::Models(
                value
                    .get("models")
                    .ok_or_else(|| DeError::new("models response missing \"models\""))
                    .and_then(Vec::<String>::from_value)?,
            )),
            "pong" => Ok(Response::Pong),
            "error" => {
                let field = |key: &str| {
                    value
                        .get(key)
                        .ok_or_else(|| DeError::new(format!("error response missing {key:?}")))
                        .and_then(String::from_value)
                };
                Ok(Response::Error {
                    code: field("code")?,
                    message: field("message")?,
                })
            }
            other => Err(DeError::new(format!("unknown response type {other:?}"))),
        }
    }
}

/// Serializes a request or response as one newline-terminated wire line.
pub fn encode_line<T: Serialize>(value: &T) -> String {
    let mut line = serde_json::to_string(value).expect("shim serialization is infallible");
    line.push('\n');
    line
}

/// Parses one wire line into a request.
///
/// # Errors
/// Returns [`ServeError::InvalidRequest`] on malformed JSON or schema
/// mismatch.
pub fn decode_request(line: &str) -> crate::Result<Request> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::InvalidRequest(e.to_string()))
}

/// Parses one wire line into a response.
///
/// # Errors
/// Returns [`ServeError::Io`] on malformed JSON or schema mismatch (a
/// malformed response means the transport, not the request, is broken).
pub fn decode_response(line: &str) -> crate::Result<Response> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_request_round_trips_including_large_seeds() {
        let request = Request::Infer {
            model: "fig7".to_string(),
            seed: u64::MAX - 7,
            input: vec![0.25, -1.5, 0.0, 3.5e-8],
        };
        let line = encode_line(&request);
        assert!(line.ends_with('\n'));
        let back = decode_request(&line).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn numeric_seeds_are_accepted_when_exact() {
        let back = decode_request(r#"{"type":"infer","model":"m","seed":42,"input":[1]}"#).unwrap();
        assert_eq!(
            back,
            Request::Infer {
                model: "m".to_string(),
                seed: 42,
                input: vec![1.0],
            }
        );
        // Fractional or negative numeric seeds are rejected, not truncated.
        assert!(decode_request(r#"{"type":"infer","model":"m","seed":1.5,"input":[1]}"#).is_err());
        assert!(decode_request(r#"{"type":"infer","model":"m","seed":-3,"input":[1]}"#).is_err());
    }

    #[test]
    fn missing_seed_defaults_to_zero() {
        let back = decode_request(r#"{"type":"infer","model":"m","input":[0.5]}"#).unwrap();
        assert!(matches!(back, Request::Infer { seed: 0, .. }));
    }

    #[test]
    fn control_requests_round_trip() {
        for request in [Request::Stats, Request::ListModels, Request::Ping] {
            let back = decode_request(&encode_line(&request)).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn malformed_requests_are_invalid_request_errors() {
        assert!(matches!(
            decode_request("{not json"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            decode_request(r#"{"type":"warp"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn logits_survive_the_wire_bit_for_bit() {
        let logits = vec![
            0.1f32,
            -2.5e-7,
            f32::MIN_POSITIVE,
            123456.78,
            -0.000123,
            1.0 / 3.0,
        ];
        let reply = InferenceReply {
            model: "m".to_string(),
            predicted: 3,
            logits: logits.clone(),
            total_spikes: 99,
            latency_us: 1234,
        };
        let back = decode_response(&encode_line(&Response::Infer(reply))).unwrap();
        let Response::Infer(reply) = back else {
            panic!("expected infer response");
        };
        assert_eq!(reply.logits.len(), logits.len());
        for (a, b) in reply.logits.iter().zip(&logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn error_responses_map_back_to_typed_errors() {
        let wire = encode_line(&Response::from_error(&ServeError::Busy { capacity: 8 }));
        let back = decode_response(&wire).unwrap().into_result();
        assert!(matches!(back, Err(ServeError::Busy { .. })));
        let wire = encode_line(&Response::from_error(&ServeError::ShuttingDown));
        assert!(matches!(
            decode_response(&wire).unwrap().into_result(),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn pong_and_models_round_trip() {
        let back = decode_response(&encode_line(&Response::Pong)).unwrap();
        assert_eq!(back, Response::Pong);
        let models = Response::Models(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(decode_response(&encode_line(&models)).unwrap(), models);
    }
}
