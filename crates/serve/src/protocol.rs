//! The newline-delimited JSON wire protocol of the TCP front-end.
//!
//! Every request and every response is one compact JSON object on one line,
//! discriminated by its `"type"` field:
//!
//! ```text
//! -> {"type":"infer","model":"fig7","seed":"42","input":[0.1,0.9]}
//! <- {"type":"infer","model":"fig7","predicted":1,"logits":[...],"total_spikes":512,"latency_us":830}
//! -> {"type":"stats"}
//! <- {"type":"stats","stats":{...}}
//! -> {"type":"list_models"}
//! <- {"type":"models","models":["fig7"]}
//! -> {"type":"ping"}
//! <- {"type":"pong"}
//! -> {"type":"trace","last":16}
//! <- {"type":"trace","traces":[{"trace_id":"7","spans":[...],...}]}
//! <- {"type":"error","code":"busy","message":"server busy: ..."}
//! ```
//!
//! Seeds travel as **strings** (`"seed":"42"`): JSON numbers are IEEE
//! doubles, which would silently truncate seeds above 2^53 and break the
//! bit-exact determinism contract.  Numeric seeds are still accepted on
//! input when they are strictly below 2^53 (2^53 itself is rejected even
//! though it is representable, because 2^53 + 1 collides with it after
//! parsing and could not be told apart).

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{ServeError, ServerStats};

/// Largest integer exactly representable as an IEEE double (2^53).
const MAX_EXACT_F64_INT: f64 = 9_007_199_254_740_992.0;

/// Encodes a seed for the wire (always a decimal string).
pub(crate) fn seed_to_value(seed: u64) -> Value {
    Value::String(seed.to_string())
}

/// Decodes a seed from either a decimal string or an exactly-representable
/// JSON number.
pub(crate) fn seed_from_value(value: &Value) -> std::result::Result<u64, DeError> {
    match value {
        Value::String(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| DeError::new(format!("seed {s:?} is not a u64"))),
        Value::Number(n) => {
            if n.fract() == 0.0 && (0.0..MAX_EXACT_F64_INT).contains(n) {
                Ok(*n as u64)
            } else {
                Err(DeError::new(format!(
                    "numeric seed {n} is not an exactly-representable non-negative integer; \
                     send seeds as strings"
                )))
            }
        }
        other => Err(DeError::new(format!("expected seed, got {other:?}"))),
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one input vector under the named model.
    Infer {
        /// Registry name of the model.
        model: String,
        /// Request seed; together with the model's master seed it fully
        /// determines the noise realisation (see
        /// [`nrsnn_runtime::derive_seed`]).
        seed: u64,
        /// Dense input vector (must match the model's input width).
        input: Vec<f32>,
    },
    /// Fetch the server's metrics snapshot.
    Stats,
    /// List the registered model names.
    ListModels,
    /// Liveness probe.
    Ping,
    /// Fetch the most recent request timelines from the flight recorder.
    Trace {
        /// Maximum number of recent timelines to return (retained outliers
        /// — failed or slow requests — ride along on top of this budget).
        last: usize,
    },
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Infer { model, seed, input } => Value::Object(vec![
                ("type".to_string(), "infer".to_value()),
                ("model".to_string(), model.to_value()),
                ("seed".to_string(), seed_to_value(*seed)),
                ("input".to_string(), input.to_value()),
            ]),
            Request::Stats => Value::Object(vec![("type".to_string(), "stats".to_value())]),
            Request::ListModels => {
                Value::Object(vec![("type".to_string(), "list_models".to_value())])
            }
            Request::Ping => Value::Object(vec![("type".to_string(), "ping".to_value())]),
            Request::Trace { last } => Value::Object(vec![
                ("type".to_string(), "trace".to_value()),
                ("last".to_string(), last.to_value()),
            ]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = value
            .get("type")
            .ok_or_else(|| DeError::new("request is missing \"type\""))
            .and_then(String::from_value)?;
        match kind.as_str() {
            "infer" => {
                let model = value
                    .get("model")
                    .ok_or_else(|| DeError::new("infer request is missing \"model\""))
                    .and_then(String::from_value)?;
                let seed = match value.get("seed") {
                    Some(v) => seed_from_value(v)?,
                    None => 0,
                };
                let input = value
                    .get("input")
                    .ok_or_else(|| DeError::new("infer request is missing \"input\""))
                    .and_then(Vec::<f32>::from_value)?;
                Ok(Request::Infer { model, seed, input })
            }
            "stats" => Ok(Request::Stats),
            "list_models" => Ok(Request::ListModels),
            "ping" => Ok(Request::Ping),
            "trace" => {
                let last = match value.get("last") {
                    Some(v) => usize::from_value(v)?,
                    None => 16,
                };
                Ok(Request::Trace { last })
            }
            other => Err(DeError::new(format!("unknown request type {other:?}"))),
        }
    }
}

/// The successful result of one inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReply {
    /// The model that served the request.
    pub model: String,
    /// Index of the winning output neuron.
    pub predicted: usize,
    /// Output-layer activations, bit-identical to the offline
    /// `simulate_with` path for the same `(master_seed, request seed)`.
    pub logits: Vec<f32>,
    /// Total spikes transmitted during the inference (after noise).
    pub total_spikes: usize,
    /// End-to-end latency observed by the server (queue + batch wait +
    /// simulation), in microseconds.
    pub latency_us: u64,
    /// Server-unique id of this request's recorded timeline; resolve it
    /// with a `trace` request.  `0` means tracing was disabled.  Like
    /// `latency_us`, this is observability metadata and not part of the
    /// deterministic reply contract.
    pub trace_id: u64,
}

impl Serialize for InferenceReply {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("type".to_string(), "infer".to_value()),
            ("model".to_string(), self.model.to_value()),
            ("predicted".to_string(), self.predicted.to_value()),
            ("logits".to_string(), self.logits.to_value()),
            ("total_spikes".to_string(), self.total_spikes.to_value()),
            ("latency_us".to_string(), self.latency_us.to_value()),
            // Encoded like seeds: trace ids are u64 counters and must not
            // be rounded through an IEEE double.
            ("trace_id".to_string(), seed_to_value(self.trace_id)),
        ])
    }
}

impl Deserialize for InferenceReply {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("infer reply missing field {key:?}")))
        };
        Ok(InferenceReply {
            model: String::from_value(field("model")?)?,
            predicted: usize::from_value(field("predicted")?)?,
            logits: Vec::<f32>::from_value(field("logits")?)?,
            total_spikes: usize::from_value(field("total_spikes")?)?,
            latency_us: u64::from_value(field("latency_us")?)?,
            // Absent in pre-observability replies: default to "no trace".
            trace_id: match value.get("trace_id") {
                Some(v) => seed_from_value(v)?,
                None => 0,
            },
        })
    }
}

/// One stage of a recorded request timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Stage name (`queue_wait`, `batch_assembly`, `encode`, `noise`,
    /// `decode`, `simulate`, `reply_serialize`).
    pub stage: String,
    /// Network layer the stage ran on, when the stage is per-layer.
    pub layer: Option<u32>,
    /// Start of the span, nanoseconds since the server's monotonic epoch.
    pub start_ns: u64,
    /// End of the span, nanoseconds since the server's monotonic epoch.
    pub end_ns: u64,
    /// Kernel path taken by a `simulate` span (`"dense"` or `"sparse"`).
    pub kernel: Option<String>,
    /// Measured raster density that drove the kernel choice (0 for stages
    /// where density is not meaningful).
    pub density: f32,
}

impl Serialize for TraceSpan {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("stage".to_string(), self.stage.to_value()),
            ("start_ns".to_string(), seed_to_value(self.start_ns)),
            ("end_ns".to_string(), seed_to_value(self.end_ns)),
        ];
        if let Some(layer) = self.layer {
            fields.push(("layer".to_string(), layer.to_value()));
        }
        if let Some(kernel) = &self.kernel {
            fields.push(("kernel".to_string(), kernel.to_value()));
            fields.push(("density".to_string(), self.density.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for TraceSpan {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("trace span missing field {key:?}")))
        };
        Ok(TraceSpan {
            stage: String::from_value(field("stage")?)?,
            layer: match value.get("layer") {
                Some(v) => Some(u32::from_value(v)?),
                None => None,
            },
            start_ns: seed_from_value(field("start_ns")?)?,
            end_ns: seed_from_value(field("end_ns")?)?,
            kernel: match value.get("kernel") {
                Some(v) => Some(String::from_value(v)?),
                None => None,
            },
            density: match value.get("density") {
                Some(v) => f32::from_value(v)?,
                None => 0.0,
            },
        })
    }
}

/// One request's full recorded timeline, as returned by a `trace` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Server-unique id echoed in the request's inference reply.
    pub trace_id: u64,
    /// Name of the model that served the request.
    pub model: String,
    /// The request's seed.
    pub seed: u64,
    /// Index of the batcher worker that ran the request.
    pub worker: u32,
    /// Request admission time, nanoseconds since the server's monotonic
    /// epoch.
    pub start_ns: u64,
    /// Reply-ready time, nanoseconds since the server's monotonic epoch.
    pub end_ns: u64,
    /// Whether the request succeeded (failed requests are retained as
    /// outliers with an empty span list).
    pub ok: bool,
    /// SIMD backend active on the worker (`scalar`, `sse2`, `avx2`).
    pub backend: String,
    /// Per-stage breakdown tiling `start_ns..end_ns`.
    pub spans: Vec<TraceSpan>,
    /// Spans discarded because the preallocated span buffer was full
    /// (always 0 with the current fixed taxonomy).
    pub dropped_spans: u32,
}

impl RequestTrace {
    /// End-to-end duration of the request in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

impl Serialize for RequestTrace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("trace_id".to_string(), seed_to_value(self.trace_id)),
            ("model".to_string(), self.model.to_value()),
            ("seed".to_string(), seed_to_value(self.seed)),
            ("worker".to_string(), self.worker.to_value()),
            ("start_ns".to_string(), seed_to_value(self.start_ns)),
            ("end_ns".to_string(), seed_to_value(self.end_ns)),
            ("ok".to_string(), self.ok.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("spans".to_string(), self.spans.to_value()),
            ("dropped_spans".to_string(), self.dropped_spans.to_value()),
        ])
    }
}

impl Deserialize for RequestTrace {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError::new(format!("request trace missing field {key:?}")))
        };
        Ok(RequestTrace {
            trace_id: seed_from_value(field("trace_id")?)?,
            model: String::from_value(field("model")?)?,
            seed: seed_from_value(field("seed")?)?,
            worker: u32::from_value(field("worker")?)?,
            start_ns: seed_from_value(field("start_ns")?)?,
            end_ns: seed_from_value(field("end_ns")?)?,
            ok: bool::from_value(field("ok")?)?,
            backend: String::from_value(field("backend")?)?,
            spans: Vec::<TraceSpan>::from_value(field("spans")?)?,
            dropped_spans: u32::from_value(field("dropped_spans")?)?,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful inference.
    Infer(InferenceReply),
    /// Metrics snapshot.
    Stats(ServerStats),
    /// Registered model names.
    Models(Vec<String>),
    /// Liveness answer.
    Pong,
    /// Recent request timelines from the flight recorder, newest first.
    Trace(Vec<RequestTrace>),
    /// Any failure, carrying the stable error code and a human-readable
    /// message.
    Error {
        /// Stable machine-readable code (see [`ServeError::code`]).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Wraps a [`ServeError`] for the wire.
    pub fn from_error(error: &ServeError) -> Response {
        Response::Error {
            code: error.code().to_string(),
            message: error.to_string(),
        }
    }

    /// Converts an error response back into a [`ServeError`] (best-effort:
    /// the structured payload of the original error is not on the wire, so
    /// at most the code survives — `"busy"` loses its capacity value, and
    /// `"input_mismatch"` degrades to [`ServeError::InvalidRequest`]
    /// because its model/width fields cannot be reconstructed from the
    /// message).
    pub fn into_result(self) -> std::result::Result<Response, ServeError> {
        match self {
            Response::Error { code, message } => Err(match code.as_str() {
                "busy" => ServeError::Busy { capacity: 0 },
                "shutting_down" => ServeError::ShuttingDown,
                "unknown_model" => ServeError::UnknownModel(message),
                "input_mismatch" => ServeError::InvalidRequest(message),
                "model" => ServeError::Model(message),
                "simulation" => ServeError::Simulation(message),
                "internal" => ServeError::Internal(message),
                "io" => ServeError::Io(message),
                _ => ServeError::InvalidRequest(message),
            }),
            other => Ok(other),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Infer(reply) => reply.to_value(),
            Response::Stats(stats) => Value::Object(vec![
                ("type".to_string(), "stats".to_value()),
                ("stats".to_string(), stats.to_value()),
            ]),
            Response::Models(models) => Value::Object(vec![
                ("type".to_string(), "models".to_value()),
                ("models".to_string(), models.to_value()),
            ]),
            Response::Pong => Value::Object(vec![("type".to_string(), "pong".to_value())]),
            Response::Trace(traces) => Value::Object(vec![
                ("type".to_string(), "trace".to_value()),
                ("traces".to_string(), traces.to_value()),
            ]),
            Response::Error { code, message } => Value::Object(vec![
                ("type".to_string(), "error".to_value()),
                ("code".to_string(), code.to_value()),
                ("message".to_string(), message.to_value()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = value
            .get("type")
            .ok_or_else(|| DeError::new("response is missing \"type\""))
            .and_then(String::from_value)?;
        match kind.as_str() {
            "infer" => Ok(Response::Infer(InferenceReply::from_value(value)?)),
            "stats" => Ok(Response::Stats(ServerStats::from_value(
                value
                    .get("stats")
                    .ok_or_else(|| DeError::new("stats response missing \"stats\""))?,
            )?)),
            "models" => Ok(Response::Models(
                value
                    .get("models")
                    .ok_or_else(|| DeError::new("models response missing \"models\""))
                    .and_then(Vec::<String>::from_value)?,
            )),
            "pong" => Ok(Response::Pong),
            "trace" => Ok(Response::Trace(
                value
                    .get("traces")
                    .ok_or_else(|| DeError::new("trace response missing \"traces\""))
                    .and_then(Vec::<RequestTrace>::from_value)?,
            )),
            "error" => {
                let field = |key: &str| {
                    value
                        .get(key)
                        .ok_or_else(|| DeError::new(format!("error response missing {key:?}")))
                        .and_then(String::from_value)
                };
                Ok(Response::Error {
                    code: field("code")?,
                    message: field("message")?,
                })
            }
            other => Err(DeError::new(format!("unknown response type {other:?}"))),
        }
    }
}

/// Serializes a request or response as one newline-terminated wire line.
pub fn encode_line<T: Serialize>(value: &T) -> String {
    // UNWRAP: infallible — request/response types serialize to plain structs and enums the JSON shim always accepts.
    let mut line = serde_json::to_string(value).expect("shim serialization is infallible");
    line.push('\n');
    line
}

/// Parses one wire line into a request.
///
/// # Errors
/// Returns [`ServeError::InvalidRequest`] on malformed JSON or schema
/// mismatch.
pub fn decode_request(line: &str) -> crate::Result<Request> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::InvalidRequest(e.to_string()))
}

/// Parses one wire line into a response.
///
/// # Errors
/// Returns [`ServeError::Io`] on malformed JSON or schema mismatch (a
/// malformed response means the transport, not the request, is broken).
pub fn decode_response(line: &str) -> crate::Result<Response> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_request_round_trips_including_large_seeds() {
        let request = Request::Infer {
            model: "fig7".to_string(),
            seed: u64::MAX - 7,
            input: vec![0.25, -1.5, 0.0, 3.5e-8],
        };
        let line = encode_line(&request);
        assert!(line.ends_with('\n'));
        let back = decode_request(&line).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn numeric_seeds_are_accepted_when_exact() {
        let back = decode_request(r#"{"type":"infer","model":"m","seed":42,"input":[1]}"#).unwrap();
        assert_eq!(
            back,
            Request::Infer {
                model: "m".to_string(),
                seed: 42,
                input: vec![1.0],
            }
        );
        // Fractional or negative numeric seeds are rejected, not truncated.
        assert!(decode_request(r#"{"type":"infer","model":"m","seed":1.5,"input":[1]}"#).is_err());
        assert!(decode_request(r#"{"type":"infer","model":"m","seed":-3,"input":[1]}"#).is_err());
    }

    #[test]
    fn missing_seed_defaults_to_zero() {
        let back = decode_request(r#"{"type":"infer","model":"m","input":[0.5]}"#).unwrap();
        assert!(matches!(back, Request::Infer { seed: 0, .. }));
    }

    #[test]
    fn control_requests_round_trip() {
        for request in [
            Request::Stats,
            Request::ListModels,
            Request::Ping,
            Request::Trace { last: 32 },
        ] {
            let back = decode_request(&encode_line(&request)).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn trace_request_last_defaults_when_absent() {
        let back = decode_request(r#"{"type":"trace"}"#).unwrap();
        assert_eq!(back, Request::Trace { last: 16 });
    }

    #[test]
    fn malformed_requests_are_invalid_request_errors() {
        assert!(matches!(
            decode_request("{not json"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            decode_request(r#"{"type":"warp"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn logits_survive_the_wire_bit_for_bit() {
        let logits = vec![
            0.1f32,
            -2.5e-7,
            f32::MIN_POSITIVE,
            123456.78,
            -0.000123,
            1.0 / 3.0,
        ];
        let reply = InferenceReply {
            model: "m".to_string(),
            predicted: 3,
            logits: logits.clone(),
            total_spikes: 99,
            latency_us: 1234,
            trace_id: u64::MAX - 3,
        };
        let back = decode_response(&encode_line(&Response::Infer(reply.clone()))).unwrap();
        let Response::Infer(reply) = back else {
            panic!("expected infer response");
        };
        assert_eq!(reply.logits.len(), logits.len());
        for (a, b) in reply.logits.iter().zip(&logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Trace ids survive the wire exactly even above 2^53.
        assert_eq!(reply.trace_id, u64::MAX - 3);
    }

    #[test]
    fn pre_observability_infer_replies_still_decode() {
        // Replies serialized before trace_id existed must keep decoding,
        // defaulting to "no trace".
        let line = r#"{"type":"infer","model":"m","predicted":1,"logits":[0.5],"total_spikes":9,"latency_us":77}"#;
        let Response::Infer(reply) = decode_response(line).unwrap() else {
            panic!("expected infer response");
        };
        assert_eq!(reply.trace_id, 0);
        assert_eq!(reply.latency_us, 77);
    }

    #[test]
    fn trace_responses_round_trip_with_full_span_detail() {
        let traces = vec![RequestTrace {
            trace_id: 42,
            model: "fig7".to_string(),
            seed: u64::MAX - 1,
            worker: 3,
            start_ns: 1_000,
            end_ns: 9_000,
            ok: true,
            backend: "sse2".to_string(),
            spans: vec![
                TraceSpan {
                    stage: "queue_wait".to_string(),
                    layer: None,
                    start_ns: 1_000,
                    end_ns: 2_000,
                    kernel: None,
                    density: 0.0,
                },
                TraceSpan {
                    stage: "simulate".to_string(),
                    layer: Some(1),
                    start_ns: 2_000,
                    end_ns: 9_000,
                    kernel: Some("sparse".to_string()),
                    density: 0.125,
                },
            ],
            dropped_spans: 0,
        }];
        let response = Response::Trace(traces);
        let back = decode_response(&encode_line(&response)).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn error_responses_map_back_to_typed_errors() {
        let wire = encode_line(&Response::from_error(&ServeError::Busy { capacity: 8 }));
        let back = decode_response(&wire).unwrap().into_result();
        assert!(matches!(back, Err(ServeError::Busy { .. })));
        let wire = encode_line(&Response::from_error(&ServeError::ShuttingDown));
        assert!(matches!(
            decode_response(&wire).unwrap().into_result(),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn pong_and_models_round_trip() {
        let back = decode_response(&encode_line(&Response::Pong)).unwrap();
        assert_eq!(back, Response::Pong);
        let models = Response::Models(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(decode_response(&encode_line(&models)).unwrap(), models);
    }
}
