//! Error type of the serving subsystem.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong while loading models, submitting requests
/// or running the server.
///
/// The error is `Clone` on purpose: a batch-level failure must be fanned
/// out to every request waiting in that batch, and a wire error must be
/// serialisable into a response without consuming the original.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is full; the request was rejected, not
    /// queued (explicit backpressure — retry later).
    Busy {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The named model is not present in the registry.
    UnknownModel(String),
    /// The request's input width does not match the model's input layer.
    InputMismatch {
        /// The model that was addressed.
        model: String,
        /// Input width the model expects.
        expected: usize,
        /// Input width the request carried.
        actual: usize,
    },
    /// The request was malformed (bad JSON, missing fields, non-finite
    /// input values, …).
    InvalidRequest(String),
    /// A model file or model specification could not be loaded.
    Model(String),
    /// The simulation engine rejected the batch.
    Simulation(String),
    /// The server failed internally before answering (e.g. the batcher
    /// worker that claimed the request crashed).
    Internal(String),
    /// An I/O failure in the TCP front-end.
    Io(String),
}

impl ServeError {
    /// Stable machine-readable code used on the wire (`"busy"`, …).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Busy { .. } => "busy",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::InputMismatch { .. } => "input_mismatch",
            ServeError::InvalidRequest(_) => "invalid_request",
            ServeError::Model(_) => "model",
            ServeError::Simulation(_) => "simulation",
            ServeError::Internal(_) => "internal",
            ServeError::Io(_) => "io",
        }
    }

    /// Returns `true` if the request may simply be retried later
    /// (backpressure rather than a caller mistake).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Busy { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { capacity } => {
                write!(f, "server busy: queue capacity {capacity} exhausted")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::InputMismatch {
                model,
                expected,
                actual,
            } => write!(
                f,
                "model {model:?} expects {expected} inputs, request carried {actual}"
            ),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Model(msg) => write!(f, "model error: {msg}"),
            ServeError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal server error: {msg}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<nrsnn_snn::SnnError> for ServeError {
    fn from(e: nrsnn_snn::SnnError) -> Self {
        ServeError::Simulation(e.to_string())
    }
}

impl From<nrsnn_noise::NoiseError> for ServeError {
    fn from(e: nrsnn_noise::NoiseError) -> Self {
        ServeError::Model(e.to_string())
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ServeError::Busy { capacity: 4 },
            ServeError::ShuttingDown,
            ServeError::UnknownModel("m".into()),
            ServeError::InputMismatch {
                model: "m".into(),
                expected: 2,
                actual: 3,
            },
            ServeError::InvalidRequest("x".into()),
            ServeError::Model("x".into()),
            ServeError::Simulation("x".into()),
            ServeError::Internal("x".into()),
            ServeError::Io("x".into()),
        ];
        let codes: std::collections::HashSet<&str> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn only_busy_is_retryable() {
        assert!(ServeError::Busy { capacity: 1 }.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::UnknownModel("m".into()).is_retryable());
    }

    #[test]
    fn display_mentions_the_interesting_numbers() {
        let e = ServeError::InputMismatch {
            model: "fig7".into(),
            expected: 3072,
            actual: 784,
        };
        let text = e.to_string();
        assert!(text.contains("3072") && text.contains("784") && text.contains("fig7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
