//! The model registry: named, warm, servable models.
//!
//! The registry is populated before the server starts and is immutable
//! afterwards, so the hot path reads it without locks.  Models enter it
//! either fully built ([`ModelRegistry::insert`]) or from serialized
//! [`ModelSpec`]s ([`ModelRegistry::load_json`] / [`ModelRegistry::load_file`]),
//! whose parameters reuse the `NetworkWeights` container that trained DNNs
//! are persisted with.

use std::path::Path;
use std::sync::Arc;

use crate::{ModelSpec, Result, ServeError, ServedModel};

/// An ordered collection of uniquely named servable models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Vec<Arc<ServedModel>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Adds an already-built model.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] for a duplicate name.
    pub fn insert(&mut self, model: ServedModel) -> Result<()> {
        if self.index_of(&model.name).is_some() {
            return Err(ServeError::Model(format!(
                "duplicate model name {:?}",
                model.name
            )));
        }
        self.models.push(Arc::new(model));
        Ok(())
    }

    /// Builds and adds a model from its serializable specification.
    ///
    /// # Errors
    /// Propagates [`ModelSpec::build`] failures and duplicate names.
    pub fn register_spec(&mut self, spec: &ModelSpec) -> Result<()> {
        self.insert(spec.build()?)
    }

    /// Parses a JSON model file and registers it.
    ///
    /// # Errors
    /// Propagates parse, build and duplicate-name failures.
    pub fn load_json(&mut self, json: &str) -> Result<()> {
        self.register_spec(&ModelSpec::from_json(json)?)
    }

    /// Parses a binary (`NRSM`) model file image and registers it.
    ///
    /// # Errors
    /// Propagates decode, build and duplicate-name failures.
    pub fn load_binary(&mut self, bytes: &[u8]) -> Result<()> {
        self.register_spec(&ModelSpec::from_binary(bytes)?)
    }

    /// Reads a model file from disk and registers it, sniffing the format
    /// from the first byte: `N` (the `NRSM` magic) means binary, anything
    /// else is treated as JSON (a JSON spec always starts with `{`).
    ///
    /// # Errors
    /// Propagates I/O, parse, build and duplicate-name failures.
    pub fn load_file<P: AsRef<Path>>(&mut self, path: P) -> Result<()> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ServeError::Model(format!("read {}: {e}", path.as_ref().display())))?;
        if bytes.first() == Some(&b'N') {
            self.load_binary(&bytes)
        } else {
            let json = String::from_utf8(bytes).map_err(|e| {
                ServeError::Model(format!("{}: not UTF-8: {e}", path.as_ref().display()))
            })?;
            self.load_json(&json)
        }
    }

    /// Index of the named model, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name == name)
    }

    /// The named model, if registered.
    pub fn get(&self, name: &str) -> Option<&Arc<ServedModel>> {
        self.index_of(name).map(|i| &self.models[i])
    }

    /// The model at `index` (indices are stable once the server starts).
    pub fn model(&self, index: usize) -> &Arc<ServedModel> {
        &self.models[index]
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.models.iter().map(|m| m.name.clone()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseSpec;
    use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
    use nrsnn_tensor::Tensor;

    fn toy_model(name: &str) -> ServedModel {
        let network = SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::eye(2),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap();
        ServedModel::new(
            name,
            network,
            CodingKind::Rate,
            CodingConfig::new(32, 1.0),
            NoiseSpec::Clean,
            1.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn insert_lookup_and_names() {
        let mut registry = ModelRegistry::new();
        assert!(registry.is_empty());
        registry.insert(toy_model("a")).unwrap();
        registry.insert(toy_model("b")).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a", "b"]);
        assert_eq!(registry.index_of("b"), Some(1));
        assert!(registry.get("a").is_some());
        assert!(registry.get("missing").is_none());
        assert_eq!(registry.model(1).name, "b");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut registry = ModelRegistry::new();
        registry.insert(toy_model("a")).unwrap();
        assert!(matches!(
            registry.insert(toy_model("a")),
            Err(ServeError::Model(_))
        ));
    }

    #[test]
    fn loads_from_spec_json_and_file() {
        let spec = toy_model("json-model").to_spec();
        let mut registry = ModelRegistry::new();
        registry.load_json(&spec.to_json()).unwrap();
        assert!(registry.get("json-model").is_some());

        let dir = std::env::temp_dir().join("nrsnn_serve_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut on_disk = spec.clone();
        on_disk.name = "disk-model".to_string();
        std::fs::write(&path, on_disk.to_json()).unwrap();
        registry.load_file(&path).unwrap();
        assert!(registry.get("disk-model").is_some());
        std::fs::remove_file(&path).ok();

        assert!(matches!(
            registry.load_file(dir.join("missing.json")),
            Err(ServeError::Model(_))
        ));
        assert!(registry.load_json("{oops").is_err());
    }
}
