//! The server: worker lifecycle, the in-process [`Client`] and the TCP
//! front-end.
//!
//! ## Request lifecycle
//!
//! ```text
//! Client::infer / TCP line
//!   └─ submit: resolve model, validate width, bounded-queue admit
//!        ├─ queue full        -> ServeError::Busy (explicit rejection)
//!        └─ queued            -> batcher worker claims + coalesces
//!             └─ one simulate_batch_each per batch (warm SimWorkspace)
//!                  └─ per request: logits copied out, slot fulfilled,
//!                     metrics recorded
//! ```
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] is graceful: new submits are rejected with
//! [`ServeError::ShuttingDown`], already-queued requests are drained and
//! answered, TCP accept/connection threads are woken and joined, then the
//! worker pool is joined (propagating any worker panic).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nrsnn_runtime::WorkerPool;
use nrsnn_wire::{FrameHeader, FRAME_HEADER_LEN, FRAME_MAGIC};

use crate::batcher::{worker_loop, ServerCore};
use crate::binary::{frame_to_request, frame_to_response, request_to_frame, response_to_frame};
use crate::protocol::{
    decode_request, decode_response, encode_line, Request, RequestTrace, Response, TraceSpan,
};
use crate::{InferenceReply, ModelRegistry, Result, ServeError, ServerConfig, ServerStats};

/// How often a blocked TCP read re-checks the shutdown flag.
const TCP_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long the `infer_retrying` helpers keep retrying a
/// [`ServeError::Busy`] rejection before giving up and returning it: a
/// saturated server surfaces as a typed error, never as an infinite spin.
pub const RETRY_BUDGET: Duration = Duration::from_secs(5);

/// Pause between backpressure retries in the `infer_retrying` helpers.
const RETRY_BACKOFF: Duration = Duration::from_micros(200);

/// The shared retry loop behind both `infer_retrying` helpers: re-attempts
/// while the error is retryable and the [`RETRY_BUDGET`] deadline has not
/// passed, then returns the last error.
fn retry_while_busy<F>(mut attempt: F) -> Result<InferenceReply>
where
    F: FnMut() -> Result<InferenceReply>,
{
    // nrsnn-lint: allow(forbidden-api) -- client-side retry deadline; never
    // observable in replies or metrics.
    let deadline = std::time::Instant::now() + RETRY_BUDGET;
    loop {
        match attempt() {
            // nrsnn-lint: allow(forbidden-api) -- same retry deadline check.
            Err(e) if e.is_retryable() && std::time::Instant::now() < deadline => {
                // nrsnn-lint: allow(forbidden-api) -- bounded client backoff
                // (RETRY_BACKOFF) between busy retries; no waiter to signal.
                std::thread::sleep(RETRY_BACKOFF);
            }
            other => return other,
        }
    }
}

/// A running inference server: the warm model registry, the dynamic
/// batcher's worker pool and any number of TCP front-ends.
pub struct Server {
    core: Arc<ServerCore>,
    workers: Option<WorkerPool>,
    front_ends: Vec<TcpFrontEnd>,
}

impl Server {
    /// Starts the batcher workers over a registry of warm models.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] for an empty registry,
    /// [`ServeError::InvalidRequest`] for an invalid configuration
    /// (including an unknown `NRSNN_SIMD` backend override in the
    /// environment — validated eagerly here so a typo surfaces as a typed
    /// startup error instead of a panic in the first worker to touch a
    /// kernel) and [`ServeError::Io`] if worker threads cannot be spawned.
    pub fn start(registry: ModelRegistry, config: ServerConfig) -> Result<Server> {
        config.validate()?;
        // Resolve the SIMD backend once, up front: workers then inherit the
        // cached dispatch and can never hit the lazy-init panic path.
        let backend = nrsnn_tensor::simd::resolve_env()
            .map_err(|e| ServeError::InvalidRequest(e.to_string()))?;
        nrsnn_tensor::simd::set_backend(backend);
        if registry.is_empty() {
            return Err(ServeError::Model(
                "cannot start a server with no registered models".to_string(),
            ));
        }
        let core = Arc::new(ServerCore::new(registry, config));
        let spawned = {
            let core = Arc::clone(&core);
            WorkerPool::spawn("nrsnn-serve", config.effective_workers(), move |worker| {
                worker_loop(&core, worker)
            })
        };
        let workers = match spawned {
            Ok(workers) => workers,
            Err(e) => {
                // A partial spawn failure detaches the workers that did
                // start; signal shutdown so they exit instead of parking on
                // the queue condvar (and pinning the registry) forever.
                core.begin_shutdown();
                return Err(e.into());
            }
        };
        Ok(Server {
            core,
            workers: Some(workers),
            front_ends: Vec::new(),
        })
    }

    /// An in-process client handle (cheap to clone, usable from any
    /// thread).
    pub fn client(&self) -> Client {
        Client {
            core: Arc::clone(&self.core),
        }
    }

    /// Binds a TCP listener speaking the newline-delimited JSON protocol
    /// and starts its accept thread; returns the bound address (use port
    /// `0` for an ephemeral port).
    ///
    /// # Errors
    /// Returns [`ServeError::Io`] if binding fails.
    pub fn serve_tcp<A: ToSocketAddrs>(&mut self, addr: A) -> Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let core = Arc::clone(&self.core);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name(format!("nrsnn-serve-accept-{}", local_addr.port()))
                .spawn(move || {
                    for stream in listener.incoming() {
                        // ORDERING: SeqCst pairs with the SeqCst store in shutdown(); the
                        // flag is checked after waking, so a wake and a set flag can't
                        // reorder past each other and miss the stop.
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                let core = Arc::clone(&core);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::spawn(move || {
                                    handle_connection(&core, &stop, stream);
                                });
                                // Reap finished connections as we go so a
                                // long-lived server does not accumulate one
                                // dead JoinHandle per connection ever served.
                                // UNWRAP: lock poisoning — a connection thread panicked mid-reap; propagate.
                                let mut list = connections.lock().expect("connection list");
                                list.retain(|h| !h.is_finished());
                                list.push(handle);
                            }
                            // accept() errors are transient (ECONNABORTED,
                            // fd exhaustion, …): killing the listener would
                            // leave the server running but unreachable.
                            // Back off briefly and keep accepting; only the
                            // stop flag ends the loop.
                            // nrsnn-lint: allow(forbidden-api) -- accept()
                            // backoff: there is no event to wait on, only
                            // the OS retrying; bounded by TCP_POLL_INTERVAL.
                            Err(_) => std::thread::sleep(TCP_POLL_INTERVAL),
                        }
                    }
                })?
        };
        self.front_ends.push(TcpFrontEnd {
            addr: local_addr,
            stop,
            accept: Some(accept),
            connections,
        });
        Ok(local_addr)
    }

    /// Addresses of the active TCP front-ends.
    pub fn tcp_addrs(&self) -> Vec<SocketAddr> {
        self.front_ends.iter().map(|f| f.addr).collect()
    }

    /// The current metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.core.metrics.snapshot()
    }

    /// Number of requests currently waiting in the submission queue (not
    /// yet claimed by a batcher worker).
    pub fn queue_depth(&self) -> usize {
        self.core.queued()
    }

    /// Gracefully stops the server: rejects new requests, drains and
    /// answers everything already queued, then joins the front-end and
    /// worker threads.
    ///
    /// # Panics
    /// Re-raises the panic of a crashed worker (see
    /// [`WorkerPool::join`]).
    pub fn shutdown(mut self) {
        self.core.begin_shutdown();
        for front_end in std::mem::take(&mut self.front_ends) {
            front_end.stop();
        }
        if let Some(workers) = self.workers.take() {
            workers.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort signal so threads unblock if the server is dropped
        // without an explicit shutdown; handles not joined here.
        self.core.begin_shutdown();
        for front_end in &self.front_ends {
            front_end.signal();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.core.registry.names())
            .field("workers", &self.workers.as_ref().map(WorkerPool::threads))
            .field("tcp", &self.tcp_addrs())
            .finish()
    }
}

/// One bound TCP listener and its threads.
struct TcpFrontEnd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpFrontEnd {
    /// Raises the stop flag and pokes the listener awake.
    fn signal(&self) {
        // ORDERING: SeqCst pairs with the SeqCst loads in every worker and
        // listener loop; the strongest ordering keeps the stop protocol
        // obviously correct (shutdown is far off the hot path).
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `incoming`; a throwaway connection
        // makes it re-check the flag.  A wildcard bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so poke
        // through loopback instead.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            match target {
                SocketAddr::V4(_) => target.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => target.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect(target);
    }

    /// Signals, then joins the accept thread and every connection thread.
    fn stop(mut self) {
        self.signal();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // UNWRAP: lock poisoning — joining threads after a panic has nothing left to save.
        let handles = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Writes the whole buffer, honouring the stream's write timeout: partial
/// progress is tracked across timeouts (so framing survives), and the stop
/// flag is re-checked on every timeout so a client that never drains its
/// socket cannot block shutdown forever.  Returns `false` when the
/// connection should be closed.
fn write_all_polling(writer: &mut TcpStream, bytes: &[u8], stop: &AtomicBool) -> bool {
    let mut written = 0;
    while written < bytes.len() {
        match writer.write(&bytes[written..]) {
            Ok(0) => return false,
            Ok(n) => written += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ORDERING: SeqCst pairs with the SeqCst store in shutdown(); the
                // flag is checked after waking, so a wake and a set flag can't
                // reorder past each other and miss the stop.
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Serves one TCP connection until EOF, error or server shutdown.
///
/// The protocol is negotiated per connection by sniffing the first byte
/// without consuming it: [`FRAME_MAGIC`] selects the binary framing, and
/// anything else — in particular `{`, the first byte of every JSON
/// request — falls back to the newline-delimited JSON protocol.  A
/// connection never switches protocols after its first byte.
fn handle_connection(core: &ServerCore, stop: &AtomicBool, stream: TcpStream) {
    if stream.set_read_timeout(Some(TCP_POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(TCP_POLL_INTERVAL)).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Peek at the first byte: `fill_buf` does not consume, so whichever
    // protocol loop runs next still sees the byte.
    let first = loop {
        match reader.fill_buf() {
            Ok([]) => return, // closed before sending anything
            Ok(buf) => break buf[0],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ORDERING: SeqCst pairs with the SeqCst store in shutdown(); the
                // flag is checked after waking, so a wake and a set flag can't
                // reorder past each other and miss the stop.
                if stop.load(Ordering::SeqCst) || core.is_shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    };
    if first == FRAME_MAGIC {
        handle_binary_connection(core, stop, &mut reader, &mut writer);
    } else {
        handle_json_connection(core, stop, &mut reader, &mut writer);
    }
}

/// The JSON loop: one request line in, one response line out.
fn handle_json_connection(
    core: &ServerCore,
    stop: &AtomicBool,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) {
    // Lines are accumulated as raw bytes: unlike `read_line`, `read_until`
    // keeps everything already read in the buffer when the poll timeout
    // fires, even if the timeout split a multi-byte UTF-8 character.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                if !text.trim().is_empty() {
                    let response = process_line(core, &text);
                    if !write_all_polling(writer, encode_line(&response).as_bytes(), stop) {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Partial data stays in `line`; the next read appends the
                // rest of the request.
                // ORDERING: SeqCst pairs with the SeqCst store in shutdown(); the
                // flag is checked after waking, so a wake and a set flag can't
                // reorder past each other and miss the stop.
                if stop.load(Ordering::SeqCst) || core.is_shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Outcome of a polling read of an exact number of bytes.
enum ReadFull {
    /// The buffer was filled.
    Filled,
    /// EOF before the buffer was filled (a clean close when it lands on a
    /// frame boundary, a truncated frame otherwise — the connection closes
    /// either way, since a gone peer cannot be answered).
    Eof,
    /// Shutdown was signalled or the stream failed.
    Aborted,
}

/// Fills `buf` completely from `reader`, honouring the stream's read
/// timeout: partial progress is kept across timeouts, and the stop flag is
/// re-checked on every timeout (the binary-framing counterpart of the JSON
/// loop's `read_until` handling).
fn read_full_polling(
    core: &ServerCore,
    stop: &AtomicBool,
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
) -> ReadFull {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return ReadFull::Eof,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ORDERING: SeqCst pairs with the SeqCst store in shutdown(); the
                // flag is checked after waking, so a wake and a set flag can't
                // reorder past each other and miss the stop.
                if stop.load(Ordering::SeqCst) || core.is_shutting_down() {
                    return ReadFull::Aborted;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadFull::Aborted,
        }
    }
    ReadFull::Filled
}

/// Sends one response as a binary frame; returns `false` when the
/// connection should be closed.
fn write_response_frame(writer: &mut TcpStream, stop: &AtomicBool, response: &Response) -> bool {
    match nrsnn_wire::encode_frame(&response_to_frame(response)) {
        Ok(bytes) => write_all_polling(writer, &bytes, stop),
        Err(_) => false,
    }
}

/// The binary loop: one length-prefixed frame in, one frame out.
///
/// Malformed input is answered, never hung on and never panicked over:
/// a **header-level** fault (bad magic, unsupported version, oversized
/// length) means framing is lost and resynchronisation is impossible, so
/// the server sends one typed error frame and closes; a **payload-level**
/// fault (corrupt body, unknown tag, reply-typed frame) leaves the framing
/// intact, so the server answers with an error frame and keeps serving the
/// connection's subsequent requests.
fn handle_binary_connection(
    core: &ServerCore,
    stop: &AtomicBool,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) {
    loop {
        let mut header_bytes = [0u8; FRAME_HEADER_LEN];
        match read_full_polling(core, stop, reader, &mut header_bytes) {
            ReadFull::Filled => {}
            // EOF between frames is a clean close; EOF inside a header is
            // a truncated frame, but with the peer gone there is nobody
            // left to answer.
            ReadFull::Eof | ReadFull::Aborted => return,
        }
        let header = match FrameHeader::parse(&header_bytes) {
            Ok(header) => header,
            Err(e) => {
                let error = ServeError::InvalidRequest(e.to_string());
                write_response_frame(writer, stop, &Response::from_error(&error));
                return;
            }
        };
        // The header passed the MAX_FRAME_LEN cap, so this allocation is
        // bounded regardless of what the peer announced.
        let mut payload = vec![0u8; header.payload_len as usize];
        match read_full_polling(core, stop, reader, &mut payload) {
            ReadFull::Filled => {}
            ReadFull::Eof | ReadFull::Aborted => return,
        }
        let response = match nrsnn_wire::decode_payload(&payload)
            .map_err(|e| ServeError::InvalidRequest(e.to_string()))
            .and_then(frame_to_request)
        {
            Ok(request) => process_request(core, request),
            Err(e) => Response::from_error(&e),
        };
        if !write_response_frame(writer, stop, &response) {
            return;
        }
    }
}

/// Decodes and executes one request line (the connection thread blocks
/// while its inference request is in flight — pipelining happens across
/// connections, batching across requests).
fn process_line(core: &ServerCore, line: &str) -> Response {
    match decode_request(line) {
        Err(e) => Response::from_error(&e),
        Ok(request) => process_request(core, request),
    }
}

/// Executes one decoded request — shared by the JSON and binary loops, so
/// the reply is a function of the request alone, never of the wire format
/// that carried it.
fn process_request(core: &ServerCore, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(core.metrics.snapshot()),
        Request::ListModels => Response::Models(core.registry.names()),
        Request::Trace { last } => Response::Trace(fetch_traces(core, last)),
        Request::Infer { model, seed, input } => {
            match core
                .submit(&model, input, seed)
                .and_then(|slot| slot.wait())
            {
                Ok(reply) => Response::Infer(reply),
                Err(e) => Response::from_error(&e),
            }
        }
    }
}

/// Drains the flight recorder into wire-shaped timelines, resolving model
/// indices back to registry names (shared by the in-process client and both
/// wire front-ends).
fn fetch_traces(core: &ServerCore, last: usize) -> Vec<RequestTrace> {
    let names = core.registry.names();
    core.metrics
        .recorder()
        .recent(last)
        .iter()
        .map(|record| RequestTrace {
            trace_id: record.trace_id,
            model: names
                .get(record.model as usize)
                .cloned()
                .unwrap_or_default(),
            seed: record.seed,
            worker: record.worker,
            start_ns: record.start_ns,
            end_ns: record.end_ns,
            ok: record.ok,
            backend: record.backend.to_string(),
            spans: record
                .spans
                .iter()
                .map(|span| TraceSpan {
                    stage: span.stage.as_str().to_string(),
                    layer: span.layer,
                    start_ns: span.start_ns,
                    end_ns: span.end_ns,
                    kernel: span.kernel.as_str().map(str::to_string),
                    density: span.density,
                })
                .collect(),
            dropped_spans: record.dropped_spans,
        })
        .collect()
}

/// In-process client of a running [`Server`].
///
/// Requests submitted here enter the same bounded queue and dynamic
/// batcher as TCP requests, without serialization overhead.
#[derive(Clone)]
pub struct Client {
    core: Arc<ServerCore>,
}

impl Client {
    /// Classifies one input under the named model, blocking until the
    /// batcher answers.
    ///
    /// # Errors
    /// [`ServeError::Busy`] under backpressure (retryable),
    /// [`ServeError::UnknownModel`] / [`ServeError::InputMismatch`] for bad
    /// requests, [`ServeError::ShuttingDown`] during shutdown.
    pub fn infer(&self, model: &str, input: &[f32], seed: u64) -> Result<InferenceReply> {
        self.core.submit(model, input.to_vec(), seed)?.wait()
    }

    /// [`Client::infer`] that retries (with a tiny backoff) while the
    /// server reports backpressure, for up to [`RETRY_BUDGET`].
    ///
    /// # Errors
    /// Every non-retryable error immediately; the last
    /// [`ServeError::Busy`] once the retry budget is exhausted.
    pub fn infer_retrying(&self, model: &str, input: &[f32], seed: u64) -> Result<InferenceReply> {
        retry_while_busy(|| self.infer(model, input, seed))
    }

    /// The server's current metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.core.metrics.snapshot()
    }

    /// Number of requests currently waiting in the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.core.queued()
    }

    /// Registered model names.
    pub fn models(&self) -> Vec<String> {
        self.core.registry.names()
    }

    /// The last `last` request timelines from the flight recorder (newest
    /// first), plus any retained slow/failed outliers.  Empty when the
    /// server was started with tracing disabled.
    pub fn trace(&self, last: usize) -> Vec<RequestTrace> {
        fetch_traces(&self.core, last)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("models", &self.core.registry.names())
            .finish()
    }
}

/// Blocking TCP client of the front-end (used by the load generator, the
/// end-to-end tests and as a reference implementation for clients in other
/// languages).  [`TcpClient::connect`] speaks the newline-delimited JSON
/// protocol; [`TcpClient::connect_binary`] speaks the `nrsnn-wire` binary
/// framing.  Replies are bit-identical either way — the format is
/// negotiated per connection by the first byte the client sends.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl TcpClient {
    fn connect_with<A: ToSocketAddrs>(addr: A, binary: bool) -> Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
            writer,
            binary,
        })
    }

    /// Connects to a server's TCP front-end, speaking JSON.
    ///
    /// # Errors
    /// Returns [`ServeError::Io`] on connection failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpClient> {
        TcpClient::connect_with(addr, false)
    }

    /// Connects to a server's TCP front-end, speaking the binary framing
    /// (the server switches on the magic first byte of the first frame).
    ///
    /// # Errors
    /// Returns [`ServeError::Io`] on connection failure.
    pub fn connect_binary<A: ToSocketAddrs>(addr: A) -> Result<TcpClient> {
        TcpClient::connect_with(addr, true)
    }

    /// Returns `true` if this client speaks the binary framing.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Sends one request and reads the matching response (one JSON line or
    /// one binary frame, as negotiated at connect time).
    ///
    /// # Errors
    /// Returns [`ServeError::Io`] on transport failures or a malformed
    /// response.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        if self.binary {
            let bytes = nrsnn_wire::encode_frame(&request_to_frame(request))
                .map_err(|e| ServeError::Io(e.to_string()))?;
            self.writer.write_all(&bytes).map_err(ServeError::from)?;
            let frame = nrsnn_wire::read_frame(&mut self.reader)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            return frame_to_response(frame);
        }
        self.writer
            .write_all(encode_line(request).as_bytes())
            .map_err(ServeError::from)?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line).map_err(ServeError::from)?;
        if read == 0 {
            return Err(ServeError::Io("server closed the connection".to_string()));
        }
        decode_response(&line)
    }

    /// Classifies one input under the named model.
    ///
    /// # Errors
    /// Transport failures as [`ServeError::Io`]; server-side failures as
    /// their decoded typed error (e.g. [`ServeError::Busy`]).
    pub fn infer(&mut self, model: &str, input: &[f32], seed: u64) -> Result<InferenceReply> {
        let response = self.request(&Request::Infer {
            model: model.to_string(),
            seed,
            input: input.to_vec(),
        })?;
        match response.into_result()? {
            Response::Infer(reply) => Ok(reply),
            other => Err(ServeError::Io(format!(
                "expected an infer response, got {other:?}"
            ))),
        }
    }

    /// [`TcpClient::infer`] that retries while the server reports
    /// backpressure, for up to [`RETRY_BUDGET`].
    ///
    /// # Errors
    /// Every non-retryable error immediately; the last
    /// [`ServeError::Busy`] once the retry budget is exhausted.
    pub fn infer_retrying(
        &mut self,
        model: &str,
        input: &[f32],
        seed: u64,
    ) -> Result<InferenceReply> {
        retry_while_busy(|| self.infer(model, input, seed))
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    /// Transport failures as [`ServeError::Io`].
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.request(&Request::Stats)?.into_result()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ServeError::Io(format!(
                "expected a stats response, got {other:?}"
            ))),
        }
    }

    /// Lists the registered model names.
    ///
    /// # Errors
    /// Transport failures as [`ServeError::Io`].
    pub fn models(&mut self) -> Result<Vec<String>> {
        match self.request(&Request::ListModels)?.into_result()? {
            Response::Models(models) => Ok(models),
            other => Err(ServeError::Io(format!(
                "expected a models response, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport failures as [`ServeError::Io`].
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)?.into_result()? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Io(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the last `last` request timelines from the server's flight
    /// recorder (newest first), plus any retained slow/failed outliers.
    ///
    /// # Errors
    /// Transport failures as [`ServeError::Io`].
    pub fn trace(&mut self, last: usize) -> Result<Vec<RequestTrace>> {
        match self.request(&Request::Trace { last })?.into_result()? {
            Response::Trace(traces) => Ok(traces),
            other => Err(ServeError::Io(format!(
                "expected a trace response, got {other:?}"
            ))),
        }
    }
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("binary", &self.binary)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseSpec, ServedModel};
    use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
    use nrsnn_tensor::Tensor;

    fn toy_registry() -> ModelRegistry {
        let network = SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2]).unwrap(),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap();
        let mut registry = ModelRegistry::new();
        registry
            .insert(
                ServedModel::new(
                    "toy",
                    network,
                    CodingKind::Rate,
                    CodingConfig::new(32, 1.0),
                    NoiseSpec::Deletion(0.2),
                    1.0,
                    99,
                )
                .unwrap(),
            )
            .unwrap();
        registry
    }

    fn small_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            max_batch: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn start_rejects_empty_registry_and_bad_config() {
        assert!(matches!(
            Server::start(ModelRegistry::new(), ServerConfig::default()),
            Err(ServeError::Model(_))
        ));
        assert!(Server::start(
            toy_registry(),
            ServerConfig {
                max_batch: 0,
                ..ServerConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn stats_request_before_any_traffic_returns_well_defined_zeros() {
        let server = Server::start(toy_registry(), small_config()).unwrap();
        let stats = server.client().stats();
        assert_eq!(stats.requests_received, 0);
        assert_eq!(stats.requests_served, 0);
        assert_eq!(stats.p50_latency_us, 0);
        assert_eq!(stats.p99_latency_us, 0);
        assert_eq!(stats.mean_latency_us, 0.0);
        assert_eq!(stats.mean_batch_size, 0.0);
        assert_eq!(stats.spikes_per_inference, 0.0);
        server.shutdown();
    }

    #[test]
    fn in_process_round_trip_and_stats() {
        let server = Server::start(toy_registry(), small_config()).unwrap();
        let client = server.client();
        assert_eq!(client.models(), vec!["toy"]);
        let reply = client.infer("toy", &[0.9, 0.1], 5).unwrap();
        assert_eq!(reply.model, "toy");
        assert_eq!(reply.predicted, 0);
        assert_eq!(reply.logits.len(), 2);
        let stats = client.stats();
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.batches, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_in_process_clients_all_get_answers() {
        let server = Server::start(toy_registry(), small_config()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| {
                            client
                                .infer_retrying("toy", &[0.2, 0.8], (t * 8 + i) as u64)
                                .unwrap()
                                .predicted
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for thread in threads {
            let predictions = thread.join().unwrap();
            assert_eq!(predictions.len(), 8);
        }
        let stats = server.stats();
        assert_eq!(stats.requests_served, 32);
        assert_eq!(stats.failed, 0);
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let mut server = Server::start(toy_registry(), small_config()).unwrap();
        let addr = server.serve_tcp(("127.0.0.1", 0)).unwrap();
        assert_eq!(server.tcp_addrs(), vec![addr]);
        let mut client = TcpClient::connect(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(client.models().unwrap(), vec!["toy"]);
        let reply = client.infer("toy", &[0.1, 0.9], 3).unwrap();
        assert_eq!(reply.predicted, 1);
        let stats = client.stats().unwrap();
        assert_eq!(stats.requests_served, 1);
        server.shutdown();
    }

    #[test]
    fn tcp_errors_are_typed_on_the_client_side() {
        let mut server = Server::start(toy_registry(), small_config()).unwrap();
        let addr = server.serve_tcp(("127.0.0.1", 0)).unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        assert!(matches!(
            client.infer("missing", &[0.0, 0.0], 0),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            client.infer("toy", &[0.0], 0),
            Err(ServeError::InvalidRequest(_))
        ));
        // A malformed line gets an error response, not a hangup.
        client.writer.write_all(b"{broken\n").unwrap();
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let response = decode_response(&line).unwrap();
        assert!(matches!(response, Response::Error { .. }));
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_answers_queued_requests_and_rejects_new_ones() {
        let server = Server::start(toy_registry(), small_config()).unwrap();
        let client = server.client();
        let reply = client.infer("toy", &[0.8, 0.2], 1).unwrap();
        assert_eq!(reply.predicted, 0);
        server.shutdown();
        // The client outlives the server; new submits are refused, not hung.
        assert!(matches!(
            client.infer("toy", &[0.8, 0.2], 2),
            Err(ServeError::ShuttingDown)
        ));
    }
}
