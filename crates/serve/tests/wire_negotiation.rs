//! TCP front-end format negotiation and hostile-peer robustness.
//!
//! The server sniffs the first byte of each connection: the frame magic
//! selects the binary protocol, anything else falls back to line-delimited
//! JSON.  A malformed binary frame must be answered with a typed error
//! reply or a clean close — never a hang or a panic — and must not disturb
//! other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nrsnn_serve::{ModelRegistry, NoiseSpec, ServedModel, Server, ServerConfig, TcpClient};
use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
use nrsnn_tensor::Tensor;
use nrsnn_wire::{encode_frame, read_frame, Frame, FRAME_MAGIC, WIRE_VERSION};

const MODEL: &str = "nego-toy";

fn start_server() -> (Server, std::net::SocketAddr) {
    let network = SnnNetwork::new(vec![SnnLayer::Linear {
        weights: Tensor::eye(3),
        bias: Tensor::zeros(&[3]),
    }])
    .unwrap();
    let mut registry = ModelRegistry::new();
    registry
        .insert(
            ServedModel::new(
                MODEL,
                network,
                CodingKind::Rate,
                CodingConfig::new(32, 1.0),
                NoiseSpec::Clean,
                1.0,
                7,
            )
            .unwrap(),
        )
        .unwrap();
    let mut server = Server::start(
        registry,
        ServerConfig {
            workers: 1,
            max_batch: 4,
            batch_window: Duration::ZERO,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.serve_tcp(("127.0.0.1", 0)).unwrap();
    (server, addr)
}

fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    // A hostile-peer test must itself never hang: bound every read.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads frames until one is not busy/pressure related, so tests stay
/// robust if error policy ever adds throttling replies.
fn expect_error_frame(stream: &mut TcpStream) -> (String, String) {
    match read_frame(stream).expect("server should answer with a frame") {
        Frame::ErrorReply { code, message } => (code, message),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn malformed_payload_gets_error_reply_and_connection_survives() {
    let (server, addr) = start_server();
    let mut stream = raw_connect(addr);

    // A syntactically valid header carrying a garbage payload: the framing
    // is still intact, so the server must answer and keep the connection.
    let mut bad = vec![FRAME_MAGIC, WIRE_VERSION];
    bad.extend_from_slice(&4u32.to_le_bytes());
    bad.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    stream.write_all(&bad).unwrap();
    let (code, _) = expect_error_frame(&mut stream);
    assert!(!code.is_empty());

    // The same connection still serves well-formed requests afterwards.
    stream
        .write_all(&encode_frame(&Frame::PingRequest).unwrap())
        .unwrap();
    assert_eq!(read_frame(&mut stream).unwrap(), Frame::PongReply);
    stream
        .write_all(&encode_frame(&Frame::ListModelsRequest).unwrap())
        .unwrap();
    assert_eq!(
        read_frame(&mut stream).unwrap(),
        Frame::ModelsReply(vec![MODEL.to_string()])
    );
    server.shutdown();
}

#[test]
fn header_corruption_gets_error_then_clean_close() {
    let (server, addr) = start_server();

    // Unsupported version: framing is unrecoverable after this, so the
    // server sends one typed error and closes.
    let mut stream = raw_connect(addr);
    let mut bad = vec![FRAME_MAGIC, WIRE_VERSION + 1];
    bad.extend_from_slice(&1u32.to_le_bytes());
    bad.push(0x04);
    stream.write_all(&bad).unwrap();
    let (code, message) = expect_error_frame(&mut stream);
    assert_eq!(code, "invalid_request", "got {code}: {message}");
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "expected close");

    // Oversized length prefix: rejected against the documented cap without
    // allocating, then the connection closes cleanly.
    let mut stream = raw_connect(addr);
    let mut bad = vec![FRAME_MAGIC, WIRE_VERSION];
    bad.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&bad).unwrap();
    let (code, message) = expect_error_frame(&mut stream);
    assert_eq!(code, "invalid_request", "got {code}: {message}");
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "expected close");

    server.shutdown();
}

#[test]
fn hostile_connection_does_not_disturb_its_neighbours() {
    let (server, addr) = start_server();

    // A binary client and a JSON client do real work while a hostile peer
    // sends corruption; every honest request must still complete.
    let hostile = std::thread::spawn(move || {
        let mut stream = raw_connect(addr);
        let mut bad = vec![FRAME_MAGIC, WIRE_VERSION + 9];
        bad.extend_from_slice(&8u32.to_le_bytes());
        stream.write_all(&bad).ok();
        let _ = expect_error_frame(&mut stream);
    });

    let mut binary = TcpClient::connect_binary(addr).unwrap();
    let mut json = TcpClient::connect(addr).unwrap();
    assert!(binary.is_binary());
    assert!(!json.is_binary());
    for seed in 0..8u64 {
        let input = [0.5f32, 0.25, 1.0];
        let b = binary.infer_retrying(MODEL, &input, seed).unwrap();
        let j = json.infer_retrying(MODEL, &input, seed).unwrap();
        assert_eq!(b.predicted, j.predicted, "seed {seed}");
        let b_bits: Vec<u32> = b.logits.iter().map(|l| l.to_bits()).collect();
        let j_bits: Vec<u32> = j.logits.iter().map(|l| l.to_bits()).collect();
        assert_eq!(b_bits, j_bits, "seed {seed}: format changed the bits");
    }
    hostile.join().unwrap();
    server.shutdown();
}

#[test]
fn json_garbage_still_gets_a_json_error_line() {
    // A first byte that is not the magic selects the JSON path, where a
    // garbage line must yield a JSON error response, not a hang.
    let (server, addr) = start_server();
    let mut stream = raw_connect(addr);
    stream.write_all(b"this is not json\n").unwrap();
    let mut reply = String::new();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    std::io::BufRead::read_line(&mut reader, &mut reply).unwrap();
    assert!(
        reply.contains("error"),
        "expected a JSON error line, got {reply:?}"
    );
    server.shutdown();
}

#[test]
fn immediate_disconnect_is_harmless() {
    // Peers that connect and vanish before sending a byte (port scanners,
    // health checks) must not wedge the accept loop.
    let (server, addr) = start_server();
    for _ in 0..4 {
        drop(TcpStream::connect(addr).unwrap());
    }
    let mut client = TcpClient::connect_binary(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
}
