//! Flight-recorder concurrency suite: under a seeded multi-client hammer,
//! every reply's trace id must resolve — through a concurrent `trace`
//! scrape — to a complete, monotonically ordered per-stage timeline whose
//! span durations tile at least 95 % of the recorded end-to-end latency.
//!
//! Runs the same checks over the in-process client and both TCP wire
//! formats (JSON and binary framing), which share one flight recorder.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use nrsnn_serve::{
    ModelRegistry, NoiseSpec, RequestTrace, ServedModel, Server, ServerConfig, TcpClient,
};
use nrsnn_snn::{CodingConfig, CodingKind, SnnLayer, SnnNetwork};
use nrsnn_tensor::Tensor;

const MASTER_SEED: u64 = 0x7EAC_E5EED;
const MODEL: &str = "trace-toy";
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 32;

fn toy_network() -> SnnNetwork {
    let l0 = SnnLayer::Linear {
        weights: Tensor::from_vec(
            vec![
                0.9, -0.2, 0.1, 0.3, //
                -0.1, 0.8, 0.2, -0.3, //
                0.2, 0.1, 0.7, 0.2, //
                0.3, -0.4, 0.1, 0.6,
            ],
            &[4, 4],
        )
        .unwrap(),
        bias: Tensor::from_vec(vec![0.05, -0.05, 0.0, 0.1], &[4]).unwrap(),
    };
    let l1 = SnnLayer::Linear {
        weights: Tensor::from_vec(
            vec![
                0.6, -0.2, 0.3, 0.1, //
                -0.3, 0.7, -0.1, 0.4, //
                0.1, 0.2, 0.5, -0.3,
            ],
            &[3, 4],
        )
        .unwrap(),
        bias: Tensor::zeros(&[3]),
    };
    SnnNetwork::new(vec![l0, l1]).unwrap()
}

fn registry() -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry
        .insert(
            ServedModel::new(
                MODEL,
                toy_network(),
                CodingKind::Ttas(3),
                CodingConfig::new(48, 1.0),
                NoiseSpec::Deletion(0.3),
                1.0,
                MASTER_SEED,
            )
            .unwrap(),
        )
        .unwrap();
    registry
}

fn input_for(i: u64) -> Vec<f32> {
    (0..4)
        .map(|j| (((i * 31 + j * 7 + 13) % 100) as f32) / 100.0)
        .collect()
}

/// Asserts the full per-timeline contract and returns the fraction of the
/// end-to-end latency covered by the spans.
fn check_timeline(trace: &RequestTrace, context: &str) -> f64 {
    assert!(trace.ok, "{context}: request did not fail");
    assert_eq!(trace.model, MODEL, "{context}");
    assert!(!trace.backend.is_empty(), "{context}: backend tag missing");
    assert_eq!(trace.dropped_spans, 0, "{context}: spans were dropped");
    assert!(trace.end_ns >= trace.start_ns, "{context}");
    assert!(!trace.spans.is_empty(), "{context}: timeline has no spans");

    // The timeline starts in the queue and ends serializing the reply.
    assert_eq!(
        trace.spans.first().unwrap().stage,
        "queue_wait",
        "{context}"
    );
    assert_eq!(
        trace.spans.last().unwrap().stage,
        "reply_serialize",
        "{context}"
    );

    let mut covered_ns = 0u64;
    let mut previous_end = trace.start_ns;
    let mut simulate_spans = 0usize;
    for (s, span) in trace.spans.iter().enumerate() {
        assert!(
            span.end_ns >= span.start_ns,
            "{context}: span {s} ({}) runs backwards",
            span.stage
        );
        assert!(
            span.start_ns >= previous_end,
            "{context}: span {s} ({}) starts before span {} ends",
            span.stage,
            s.wrapping_sub(1)
        );
        assert!(
            span.start_ns >= trace.start_ns && span.end_ns <= trace.end_ns,
            "{context}: span {s} ({}) escapes the request window",
            span.stage
        );
        previous_end = span.end_ns;
        covered_ns += span.end_ns - span.start_ns;
        if span.stage == "simulate" {
            simulate_spans += 1;
            assert!(
                span.layer.is_some(),
                "{context}: simulate span without a layer tag"
            );
            let kernel = span
                .kernel
                .as_deref()
                .unwrap_or_else(|| panic!("{context}: simulate span without a kernel tag"));
            assert!(
                kernel == "dense" || kernel == "sparse",
                "{context}: unknown kernel {kernel:?}"
            );
            assert!(
                (0.0..=1.0).contains(&span.density),
                "{context}: density {} out of range",
                span.density
            );
        }
    }
    assert!(
        simulate_spans >= 2,
        "{context}: a two-layer network must record >= 2 simulate spans"
    );

    // Stage durations sum to no more than — and cover >= 95 % of — the
    // recorded end-to-end latency (monotone tiling guarantees <=; the
    // acceptance bar demands >=).
    let total_ns = trace.end_ns - trace.start_ns;
    assert!(covered_ns <= total_ns, "{context}: spans exceed the window");
    let coverage = if total_ns == 0 {
        1.0
    } else {
        covered_ns as f64 / total_ns as f64
    };
    assert!(
        coverage >= 0.95,
        "{context}: spans cover only {:.1}% of the end-to-end latency",
        coverage * 100.0
    );
    coverage
}

#[test]
fn hammered_flight_recorder_resolves_every_reply_to_a_complete_timeline() {
    let server = Server::start(
        registry(),
        ServerConfig {
            workers: 4,
            max_batch: 8,
            batch_window: Duration::from_micros(200),
            queue_capacity: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    // A scraper thread hammers the recorder *while* requests are in
    // flight: concurrent reads must never corrupt or block recording.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for trace in client.trace(16) {
                    // Mid-flight scrapes only ever see fully recorded
                    // timelines: records are published after completion.
                    check_timeline(&trace, "mid-flight scrape");
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    let submitters: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = client.clone();
            std::thread::spawn(move || {
                (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        let seed = (c * REQUESTS_PER_CLIENT + r) as u64;
                        let reply = client
                            .infer_retrying(MODEL, &input_for(seed), seed)
                            .unwrap();
                        (seed, reply)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let replies: Vec<_> = submitters
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(scraper.join().unwrap() > 0, "scraper never ran");
    assert_eq!(replies.len(), CLIENTS * REQUESTS_PER_CLIENT);

    // Every reply's trace id resolves in the final scrape (the per-worker
    // rings hold 256 recent timelines — far more than this run records).
    let timelines: HashMap<u64, RequestTrace> = client
        .trace(usize::MAX)
        .into_iter()
        .map(|t| (t.trace_id, t))
        .collect();
    let mut ids = std::collections::HashSet::new();
    for (seed, reply) in &replies {
        assert_ne!(reply.trace_id, 0, "request {seed}: no trace id assigned");
        assert!(ids.insert(reply.trace_id), "duplicate trace id");
        let trace = timelines.get(&reply.trace_id).unwrap_or_else(|| {
            panic!(
                "request {seed}: trace id {} not in the recorder",
                reply.trace_id
            )
        });
        assert_eq!(trace.seed, *seed, "timeline belongs to another request");
        check_timeline(trace, &format!("request {seed}"));
    }
    server.shutdown();
}

#[test]
fn trace_scrapes_agree_across_json_and_binary_wires() {
    let mut server = Server::start(
        registry(),
        ServerConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.serve_tcp(("127.0.0.1", 0)).unwrap();

    // Drive load over both wire formats concurrently.
    let drivers: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = if w == 0 {
                    TcpClient::connect(addr).unwrap()
                } else {
                    TcpClient::connect_binary(addr).unwrap()
                };
                (0..8)
                    .map(|r| {
                        let seed = (w * 100 + r) as u64;
                        let reply = client
                            .infer_retrying(MODEL, &input_for(seed), seed)
                            .unwrap();
                        (seed, reply.trace_id)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let replies: Vec<(u64, u64)> = drivers
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();

    // Both wires must return the same recorder contents, span for span.
    let mut json = TcpClient::connect(addr).unwrap();
    let mut binary = TcpClient::connect_binary(addr).unwrap();
    let from_json: HashMap<u64, RequestTrace> = json
        .trace(256)
        .unwrap()
        .into_iter()
        .map(|t| (t.trace_id, t))
        .collect();
    let from_binary: HashMap<u64, RequestTrace> = binary
        .trace(256)
        .unwrap()
        .into_iter()
        .map(|t| (t.trace_id, t))
        .collect();

    for (seed, trace_id) in &replies {
        assert_ne!(*trace_id, 0, "request {seed}: no trace id over TCP");
        let via_json = from_json
            .get(trace_id)
            .unwrap_or_else(|| panic!("request {seed}: missing from JSON scrape"));
        let via_binary = from_binary
            .get(trace_id)
            .unwrap_or_else(|| panic!("request {seed}: missing from binary scrape"));
        check_timeline(via_json, &format!("request {seed} via JSON"));
        assert_eq!(
            via_json, via_binary,
            "request {seed}: wire formats disagree about the timeline"
        );
    }
    server.shutdown();
}
