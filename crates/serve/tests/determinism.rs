//! Concurrent-serving determinism: the same request with the same seed must
//! return **byte-identical** logits regardless of batch companions, queue
//! order, batching policy or worker count — and must equal the offline
//! single-threaded [`SnnNetwork::simulate_with`] path.
//!
//! The contract under test: request `r` against model `m` simulates with a
//! fresh `StdRng` seeded `derive_seed(m.master_seed, r.seed)`, a pure
//! function of `(model, request)`.

use std::sync::Arc;
use std::time::Duration;

use nrsnn_runtime::derive_seed;
use nrsnn_serve::{ModelRegistry, NoiseSpec, ServedModel, Server, ServerConfig};
use nrsnn_snn::{CodingConfig, CodingKind, SimWorkspace, SnnLayer, SnnNetwork};
use nrsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MASTER_SEED: u64 = 0xD0C5_EED5;
const MODEL: &str = "det-toy";

/// A small 3-class, 4-input network with enough structure for noise to
/// matter.
fn toy_network() -> SnnNetwork {
    let l0 = SnnLayer::Linear {
        weights: Tensor::from_vec(
            vec![
                0.9, -0.2, 0.1, 0.3, //
                -0.1, 0.8, 0.2, -0.3, //
                0.2, 0.1, 0.7, 0.2, //
                0.3, -0.4, 0.1, 0.6, //
                0.1, 0.2, -0.2, 0.5, //
                -0.3, 0.5, 0.4, 0.1,
            ],
            &[6, 4],
        )
        .unwrap(),
        bias: Tensor::from_vec(vec![0.05, -0.05, 0.0, 0.1, -0.1, 0.02], &[6]).unwrap(),
    };
    let l1 = SnnLayer::Linear {
        weights: Tensor::from_vec(
            vec![
                0.6, -0.2, 0.3, 0.1, -0.4, 0.2, //
                -0.3, 0.7, -0.1, 0.4, 0.2, -0.2, //
                0.1, 0.2, 0.5, -0.3, 0.3, 0.4,
            ],
            &[3, 6],
        )
        .unwrap(),
        bias: Tensor::zeros(&[3]),
    };
    SnnNetwork::new(vec![l0, l1]).unwrap()
}

fn coding_config() -> CodingConfig {
    CodingConfig::new(48, 1.0)
}

fn registry() -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry
        .insert(
            ServedModel::new(
                MODEL,
                toy_network(),
                CodingKind::Ttas(3),
                coding_config(),
                NoiseSpec::Deletion(0.35),
                1.0,
                MASTER_SEED,
            )
            .unwrap(),
        )
        .unwrap();
    registry
}

/// Deterministic pseudo-random request input for index `i`.
fn input_for(i: u64) -> Vec<f32> {
    (0..4)
        .map(|j| ((derive_seed(i, j) % 1000) as f32) / 1000.0)
        .collect()
}

/// The offline single-threaded reference: `simulate_with` under the serve
/// crate's seed derivation.
fn offline_logits(input: &[f32], request_seed: u64) -> (usize, Vec<u32>) {
    let network = toy_network();
    let coding = CodingKind::Ttas(3).build();
    let cfg = coding_config();
    let noise = NoiseSpec::Deletion(0.35).build().unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = StdRng::seed_from_u64(derive_seed(MASTER_SEED, request_seed));
    let outcome = network
        .simulate_with(
            input,
            coding.as_ref(),
            &cfg,
            noise.as_ref(),
            &mut rng,
            &mut ws,
        )
        .unwrap();
    let bits = ws.logits().iter().map(|l| l.to_bits()).collect();
    (outcome.predicted, bits)
}

fn logits_bits(logits: &[f32]) -> Vec<u32> {
    logits.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn every_reply_matches_the_offline_reference_for_every_serving_policy() {
    let requests: Vec<(u64, Vec<f32>)> = (0..24).map(|i| (1000 + i, input_for(i))).collect();
    let references: Vec<(usize, Vec<u32>)> = requests
        .iter()
        .map(|(seed, input)| offline_logits(input, *seed))
        .collect();

    // Worker count, batch cap and window all vary; none may change a bit.
    let policies = [
        (1usize, 1usize, Duration::ZERO),
        (1, 16, Duration::ZERO),
        (4, 4, Duration::ZERO),
        (4, 16, Duration::from_micros(500)),
        (0, 8, Duration::ZERO), // auto workers (honours NRSNN_THREADS)
    ];
    for (workers, max_batch, batch_window) in policies {
        let server = Server::start(
            registry(),
            ServerConfig {
                workers,
                max_batch,
                batch_window,
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = server.client();
        // Fan the identical request set out from four submitter threads so
        // arrival order and batch composition differ run to run.
        let requests = Arc::new(requests.clone());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let client = client.clone();
                let requests = Arc::clone(&requests);
                std::thread::spawn(move || {
                    let mut replies = Vec::new();
                    for (index, (seed, input)) in requests.iter().enumerate() {
                        // Each thread walks the list from a different side.
                        let (index, (seed, input)) = if t % 2 == 0 {
                            (index, (seed, input))
                        } else {
                            let r = requests.len() - 1 - index;
                            (r, (&requests[r].0, &requests[r].1))
                        };
                        let reply = client.infer_retrying(MODEL, input, *seed).unwrap();
                        replies.push((index, reply));
                    }
                    replies
                })
            })
            .collect();
        for thread in threads {
            for (index, reply) in thread.join().unwrap() {
                let (expected_predicted, expected_bits) = &references[index];
                assert_eq!(
                    reply.predicted, *expected_predicted,
                    "policy ({workers},{max_batch},{batch_window:?}) request {index}"
                );
                assert_eq!(
                    logits_bits(&reply.logits),
                    *expected_bits,
                    "policy ({workers},{max_batch},{batch_window:?}) request {index}"
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.requests_served, 4 * requests.len() as u64);
        assert_eq!(stats.failed, 0);
        server.shutdown();
    }
}

#[test]
fn probe_request_is_invariant_to_its_batch_companions() {
    // The same probe repeated among *changing* companion requests: every
    // occurrence must produce the same bytes.
    let probe_seed = 77u64;
    let probe_input = input_for(999);
    let (expected_predicted, expected_bits) = offline_logits(&probe_input, probe_seed);

    let server = Server::start(
        registry(),
        ServerConfig {
            workers: 4,
            max_batch: 6,
            batch_window: Duration::from_micros(300),
            queue_capacity: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    let probe_replies: Vec<_> = (0..6)
        .map(|round| {
            // Fresh companions every round -> different batch compositions.
            let companions: Vec<_> = (0..8)
                .map(|i| {
                    let client = client.clone();
                    let seed = round * 100 + i;
                    let input = input_for(seed);
                    std::thread::spawn(move || client.infer_retrying(MODEL, &input, seed).unwrap())
                })
                .collect();
            let probe = client
                .infer_retrying(MODEL, &probe_input, probe_seed)
                .unwrap();
            for companion in companions {
                companion.join().unwrap();
            }
            probe
        })
        .collect();

    for (round, reply) in probe_replies.iter().enumerate() {
        assert_eq!(reply.predicted, expected_predicted, "round {round}");
        assert_eq!(logits_bits(&reply.logits), expected_bits, "round {round}");
    }
    server.shutdown();
}

#[test]
fn cross_format_matrix_is_bit_identical() {
    // The wire format is transport, not semantics: for every (workers,
    // max_batch) policy, the in-process client, a JSON TCP client and a
    // binary TCP client run *concurrently* against one server (so JSON and
    // binary connections interleave in the same queue) and every reply must
    // be bit-equal to the offline `simulate_with` reference.
    let requests: Vec<(u64, Vec<f32>)> = (0..16).map(|i| (2000 + i, input_for(40 + i))).collect();
    let references: Vec<(usize, Vec<u32>)> = requests
        .iter()
        .map(|(seed, input)| offline_logits(input, *seed))
        .collect();

    for (workers, max_batch) in [(1usize, 1usize), (1, 16), (4, 1), (4, 16)] {
        let mut server = Server::start(
            registry(),
            ServerConfig {
                workers,
                max_batch,
                batch_window: Duration::from_micros(200),
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.serve_tcp(("127.0.0.1", 0)).unwrap();
        let requests = Arc::new(requests.clone());

        enum Transport {
            InProcess,
            Json,
            Binary,
        }
        let threads: Vec<_> = [Transport::InProcess, Transport::Json, Transport::Binary]
            .into_iter()
            .map(|transport| {
                let requests = Arc::clone(&requests);
                let in_process = server.client();
                std::thread::spawn(move || {
                    let mut tcp = match transport {
                        Transport::InProcess => None,
                        Transport::Json => Some(nrsnn_serve::TcpClient::connect(addr).unwrap()),
                        Transport::Binary => {
                            Some(nrsnn_serve::TcpClient::connect_binary(addr).unwrap())
                        }
                    };
                    requests
                        .iter()
                        .enumerate()
                        .map(|(index, (seed, input))| {
                            let reply = match tcp.as_mut() {
                                None => in_process.infer_retrying(MODEL, input, *seed).unwrap(),
                                Some(client) => client.infer_retrying(MODEL, input, *seed).unwrap(),
                            };
                            (index, reply)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        for thread in threads {
            for (index, reply) in thread.join().unwrap() {
                let (expected_predicted, expected_bits) = &references[index];
                assert_eq!(
                    reply.predicted, *expected_predicted,
                    "policy ({workers},{max_batch}) request {index}"
                );
                assert_eq!(
                    logits_bits(&reply.logits),
                    *expected_bits,
                    "policy ({workers},{max_batch}) request {index}: \
                     reply depends on the wire format"
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.requests_served, 3 * requests.len() as u64);
        assert_eq!(stats.failed, 0);
        server.shutdown();
    }
}

#[test]
fn observability_on_off_or_scraped_never_changes_reply_bits() {
    // The observability hard constraint: tracing enabled, tracing disabled,
    // and tracing enabled *while* stats and trace scrapes hammer the
    // metrics concurrently must all return byte-identical logits — the
    // clock and recorder never touch the per-request RNG stream.
    let requests: Vec<(u64, Vec<f32>)> = (0..16).map(|i| (3000 + i, input_for(60 + i))).collect();
    let references: Vec<(usize, Vec<u32>)> = requests
        .iter()
        .map(|(seed, input)| offline_logits(input, *seed))
        .collect();

    for (tracing, scrape) in [(false, false), (true, false), (true, true)] {
        let server = Server::start(
            registry(),
            ServerConfig {
                workers: 4,
                max_batch: 8,
                batch_window: Duration::from_micros(200),
                queue_capacity: 1024,
                tracing,
            },
        )
        .unwrap();
        let client = server.client();

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scraper = scrape.then(|| {
            let client = client.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = client.stats();
                    let _ = client.trace(32);
                    scrapes += 1;
                }
                scrapes
            })
        });

        let submitters: Vec<_> = (0..4)
            .map(|_| {
                let client = client.clone();
                let requests = Arc::new(requests.clone());
                std::thread::spawn(move || {
                    requests
                        .iter()
                        .enumerate()
                        .map(|(index, (seed, input))| {
                            (index, client.infer_retrying(MODEL, input, *seed).unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for thread in submitters {
            for (index, reply) in thread.join().unwrap() {
                let (expected_predicted, expected_bits) = &references[index];
                assert_eq!(
                    reply.predicted, *expected_predicted,
                    "tracing={tracing} scrape={scrape} request {index}"
                );
                assert_eq!(
                    logits_bits(&reply.logits),
                    *expected_bits,
                    "tracing={tracing} scrape={scrape} request {index}: \
                     observability changed the reply bits"
                );
                // Trace ids are observability metadata, not reply payload —
                // but they must reflect the config.
                if tracing {
                    assert_ne!(reply.trace_id, 0, "tracing on must assign trace ids");
                } else {
                    assert_eq!(reply.trace_id, 0, "tracing off must not assign trace ids");
                }
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(scraper) = scraper {
            assert!(scraper.join().unwrap() > 0, "scraper never ran");
        }
        if !tracing {
            assert!(
                client.trace(64).is_empty(),
                "tracing off must record no timelines"
            );
        }
        server.shutdown();
    }
}

#[test]
fn distinct_seeds_actually_change_the_noise_realisation() {
    // Sanity check that the determinism above is not vacuous: with 35 %
    // deletion, different request seeds must produce different logits for
    // the same input.
    let input = input_for(5);
    let a = offline_logits(&input, 1);
    let b = offline_logits(&input, 2);
    assert_ne!(a.1, b.1, "different seeds should differ somewhere");

    let server = Server::start(registry(), ServerConfig::default()).unwrap();
    let client = server.client();
    let reply_a = client.infer_retrying(MODEL, &input, 1).unwrap();
    let reply_b = client.infer_retrying(MODEL, &input, 2).unwrap();
    assert_eq!(logits_bits(&reply_a.logits), a.1);
    assert_eq!(logits_bits(&reply_b.logits), b.1);
    assert_ne!(logits_bits(&reply_a.logits), logits_bits(&reply_b.logits));
    server.shutdown();
}
