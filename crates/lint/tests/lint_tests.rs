//! Integration tests for the lint itself: the bad-fixture corpus (each
//! fixture triggers exactly its rule), the good corpus (suppression and
//! clean idiom), the CLI exit codes, and the self-test that the real
//! workspace tree lints clean.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// (fixture file, virtual workspace path it is linted as, the one rule it
/// must trigger).
const BAD_CORPUS: &[(&str, &str, &str)] = &[
    (
        "bad_unsafe.rs",
        "crates/tensor/src/fixture.rs",
        "unsafe-needs-safety",
    ),
    ("bad_layering.rs", "crates/snn/src/fixture.rs", "layering"),
    (
        "bad_forbidden_api.rs",
        "crates/snn/src/fixture.rs",
        "forbidden-api",
    ),
    (
        "bad_atomic_ordering.rs",
        "crates/serve/src/fixture.rs",
        "atomic-ordering",
    ),
    (
        "bad_unwrap.rs",
        "crates/serve/src/fixture.rs",
        "unwrap-audit",
    ),
    ("bad_allow.rs", "crates/tensor/src/fixture.rs", "bad-allow"),
    (
        "bad_unknown_rule.rs",
        "crates/tensor/src/fixture.rs",
        "unknown-rule",
    ),
];

#[test]
fn every_bad_fixture_triggers_exactly_its_rule() {
    for (file, vpath, rule) in BAD_CORPUS {
        let findings = nrsnn_lint::lint_source(vpath, &fixture(file));
        assert!(
            !findings.is_empty(),
            "{file}: expected at least one `{rule}` finding, got none"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{file}: expected only `{rule}` findings, got {findings:?}"
            );
        }
    }
}

#[test]
fn bad_fixture_findings_carry_file_and_line() {
    let findings =
        nrsnn_lint::lint_source("crates/tensor/src/fixture.rs", &fixture("bad_unsafe.rs"));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].path, "crates/tensor/src/fixture.rs");
    assert!(
        findings[0].line > 1,
        "line should point at the unsafe block"
    );
}

#[test]
fn good_fixtures_lint_clean() {
    for file in ["good_allow.rs", "good_clean.rs"] {
        let findings = nrsnn_lint::lint_source("crates/serve/src/fixture.rs", &fixture(file));
        assert!(findings.is_empty(), "{file}: {findings:?}");
    }
}

#[test]
fn allow_suppression_is_rule_and_site_scoped() {
    // The allow in good_allow.rs names atomic-ordering; moving the same
    // directive in front of an unwrap must not help.
    let src = "pub fn f(xs: &[u32]) -> u32 {\n    // nrsnn-lint: allow(atomic-ordering) -- wrong rule on purpose\n    xs.first().copied().unwrap()\n}\n";
    let findings = nrsnn_lint::lint_source("crates/serve/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unwrap-audit");
}

/// The self-test: the real tree must lint clean. This is the same check
/// CI's `lint` job runs; keeping it in the unit suite means plain
/// `cargo test` catches a new violation before CI does.
#[test]
fn real_workspace_lints_clean() {
    let findings = nrsnn_lint::lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_exits_zero_on_clean_tree_and_nonzero_on_violations() {
    let bin = env!("CARGO_BIN_EXE_nrsnn-lint");

    let ok = std::process::Command::new(bin)
        .arg(workspace_root())
        .output()
        .expect("run nrsnn-lint");
    assert!(
        ok.status.success(),
        "expected exit 0 on the real tree:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // A root missing every declared manifest is maximally bad.
    let empty = std::env::temp_dir().join("nrsnn-lint-empty-root");
    std::fs::create_dir_all(&empty).expect("mk temp root");
    let bad = std::process::Command::new(bin)
        .arg(&empty)
        .output()
        .expect("run nrsnn-lint");
    assert_eq!(bad.status.code(), Some(1), "expected exit 1 on violations");
}
