// Good corpus: idiomatic code that satisfies every rule without any
// allow directives. Linted as if at crates/serve/src/fixture.rs — must
// produce zero findings.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    // ORDERING: release-publishes the payload written before this store
    // to any reader that acquires the same flag.
    flag.store(1, Ordering::Release);
}

pub fn read_raw(p: *const f32, len: usize, i: usize) -> f32 {
    assert!(i < len);
    // SAFETY: `i` is bounds-checked above and the caller guarantees `p`
    // points at `len` readable f32s.
    unsafe { *p.add(i) }
}
