// Bad corpus: the coding layer reaching into observability.
// Linted as if at crates/snn/src/fixture.rs — must trigger exactly
// `layering` (the nrsnn-snn -> nrsnn-obs edge is absent from the DAG).
use nrsnn_obs::clock::Clock;

pub fn now_ticks(c: &Clock) -> u64 {
    c.ticks()
}
