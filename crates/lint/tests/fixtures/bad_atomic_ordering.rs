// Bad corpus: a non-Relaxed atomic ordering with no ORDERING comment.
// Linted as if at crates/serve/src/fixture.rs — must trigger exactly
// `atomic-ordering`.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::SeqCst);
}
