// Bad corpus: raw wall-clock access outside crates/obs.
// Linted as if at crates/snn/src/fixture.rs — must trigger exactly
// `forbidden-api` (std::time::Instant is the obs crate's business).
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
