// Bad corpus: an unjustified unwrap on the serving path.
// Linted as if at crates/serve/src/fixture.rs — must trigger exactly
// `unwrap-audit`.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
