// Bad corpus: an allow directive without the mandatory `-- <reason>`.
// Linted as if at crates/tensor/src/fixture.rs — must trigger exactly
// `bad-allow` (the directive below suppresses nothing and sits on a line
// with no other violation).
// nrsnn-lint: allow(layering)
pub fn noop() {}
