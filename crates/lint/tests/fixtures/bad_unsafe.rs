// Bad corpus: an unsafe block with no SAFETY comment.
// Linted as if at crates/tensor/src/fixture.rs — must trigger exactly
// `unsafe-needs-safety`.
pub fn read_raw(p: *const f32) -> f32 {
    unsafe { *p }
}
