// Bad corpus: an allow directive naming a rule that does not exist.
// Linted as if at crates/tensor/src/fixture.rs — must trigger exactly
// `unknown-rule`.
// nrsnn-lint: allow(no-such-rule) -- a reason does not rescue a typo
pub fn noop() {}
