// Good corpus: every would-be violation is suppressed by a well-formed
// allow directive. Linted as if at crates/serve/src/fixture.rs — must
// produce zero findings.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    // nrsnn-lint: allow(atomic-ordering) -- fixture exercising suppression
    flag.store(1, Ordering::SeqCst);
}

pub fn first(xs: &[u32]) -> u32 {
    // nrsnn-lint: allow(unwrap-audit) -- fixture exercising suppression
    xs.first().copied().unwrap()
}
