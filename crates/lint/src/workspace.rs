//! Workspace walking and the manifest half of the `layering` rule.
//!
//! The lint is std-only, so instead of a TOML parser it carries a
//! just-enough line reader for the Cargo.toml shapes this workspace
//! actually uses: `[section]` headers and `name = ...` keys.  Anything it
//! cannot understand it flags rather than guesses.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{self, CrateSpec};
use crate::rules::Finding;

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Collects every lintable `.rs` file under `root`, as (workspace-relative
/// path, absolute path), sorted for deterministic output.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Checks every crate manifest against the declared DAG, and that every
/// crate directory on disk is present in the table at all.
pub fn check_manifests(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Any crate directory not in the table is itself a violation — the
    // table must be the single source of truth for the DAG.
    for parent in ["crates", "shims"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.path().is_dir() || !entry.path().join("Cargo.toml").is_file() {
                continue;
            }
            let rel = format!("{parent}/{}", entry.file_name().to_string_lossy());
            if !config::CRATES.iter().any(|c| c.dir == rel) {
                findings.push(Finding {
                    path: format!("{rel}/Cargo.toml"),
                    line: 1,
                    rule: "layering",
                    message: format!(
                        "crate directory `{rel}` is not declared in the DAG table in \
                         crates/lint/src/config.rs"
                    ),
                });
            }
        }
    }

    for spec in config::CRATES {
        let manifest = if spec.dir == "." {
            root.join("Cargo.toml")
        } else {
            root.join(spec.dir).join("Cargo.toml")
        };
        let Ok(text) = fs::read_to_string(&manifest) else {
            findings.push(Finding {
                path: format!("{}/Cargo.toml", spec.dir),
                line: 1,
                rule: "layering",
                message: format!(
                    "crate `{}` declared in the DAG table but its manifest is missing",
                    spec.name
                ),
            });
            continue;
        };
        check_one_manifest(spec, &text, &mut findings);
    }
    Ok(findings)
}

/// Which manifest section a dependency line sits in.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Section {
    Other,
    Package,
    Deps,
    DevDeps,
    BuildDeps,
}

fn check_one_manifest(spec: &CrateSpec, text: &str, findings: &mut Vec<Finding>) {
    let rel_manifest = if spec.dir == "." {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", spec.dir)
    };
    let mut section = Section::Other;
    let mut saw_name = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                "[build-dependencies]" => Section::BuildDeps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        saw_name = true;
                        let v = v.trim().trim_matches('"');
                        if v != spec.name {
                            findings.push(Finding {
                                path: rel_manifest.clone(),
                                line: lineno,
                                rule: "layering",
                                message: format!(
                                    "manifest names the crate `{v}` but the DAG table expects \
                                     `{}` at {}",
                                    spec.name, spec.dir
                                ),
                            });
                        }
                    }
                }
            }
            Section::Deps | Section::DevDeps => {
                let Some(dep) = dep_key(line) else { continue };
                let allowed = if section == Section::Deps {
                    spec.deps.contains(&dep)
                } else {
                    spec.deps.contains(&dep) || spec.dev_deps.contains(&dep)
                };
                if !allowed {
                    let kind = if section == Section::Deps {
                        "dependency"
                    } else {
                        "dev-dependency"
                    };
                    findings.push(Finding {
                        path: rel_manifest.clone(),
                        line: lineno,
                        rule: "layering",
                        message: format!(
                            "{kind} `{dep}` of `{}` is not an edge in the DAG table \
                             (crates/lint/src/config.rs); internal crates and shims only",
                            spec.name
                        ),
                    });
                }
            }
            Section::BuildDeps => {
                if dep_key(line).is_some() {
                    findings.push(Finding {
                        path: rel_manifest.clone(),
                        line: lineno,
                        rule: "layering",
                        message: format!(
                            "build-dependencies are not allowed (crate `{}`): the workspace \
                             must stay offline-buildable with shims only",
                            spec.name
                        ),
                    });
                }
            }
            Section::Other => {}
        }
    }
    if !saw_name {
        findings.push(Finding {
            path: rel_manifest,
            line: 1,
            rule: "layering",
            message: format!(
                "could not find `name = ...` in the manifest of `{}`",
                spec.name
            ),
        });
    }
}

/// Extracts the dependency name from a manifest line, honoring
/// `package = "..."` renames inside inline tables.
fn dep_key(line: &str) -> Option<&str> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || key.contains('.') {
        return None; // e.g. `foo.workspace = true` — not used in this tree
    }
    // `x = { package = "real-name", ... }` depends on `real-name`.
    if let Some(pos) = rest.find("package") {
        let after = rest[pos + "package".len()..].trim_start();
        if let Some(v) = after.strip_prefix('=') {
            let v = v.trim_start();
            if let Some(stripped) = v.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    return Some(&stripped[..end]);
                }
            }
        }
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_key_handles_plain_and_renamed() {
        assert_eq!(
            dep_key("rand = { path = \"../../shims/rand\" }"),
            Some("rand")
        );
        assert_eq!(
            dep_key("fancy = { package = \"real-name\", path = \"x\" }"),
            Some("real-name")
        );
        assert_eq!(dep_key("serde.workspace = true"), None);
        assert_eq!(dep_key("just a comment"), None);
    }

    #[test]
    fn manifest_with_undeclared_edge_is_flagged() {
        let spec = config::CRATES
            .iter()
            .find(|c| c.name == "nrsnn-snn")
            .unwrap();
        let text =
            "[package]\nname = \"nrsnn-snn\"\n[dependencies]\nnrsnn-obs = { path = \"../obs\" }\n";
        let mut findings = Vec::new();
        check_one_manifest(spec, text, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("nrsnn-obs"));
    }

    #[test]
    fn declared_edges_pass() {
        let spec = config::CRATES
            .iter()
            .find(|c| c.name == "nrsnn-snn")
            .unwrap();
        let text = "[package]\nname = \"nrsnn-snn\"\n[dependencies]\nnrsnn-tensor = { path = \"../tensor\" }\nrand = { path = \"../../shims/rand\" }\n[dev-dependencies]\nproptest = { path = \"../../shims/proptest\" }\n";
        let mut findings = Vec::new();
        check_one_manifest(spec, text, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
