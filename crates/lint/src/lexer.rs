//! A small hand-rolled Rust lexer — just enough structure for rule checks.
//!
//! The lexer splits a source file into *significant tokens* (identifiers,
//! punctuation, literals, lifetimes) and *comments*, each carrying 1-based
//! line numbers.  It understands every way Rust can embed text that must
//! **not** be token-matched: line and (nested) block comments, string and
//! byte-string literals with escapes, raw strings with arbitrary `#` fences
//! (`r#".."#`, `br##".."##`, `c".."`), and character literals — including
//! the classic `'a'`-vs-`'a`-lifetime ambiguity.
//!
//! It deliberately does **not** build an AST: every repo invariant the lint
//! enforces is expressible over the token stream plus comment adjacency,
//! and a full parser would mean depending on `syn` — which the layering
//! rule itself forbids (shims-only external deps).

/// What kind of significant token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `nrsnn_obs`, ...).
    Ident,
    /// Single punctuation character (`:`, `{`, `!`, ...).
    Punct,
    /// String/char/number literal (text not retained for strings).
    Literal,
    /// Lifetime (`'a`) — distinct so it never masquerades as a char.
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For identifiers and punctuation this is the exact
    /// source; for literals it is a placeholder (rules never match on
    /// literal contents).
    pub text: String,
    pub line: u32,
}

/// One comment (line comments merged into runs, see [`lex`]).
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    /// Full comment text including the `//`/`/*` markers.
    pub text: String,
    /// True when no token precedes the comment on its starting line —
    /// trailing comments (after code) never merge into runs.
    pub whole_line: bool,
}

/// A lexed file: tokens, comments and the raw lines (the latter used for
/// the attribute-skipping adjacency walk in the rules).
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub lines: Vec<String>,
}

impl Lexed {
    /// True if `line` (1-based) is blank or an attribute line — the lines
    /// the justification-comment adjacency walk is allowed to skip over.
    pub fn is_skippable_line(&self, line: u32) -> bool {
        match self.lines.get(line as usize - 1) {
            Some(l) => {
                let t = l.trim();
                t.is_empty() || t.starts_with("#[") || t.starts_with("#![")
            }
            None => false,
        }
    }

    /// True if some comment ending exactly on `line` contains `needle`.
    pub fn comment_ending_on(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line == line && c.text.contains(needle))
    }

    /// The adjacency rule shared by every justification check: a comment
    /// containing `needle` either ends on the token's own line (trailing
    /// or preceding on the same line) or ends directly above it, with only
    /// blank and attribute lines allowed in between.
    pub fn has_justification(&self, line: u32, needle: &str) -> bool {
        if self.comment_ending_on(line, needle) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.is_skippable_line(l) {
            l -= 1;
        }
        l >= 1 && self.comment_ending_on(l, needle)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and comments.
///
/// Adjacent whole-line comments are merged into one [`Comment`] run so a
/// multi-line `// SAFETY: ...` explanation counts as a single comment whose
/// `end_line` abuts the code it documents.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = source[start..cur.pos].to_string();
                comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text,
                    whole_line: toks.last().map_or(true, |t| t.line != line),
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                comments.push(Comment {
                    start_line: line,
                    end_line: cur.line,
                    text: source[start..cur.pos].to_string(),
                    whole_line: toks.last().map_or(true, |t| t.line != line),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".to_string(),
                    line,
                });
            }
            b'\'' => {
                lex_char_or_lifetime(&mut cur, &mut toks, line);
            }
            _ if raw_string_prefix(&cur).is_some() => {
                // `r".."`, `r#".."#`, `br".."`, `cr#"..."#`, `b".."` ...
                let (skip, hashes) = raw_string_prefix(&cur).expect("checked");
                for _ in 0..skip {
                    cur.bump();
                }
                if hashes == usize::MAX {
                    // plain (escaped) string with a b/c prefix
                    lex_string(&mut cur);
                } else {
                    lex_raw_string(&mut cur, hashes);
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".to_string(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "0".to_string(),
                    line,
                });
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }

    Lexed {
        toks,
        comments: merge_line_comment_runs(comments),
        lines: source.lines().map(|l| l.to_string()).collect(),
    }
}

/// Detects a raw/byte/C string prefix at the cursor.  Returns
/// `(prefix_len_to_skip, fence_hash_count)`; `usize::MAX` hashes means
/// "escaped string body" (for `b"…"` / `c"…"` without `r`).
fn raw_string_prefix(cur: &Cursor<'_>) -> Option<(usize, usize)> {
    let b0 = cur.peek(0)?;
    let mut i;
    let mut raw = false;
    match b0 {
        b'r' => {
            raw = true;
            i = 1;
        }
        b'b' | b'c' => {
            i = 1;
            if cur.peek(1) == Some(b'r') {
                raw = true;
                i = 2;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek(i + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(i + hashes) == Some(b'"') {
            // skip prefix + hashes + opening quote
            return Some((i + hashes + 1, hashes));
        }
        None
    } else if cur.peek(i) == Some(b'"') {
        // b"..." / c"..." — escaped body, skip prefix only (lex_string
        // consumes the quote).
        Some((i, usize::MAX))
    } else {
        None
    }
}

/// Consumes a `"…"` string starting at the opening quote, honouring `\`
/// escapes (including `\"` and `\\`).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body (opening fence already skipped) until `"`
/// followed by `hashes` `#`s.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek(k) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime): after the
/// quote, an identifier run that is *not* closed by another quote is a
/// lifetime.  Escaped chars (`'\n'`) are always literals.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>, toks: &mut Vec<Tok>, line: u32) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some(b'\\') => {
            // escaped char literal: consume escape then to closing quote
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                cur.bump();
                if c == b'\'' {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: "''".to_string(),
                line,
            });
        }
        Some(c) if is_ident_start(c) => {
            // Identifier run: lifetime unless closed by a quote
            // immediately after one ident char (e.g. 'a').
            let mut len = 0usize;
            while let Some(k) = cur.peek(len) {
                if is_ident_continue(k) {
                    len += 1;
                } else {
                    break;
                }
            }
            if cur.peek(len) == Some(b'\'') {
                for _ in 0..=len {
                    cur.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "''".to_string(),
                    line,
                });
            } else {
                for _ in 0..len {
                    cur.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: "'_".to_string(),
                    line,
                });
            }
        }
        Some(_) => {
            // Non-identifier char literal like '(' or '0'.
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: "''".to_string(),
                line,
            });
        }
        None => {}
    }
}

/// Consumes a numeric literal (integers, floats, suffixes, exponents) —
/// loose on purpose; rules never inspect number contents, the lexer only
/// needs to not split `1.5e-3` into tokens that confuse path matching.
fn lex_number(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == b'_' {
            let at_exp_sign = (c == b'e' || c == b'E')
                && matches!(cur.peek(1), Some(b'+') | Some(b'-'))
                && matches!(cur.peek(2), Some(d) if d.is_ascii_digit());
            cur.bump();
            if at_exp_sign {
                cur.bump(); // sign
            }
        } else if c == b'.' && matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Merges runs of whole-line `//` comments on consecutive lines into one
/// logical comment, so a wrapped SAFETY/ORDERING justification ends where
/// its last line ends.  A comment only joins the previous run if nothing
/// but the comment sits on its line (i.e. it is not a trailing comment
/// after code — those stay separate).
fn merge_line_comment_runs(comments: Vec<Comment>) -> Vec<Comment> {
    let mut out: Vec<Comment> = Vec::new();
    for c in comments {
        if let Some(prev) = out.last_mut() {
            if c.whole_line
                && c.text.starts_with("//")
                && prev.whole_line
                && prev.text.starts_with("//")
                && c.start_line == prev.end_line + 1
                && c.start_line == c.end_line
            {
                prev.end_line = c.end_line;
                prev.text.push('\n');
                prev.text.push_str(&c.text);
                continue;
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// unsafe in a comment
/* unsafe in /* a nested */ block */
let s = "unsafe in a string";
let r = r#"unsafe in a raw "string""#;
let b = b"unsafe bytes";
let c = 'u';
fn real_unsafe() {}
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "leaked: {ids:?}");
        assert!(ids.contains(&"real_unsafe".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_following_tokens() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x } // 'quote");
        // Lifetimes surface as Lifetime tokens, not identifiers.
        assert_eq!(
            ids,
            ["fn", "f", "x", "str", "str", "x"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        let lifetimes = lex("fn f<'a>(x: &'a str) {}")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let ids = idents(r"let q = '\''; let n = '\n'; unsafe_tok();");
        assert!(ids.contains(&"unsafe_tok".to_string()));
    }

    #[test]
    fn line_comment_runs_merge() {
        let src = "// SAFETY: part one\n// and part two\nunsafe { }\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[0].end_line, 2);
        assert!(lexed.has_justification(3, "SAFETY:"));
    }

    #[test]
    fn trailing_comments_do_not_merge_with_next_line() {
        let src = "foo(); // trailing\n// standalone\nbar();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn justification_walks_over_attributes_and_blanks() {
        let src = "// SAFETY: fine\n#[inline(always)]\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.has_justification(4, "SAFETY:"));
        assert!(!lexed.has_justification(4, "ORDERING:"));
    }

    #[test]
    fn justification_does_not_walk_over_code() {
        let src = "// SAFETY: stale\nlet x = 1;\nunsafe { }\n";
        let lexed = lex(src);
        assert!(!lexed.has_justification(3, "SAFETY:"));
    }

    #[test]
    fn raw_string_fences_respected() {
        // The first `"#` inside the body must not close the r##-string.
        let src = r###"let x = r##"body with "# inside"##; unsafe_marker();"###;
        let ids = idents(src);
        assert!(ids.contains(&"unsafe_marker".to_string()));
        assert!(!ids.contains(&"body".to_string()));
    }

    #[test]
    fn token_lines_are_accurate() {
        let lexed = lex("a\nb\n\nc\n");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
