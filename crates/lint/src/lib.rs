//! nrsnn-lint: the workspace invariant checker.
//!
//! The repo's reproduction contract — replies depend only on
//! (model, input, seed), bit-identical across thread counts, SIMD
//! backends, wire formats and tracing states — rests on a handful of
//! source-level invariants: SAFETY comments on `unsafe`, ORDERING
//! comments on atomics, a fixed crate DAG, per-layer API deny lists and
//! an unwrap audit on the serving path.  This crate checks them
//! mechanically on every CI run.
//!
//! Std-only by design: the lint enforces the shims-only external
//! dependency policy, so it cannot itself depend on `syn` or `toml`.  It
//! carries a hand-rolled lexer ([`lexer`]) that understands comments,
//! strings, raw strings and char literals — enough to never mistake
//! `"unsafe"` in a string for the keyword — and a just-enough manifest
//! reader ([`workspace`]).
//!
//! Escape hatch: a violating line (or the line above it) may carry
//!
//! ```text
//! // nrsnn-lint: allow(<rule-id>) -- <reason>
//! ```
//!
//! The reason is mandatory and the rule ID must exist; malformed
//! directives are themselves findings and suppress nothing.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use rules::{Finding, RULES};

/// A parsed, valid allow directive.
struct Allow {
    rule: String,
    /// Inclusive line range the suppression covers: the (merged) comment
    /// that carries the directive, plus the line directly below it.
    first_line: u32,
    last_line: u32,
}

const DIRECTIVE: &str = "nrsnn-lint:";

/// Extracts allow directives from a file's comments.  Returns the valid
/// allows and the findings for malformed/unknown ones (which never
/// suppress anything).
fn parse_directives(rel_path: &str, lexed: &lexer::Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        for (line_off, comment_line) in c.text.lines().enumerate() {
            // A directive is a plain `//` line comment whose content starts
            // with the marker.  Doc comments (`///`, `//!`) never carry
            // directives — they may legitimately *describe* the grammar.
            let t = comment_line.trim_start();
            let content = match t.strip_prefix("//") {
                Some(rest) if !rest.starts_with('/') && !rest.starts_with('!') => rest.trim(),
                _ => continue,
            };
            let Some(rest) = content.strip_prefix(DIRECTIVE) else {
                continue;
            };
            let rest = rest.trim();
            let line = c.start_line + line_off as u32;
            let mut bad = |msg: String| {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line,
                    rule: "bad-allow",
                    message: msg,
                });
            };
            let Some(inner) = rest
                .strip_prefix("allow")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('('))
            else {
                bad("malformed directive: expected `nrsnn-lint: allow(<rule>) -- <reason>`".into());
                continue;
            };
            let Some(close) = inner.find(')') else {
                bad("malformed directive: missing `)` after the rule name".into());
                continue;
            };
            let rule = inner[..close].trim();
            let tail = inner[close + 1..].trim();
            if !rules::is_known_rule(rule) {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line,
                    rule: "unknown-rule",
                    message: format!(
                        "allow names unknown rule `{rule}`; known rules: {}",
                        rules::RULES
                            .iter()
                            .filter(|(r, _)| rules::is_known_rule(r))
                            .map(|(r, _)| *r)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
                continue;
            }
            let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
            if reason.is_empty() {
                bad(format!(
                    "allow({rule}) without a reason: append ` -- <why this site is exempt>`"
                ));
                continue;
            }
            allows.push(Allow {
                rule: rule.to_string(),
                first_line: c.start_line,
                last_line: c.end_line + 1,
            });
        }
    }
    (allows, findings)
}

/// Lints one file's source as if it lived at `rel_path` in the workspace.
/// The path drives every scope decision (crate membership, test-likeness,
/// wire/merge-path prefixes), which is what makes fixture testing honest.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let Some(class) = rules::classify(rel_path) else {
        return Vec::new();
    };
    let lexed = lexer::lex(src);
    let ctx = rules::FileCtx {
        rel_path,
        class,
        krate: config::crate_for_path(rel_path),
        test_regions: rules::test_regions(&lexed.toks),
        lexed: &lexed,
    };
    let raw = rules::run_file_rules(&ctx);
    let (allows, mut findings) = parse_directives(rel_path, &lexed);
    findings.extend(raw.into_iter().filter(|f| {
        !allows
            .iter()
            .any(|a| a.rule == f.rule && f.line >= a.first_line && f.line <= a.last_line)
    }));
    sort_findings(&mut findings);
    findings
}

/// Lints the whole workspace rooted at `root`: every `.rs` file plus the
/// manifest half of the layering rule.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = workspace::check_manifests(root)?;
    for (rel, abs) in workspace::rust_files(root)? {
        let src = std::fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &src));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n    // nrsnn-lint: allow(unsafe-needs-safety) -- exercised by the fixture harness\n    unsafe { g() }\n}\n";
        let f = lint_source("crates/tensor/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_bad_and_does_not_suppress() {
        let src =
            "fn f() {\n    // nrsnn-lint: allow(unsafe-needs-safety)\n    unsafe { g() }\n}\n";
        let f = lint_source("crates/tensor/src/x.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{f:?}");
        assert!(rules.contains(&"unsafe-needs-safety"), "{f:?}");
    }

    #[test]
    fn allow_of_unknown_rule_is_flagged() {
        let src = "// nrsnn-lint: allow(no-such-rule) -- because\nfn f() {}\n";
        let f = lint_source("crates/tensor/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-rule");
    }

    #[test]
    fn allow_of_wrong_rule_does_not_suppress_another() {
        let src = "fn f() {\n    // nrsnn-lint: allow(atomic-ordering) -- misdirected\n    unsafe { g() }\n}\n";
        let f = lint_source("crates/tensor/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-needs-safety");
    }

    #[test]
    fn meta_rules_cannot_be_allowed() {
        assert!(!rules::is_known_rule("bad-allow"));
        assert!(!rules::is_known_rule("unknown-rule"));
        assert!(rules::is_known_rule("layering"));
    }

    #[test]
    fn non_rust_and_fixture_paths_are_ignored() {
        assert!(lint_source("docs/ARCHITECTURE.md", "unsafe {}").is_empty());
        assert!(lint_source(
            "crates/lint/tests/fixtures/bad_unsafe.rs",
            "fn f() { unsafe { g() } }"
        )
        .is_empty());
    }
}
