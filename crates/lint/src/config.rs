//! The workspace contract, declared in one place.
//!
//! Everything the rule engine enforces that is *repo policy* (rather than
//! general Rust hygiene) lives in the tables below: the crate dependency
//! DAG, the shims-only external-dependency policy, the per-layer
//! forbidden-API entries and the files whose `Relaxed` atomics must be
//! justified.  To change an invariant, change the table — the diff then
//! *is* the policy change, reviewable on its own.

/// One workspace crate and the dependencies its layer is allowed.
#[derive(Debug, PartialEq, Eq)]
pub struct CrateSpec {
    /// Package name as in `Cargo.toml`.
    pub name: &'static str,
    /// Directory relative to the workspace root.
    pub dir: &'static str,
    /// Allowed `[dependencies]` — the layering DAG. Everything not listed
    /// here is a violation, so adding a dependency edge requires editing
    /// this table.
    pub deps: &'static [&'static str],
    /// Additional crates allowed in `[dev-dependencies]` (tests/benches
    /// may reach down-stack or pull in the test-harness shims).
    pub dev_deps: &'static [&'static str],
}

/// The only external (non-`nrsnn-*`) dependencies any crate may declare:
/// the offline in-tree shims.  This is the mechanical form of the
/// "shims-only / std-only" policy.
pub const SHIM_CRATES: &[&str] = &[
    "rand",
    "serde",
    "serde_derive",
    "serde_json",
    "criterion",
    "proptest",
];

/// The declared dependency DAG, bottom of the stack first.
///
/// Load-bearing edges that must stay *absent*:
/// * `nrsnn-snn` (and everything below it) must not depend on `nrsnn-obs`
///   — simulation layers carry no observability dependency; serve converts
///   snn's raw stage marks into obs timelines at the boundary.
/// * `nrsnn-obs` and `nrsnn-runtime` depend on nothing at all (std only).
/// * Only `nrsnn-serve`/`nrsnn-bench`/the umbrella may see `nrsnn-wire`.
pub const CRATES: &[CrateSpec] = &[
    CrateSpec {
        name: "nrsnn-runtime",
        dir: "crates/runtime",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-obs",
        dir: "crates/obs",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-tensor",
        dir: "crates/tensor",
        deps: &["rand", "serde"],
        dev_deps: &["proptest"],
    },
    CrateSpec {
        name: "nrsnn-dnn",
        dir: "crates/dnn",
        deps: &["nrsnn-tensor", "rand", "serde", "serde_json"],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-data",
        dir: "crates/data",
        deps: &["nrsnn-tensor", "rand", "serde"],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-snn",
        dir: "crates/snn",
        deps: &["nrsnn-tensor", "nrsnn-dnn", "rand", "serde"],
        dev_deps: &["proptest"],
    },
    CrateSpec {
        name: "nrsnn-noise",
        dir: "crates/noise",
        deps: &["nrsnn-tensor", "nrsnn-snn", "rand", "serde"],
        dev_deps: &["nrsnn-runtime"],
    },
    CrateSpec {
        name: "nrsnn",
        dir: "crates/core",
        deps: &[
            "nrsnn-tensor",
            "nrsnn-dnn",
            "nrsnn-data",
            "nrsnn-snn",
            "nrsnn-noise",
            "nrsnn-runtime",
            "rand",
            "serde",
        ],
        dev_deps: &["serde_json"],
    },
    CrateSpec {
        name: "nrsnn-wire",
        dir: "crates/wire",
        deps: &["nrsnn-dnn", "nrsnn-snn", "nrsnn-tensor"],
        dev_deps: &["proptest", "rand"],
    },
    CrateSpec {
        name: "nrsnn-serve",
        dir: "crates/serve",
        deps: &[
            "nrsnn-dnn",
            "nrsnn-noise",
            "nrsnn-obs",
            "nrsnn-runtime",
            "nrsnn-snn",
            "nrsnn-tensor",
            "nrsnn-wire",
            "rand",
            "serde",
            "serde_json",
        ],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-bench",
        dir: "crates/bench",
        deps: &[
            "nrsnn",
            "nrsnn-data",
            "nrsnn-noise",
            "nrsnn-runtime",
            "nrsnn-serve",
            "nrsnn-snn",
            "nrsnn-tensor",
            "nrsnn-wire",
            "rand",
            "serde_json",
        ],
        dev_deps: &["criterion"],
    },
    CrateSpec {
        name: "nrsnn-lint",
        dir: "crates/lint",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "nrsnn-repro",
        dir: ".",
        deps: &[
            "nrsnn",
            "nrsnn-data",
            "nrsnn-noise",
            "nrsnn-obs",
            "nrsnn-runtime",
            "nrsnn-serve",
            "nrsnn-snn",
            "nrsnn-tensor",
            "rand",
            "serde_json",
        ],
        dev_deps: &[],
    },
    // Shims: stand-ins for crates.io packages; they may only depend on
    // each other (and must stay leaf-like).
    CrateSpec {
        name: "rand",
        dir: "shims/rand",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "serde",
        dir: "shims/serde",
        deps: &["serde_derive"],
        dev_deps: &[],
    },
    CrateSpec {
        name: "serde_derive",
        dir: "shims/serde_derive",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "serde_json",
        dir: "shims/serde_json",
        deps: &["serde"],
        dev_deps: &[],
    },
    CrateSpec {
        name: "criterion",
        dir: "shims/criterion",
        deps: &[],
        dev_deps: &[],
    },
    CrateSpec {
        name: "proptest",
        dir: "shims/proptest",
        deps: &["rand"],
        dev_deps: &[],
    },
];

/// Looks a crate up by the directory prefix of a workspace-relative path
/// (`crates/serve/src/server.rs` → `nrsnn-serve`). Files directly under
/// the root (`src/`, `tests/`, `examples/`) belong to the umbrella.
pub fn crate_for_path(rel_path: &str) -> Option<&'static CrateSpec> {
    CRATES
        .iter()
        .filter(|c| c.dir != ".")
        .find(|c| {
            rel_path.starts_with(c.dir) && rel_path.as_bytes().get(c.dir.len()) == Some(&b'/')
        })
        .or_else(|| {
            // Root umbrella package: src/, tests/, examples/ at the top.
            if rel_path.starts_with("src/")
                || rel_path.starts_with("tests/")
                || rel_path.starts_with("examples/")
            {
                CRATES.iter().find(|c| c.dir == ".")
            } else {
                None
            }
        })
}

/// Where a forbidden-API entry applies.
pub struct ApiDeny {
    /// Path segments to match as a `::`-separated token sequence. A
    /// one-segment entry is a bare identifier (macros match `name !`).
    pub path: &'static [&'static str],
    /// `true` if this is a macro invocation (`name!`).
    pub is_macro: bool,
    /// Crates whose library sources are exempt.
    pub exempt_crates: &'static [&'static str],
    /// If non-empty, the entry only applies to crates in this list.
    pub only_crates: &'static [&'static str],
    /// If non-empty, the entry only applies to files whose
    /// workspace-relative path starts with one of these prefixes.
    pub only_path_prefixes: &'static [&'static str],
    /// What is wrong with the API, shown in the diagnostic.
    pub why: &'static str,
}

/// The per-layer API deny list.  All entries apply to library sources
/// (`src/` of a workspace crate) outside `#[cfg(test)]` regions; tests,
/// benches and examples are exempt by construction.
pub const API_DENY: &[ApiDeny] = &[
    ApiDeny {
        path: &["std", "time", "Instant"],
        is_macro: false,
        // obs owns the one process-wide monotonic clock; the lint CLI has
        // no timing at all but is listed for symmetry with SystemTime.
        exempt_crates: &["nrsnn-obs"],
        only_crates: &[],
        only_path_prefixes: &[],
        why: "raw monotonic time outside crates/obs breaks the single-epoch clock discipline; \
              use nrsnn_obs::Clock (or justify with an allow)",
    },
    ApiDeny {
        path: &["std", "time", "SystemTime"],
        is_macro: false,
        exempt_crates: &["nrsnn-obs"],
        only_crates: &[],
        only_path_prefixes: &[],
        why: "wall-clock time is nondeterministic and must not reach library code; \
              only crates/obs may observe it",
    },
    ApiDeny {
        path: &["println"],
        is_macro: true,
        // The lint binary's findings are its product; everything else in
        // the workspace routes output through the caller.
        exempt_crates: &["nrsnn-lint"],
        only_crates: &[],
        only_path_prefixes: &[],
        why: "library crates must not write to stdout; return data or take a writer",
    },
    ApiDeny {
        path: &["eprintln"],
        is_macro: true,
        exempt_crates: &["nrsnn-lint"],
        only_crates: &[],
        only_path_prefixes: &[],
        why: "library crates must not write to stderr; return a typed error instead",
    },
    ApiDeny {
        path: &["thread", "sleep"],
        is_macro: false,
        exempt_crates: &[],
        only_crates: &["nrsnn-serve", "nrsnn-runtime"],
        only_path_prefixes: &[],
        why: "sleeping in serve/runtime code hides latency and breaks shutdown timeliness; \
              use condvar waits with deadlines (or justify with an allow)",
    },
    ApiDeny {
        path: &["HashMap"],
        is_macro: false,
        exempt_crates: &[],
        only_crates: &[],
        only_path_prefixes: WIRE_PATH_PREFIXES,
        why: "HashMap iteration order is nondeterministic; a wire/serialization path must use \
              BTreeMap or explicitly sorted keys",
    },
    ApiDeny {
        path: &["HashSet"],
        is_macro: false,
        exempt_crates: &[],
        only_crates: &[],
        only_path_prefixes: WIRE_PATH_PREFIXES,
        why: "HashSet iteration order is nondeterministic; a wire/serialization path must use \
              BTreeSet or explicitly sorted keys",
    },
];

/// Files that feed bytes onto a wire or into a serialized artifact — the
/// scope of the hash-iteration entries above.
pub const WIRE_PATH_PREFIXES: &[&str] = &[
    "crates/wire/src/",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/binary.rs",
    "crates/serve/src/metrics.rs",
];

/// Files whose `Ordering::Relaxed` sites sit on *merge paths* — places
/// where per-shard state is combined into one observable value — and must
/// therefore carry an `// ORDERING:` justification.  `SeqCst`, `Acquire`,
/// `Release` and `AcqRel` need one everywhere in library code.
pub const RELAXED_AUDIT_PREFIXES: &[&str] = &[
    "crates/obs/src/",
    "crates/tensor/src/simd/",
    "crates/serve/src/metrics.rs",
];

/// The crate whose `unwrap()`/`expect()` calls are audited (reachable
/// panics in the serving path take the whole worker down).
pub const UNWRAP_AUDIT_PREFIX: &str = "crates/serve/src/";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_edges_point_at_known_crates() {
        let names: Vec<&str> = CRATES.iter().map(|c| c.name).collect();
        for c in CRATES {
            for d in c.deps.iter().chain(c.dev_deps) {
                assert!(names.contains(d), "{} lists unknown dependency {d}", c.name);
            }
        }
    }

    #[test]
    fn external_deps_are_shims_only() {
        for c in CRATES {
            for d in c.deps.iter().chain(c.dev_deps) {
                let internal = d.starts_with("nrsnn");
                assert!(
                    internal || SHIM_CRATES.contains(d),
                    "{}: external dependency {d} is not a shim",
                    c.name
                );
            }
        }
    }

    #[test]
    fn snn_and_below_never_depend_on_obs() {
        for name in [
            "nrsnn-tensor",
            "nrsnn-dnn",
            "nrsnn-data",
            "nrsnn-snn",
            "nrsnn-noise",
            "nrsnn",
        ] {
            let spec = CRATES.iter().find(|c| c.name == name).expect("in table");
            assert!(
                !spec.deps.contains(&"nrsnn-obs") && !spec.dev_deps.contains(&"nrsnn-obs"),
                "{name} must not depend on nrsnn-obs"
            );
        }
    }

    #[test]
    fn path_to_crate_mapping() {
        assert_eq!(
            crate_for_path("crates/serve/src/server.rs").map(|c| c.name),
            Some("nrsnn-serve")
        );
        assert_eq!(
            crate_for_path("crates/snn/tests/coding_simd_proptest.rs").map(|c| c.name),
            Some("nrsnn-snn")
        );
        assert_eq!(
            crate_for_path("tests/alloc_regression.rs").map(|c| c.name),
            Some("nrsnn-repro")
        );
        assert_eq!(
            crate_for_path("shims/serde_json/src/lib.rs").map(|c| c.name),
            Some("serde_json")
        );
        assert_eq!(crate_for_path("docs/ARCHITECTURE.md"), None);
    }
}
