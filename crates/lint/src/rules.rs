//! The rule engine: each invariant as a pass over one lexed file.
//!
//! Every rule has a stable ID (the string in [`RULES`]), emits
//! `file:line` diagnostics, and can be suppressed at a single site with
//! the inline escape hatch
//!
//! ```text
//! // nrsnn-lint: allow(<rule-id>) -- <reason>
//! ```
//!
//! on the violating line or the line above it.  The reason is mandatory —
//! an allow without one is itself a violation (`bad-allow`), and naming a
//! rule that does not exist is `unknown-rule`, so the escape hatch cannot
//! rot silently.

use crate::config::{
    self, ApiDeny, CrateSpec, API_DENY, RELAXED_AUDIT_PREFIXES, UNWRAP_AUDIT_PREFIX,
};
use crate::lexer::{Lexed, Tok, TokKind};

/// Every rule ID the engine can emit, including the two meta rules that
/// police the escape hatch itself.
pub const RULES: &[(&str, &str)] = &[
    (
        "unsafe-needs-safety",
        "every `unsafe` block/fn/impl/trait must be preceded by a `// SAFETY:` comment \
         (or a `# Safety` doc section)",
    ),
    (
        "layering",
        "crate dependencies must match the DAG declared in crates/lint/src/config.rs; \
         only shims may be external",
    ),
    (
        "forbidden-api",
        "per-layer API deny list (raw std::time outside obs, prints in libraries, \
         sleeps in serve/runtime, hash iteration on wire paths)",
    ),
    (
        "atomic-ordering",
        "SeqCst/Acquire/Release/AcqRel everywhere, and Relaxed on merge paths, must carry \
         an `// ORDERING:` justification comment",
    ),
    (
        "unwrap-audit",
        "unwrap()/expect() in crates/serve/src must carry an `// UNWRAP:` justification \
         (infallibility or poisoning argument)",
    ),
    (
        "bad-allow",
        "a `// nrsnn-lint: allow(...)` directive must carry a `-- <reason>`",
    ),
    (
        "unknown-rule",
        "a `// nrsnn-lint: allow(...)` directive names a rule that does not exist",
    ),
];

/// True if `id` is a real, suppressible rule.
pub fn is_known_rule(id: &str) -> bool {
    // The meta rules police the escape hatch and cannot themselves be
    // allowed away.
    RULES
        .iter()
        .any(|(r, _)| *r == id && *r != "bad-allow" && *r != "unknown-rule")
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule ID.
    pub rule: &'static str,
    pub message: String,
}

/// How a file participates in the rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a workspace crate — full rule set.
    LibSrc,
    /// `tests/`, `benches/`, `examples/` — unsafe and layering only.
    TestLike,
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    pub rel_path: &'a str,
    pub class: FileClass,
    pub krate: Option<&'static CrateSpec>,
    pub lexed: &'a Lexed,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileCtx<'_> {
    fn in_test_region(&self, tok_idx: usize) -> bool {
        self.class == FileClass::TestLike
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| tok_idx >= a && tok_idx <= b)
    }
}

/// Classifies a workspace-relative path; `None` means "not lintable Rust"
/// (docs, fixtures, generated artifacts).
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if !rel_path.ends_with(".rs") || rel_path.contains("/fixtures/") {
        return None;
    }
    let test_like = ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel_path.starts_with(d) || rel_path.contains(&format!("/{d}")));
    Some(if test_like {
        FileClass::TestLike
    } else {
        FileClass::LibSrc
    })
}

/// Computes token-index ranges for `#[cfg(test)]` and `#[test]` items, so
/// scoped rules skip test code without needing an AST: after the
/// attribute, the item extends to its first top-level `;` or through its
/// matching brace pair.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && matches!(toks.get(i + 1), Some(t) if t.text == "[") {
            let (attr_end, is_test) = scan_attribute(toks, i + 1);
            if is_test {
                let mut j = attr_end + 1;
                // Skip any further attributes on the same item.
                while j < toks.len()
                    && toks[j].text == "#"
                    && matches!(toks.get(j + 1), Some(t) if t.text == "[")
                {
                    let (e, _) = scan_attribute(toks, j + 1);
                    j = e + 1;
                }
                let end = scan_item_end(toks, j);
                regions.push((i, end));
                i = attr_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Scans an attribute starting at its `[`; returns (index of matching `]`,
/// whether the attribute is `cfg(test)` or `test`).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let inner: Vec<&str> = toks[open + 1..j.min(toks.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
    (j.min(toks.len().saturating_sub(1)), is_test)
}

/// From the first token of an item, finds the index of its terminating
/// `;` or of the `}` matching its first body brace.
fn scan_item_end(toks: &[Tok], start: usize) -> usize {
    let mut j = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return j,
            "{" if paren == 0 && bracket == 0 => {
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return toks.len().saturating_sub(1);
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Runs every file-scoped rule. (The manifest half of `layering` runs in
/// [`crate::workspace`], which owns Cargo.toml access.)
pub fn run_file_rules(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_unsafe_needs_safety(ctx, &mut findings);
    rule_layering_use_paths(ctx, &mut findings);
    if ctx.class == FileClass::LibSrc {
        rule_forbidden_api(ctx, &mut findings);
        rule_atomic_ordering(ctx, &mut findings);
        rule_unwrap_audit(ctx, &mut findings);
    }
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileCtx<'_>,
    line: u32,
    rule: &'static str,
    msg: String,
) {
    findings.push(Finding {
        path: ctx.rel_path.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// `unsafe-needs-safety`: every `unsafe` keyword (block, fn, impl, trait —
/// in any file, tests included) must sit under a `// SAFETY:` comment or a
/// `# Safety` doc section, adjacently (blank/attribute lines may
/// intervene).
fn rule_unsafe_needs_safety(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.lexed.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let form = match ctx.lexed.toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            Some("extern") => "unsafe extern",
            _ => "unsafe block",
        };
        if ctx.lexed.has_justification(t.line, "SAFETY:")
            || ctx.lexed.has_justification(t.line, "# Safety")
        {
            continue;
        }
        push(
            findings,
            ctx,
            t.line,
            "unsafe-needs-safety",
            format!("{form} without an adjacent `// SAFETY:` comment or `# Safety` doc section"),
        );
    }
}

/// The `use`-path half of `layering`: an identifier naming another
/// workspace crate (`nrsnn_obs`, `nrsnn`, ...) may only appear in a file
/// whose crate declares that dependency (dev-dependencies count only in
/// test-like files).
fn rule_layering_use_paths(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let Some(krate) = ctx.krate else {
        return;
    };
    for t in &ctx.lexed.toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        if !(t.text == "nrsnn" || t.text.starts_with("nrsnn_")) {
            continue;
        }
        let dep_name = t.text.replace('_', "-");
        let Some(dep) = config::CRATES.iter().find(|c| c.name == dep_name) else {
            // Not a workspace crate (e.g. a local variable named
            // `nrsnn_threads`) — not a layering question.
            continue;
        };
        if dep.name == krate.name {
            continue; // self-reference (crate name in its own tests/benches)
        }
        let allowed = krate.deps.contains(&dep.name)
            || (ctx.class == FileClass::TestLike && krate.dev_deps.contains(&dep.name));
        if !allowed {
            push(
                findings,
                ctx,
                t.line,
                "layering",
                format!(
                    "{} must not reach into {} (edge absent from the DAG in \
                     crates/lint/src/config.rs)",
                    krate.name, dep.name
                ),
            );
        }
    }
}

/// `forbidden-api`: token-sequence matching of the deny table, per entry
/// scope, outside test regions.
fn rule_forbidden_api(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // Shims emulate external crates (criterion prints reports, rand reads
    // clocks); repo API policy does not reach into their stand-in bodies.
    if ctx.rel_path.starts_with("shims/") {
        return;
    }
    let crate_name = ctx.krate.map(|c| c.name).unwrap_or("");
    for entry in API_DENY {
        if entry.exempt_crates.contains(&crate_name) {
            continue;
        }
        if !entry.only_crates.is_empty() && !entry.only_crates.contains(&crate_name) {
            continue;
        }
        if !entry.only_path_prefixes.is_empty()
            && !entry
                .only_path_prefixes
                .iter()
                .any(|p| ctx.rel_path.starts_with(p))
        {
            continue;
        }
        match_deny_entry(ctx, entry, findings);
    }
}

fn match_deny_entry(ctx: &FileCtx<'_>, entry: &ApiDeny, findings: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    let display = entry.path.join("::");
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        if toks[i].kind != TokKind::Ident || toks[i].text != entry.path[0] {
            continue;
        }
        if entry.path.len() == 1 {
            if entry.is_macro && !matches!(toks.get(i + 1), Some(t) if t.text == "!") {
                continue;
            }
            push(
                findings,
                ctx,
                toks[i].line,
                "forbidden-api",
                format!("use of `{display}`: {}", entry.why),
            );
            continue;
        }
        // Multi-segment path: match `seg :: seg :: ...`, with the final
        // segment either direct or inside a `use`-tree brace group.
        let mut j = i + 1;
        let mut seg = 1usize;
        let mut matched_line = None;
        loop {
            let double_colon = matches!(toks.get(j), Some(t) if t.text == ":")
                && matches!(toks.get(j + 1), Some(t) if t.text == ":");
            if !double_colon {
                break;
            }
            j += 2;
            let last = seg == entry.path.len() - 1;
            match toks.get(j) {
                Some(t) if t.kind == TokKind::Ident && t.text == entry.path[seg] => {
                    if last {
                        matched_line = Some(t.line);
                        break;
                    }
                    seg += 1;
                    j += 1;
                }
                Some(t) if last && t.text == "{" => {
                    // use std::time::{Duration, Instant};
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if toks[k].kind == TokKind::Ident && toks[k].text == entry.path[seg]
                                {
                                    matched_line = Some(toks[k].line);
                                }
                            }
                        }
                        k += 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        if let Some(line) = matched_line {
            push(
                findings,
                ctx,
                line,
                "forbidden-api",
                format!("use of `{display}`: {}", entry.why),
            );
        }
    }
}

/// `atomic-ordering`: `Ordering::{SeqCst,Acquire,Release,AcqRel}` sites
/// need an `// ORDERING:` justification everywhere in library code;
/// `Ordering::Relaxed` needs one on the declared merge paths.  (The
/// `std::cmp::Ordering` variants never collide — `Less`/`Equal`/`Greater`
/// are not in either list.)
fn rule_atomic_ordering(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    let relaxed_audited = RELAXED_AUDIT_PREFIXES
        .iter()
        .any(|p| ctx.rel_path.starts_with(p));
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        if toks[i].kind != TokKind::Ident || toks[i].text != "Ordering" {
            continue;
        }
        let double_colon = matches!(toks.get(i + 1), Some(t) if t.text == ":")
            && matches!(toks.get(i + 2), Some(t) if t.text == ":");
        if !double_colon {
            continue;
        }
        let Some(variant) = toks.get(i + 3) else {
            continue;
        };
        let strong = matches!(
            variant.text.as_str(),
            "SeqCst" | "Acquire" | "Release" | "AcqRel"
        );
        let relaxed = variant.text == "Relaxed";
        if !(strong || (relaxed && relaxed_audited)) {
            continue;
        }
        if ctx.lexed.has_justification(variant.line, "ORDERING:") {
            continue;
        }
        let why = if strong {
            "a non-Relaxed ordering buys synchronisation that must be named"
        } else {
            "Relaxed on a merge path must argue why no synchronisation is needed"
        };
        push(
            findings,
            ctx,
            variant.line,
            "atomic-ordering",
            format!(
                "`Ordering::{}` without an adjacent `// ORDERING:` justification ({why})",
                variant.text
            ),
        );
    }
}

/// `unwrap-audit`: `.unwrap()` / `.expect(` in `crates/serve/src` outside
/// test code must carry an `// UNWRAP:` justification naming the
/// infallibility (or poisoning-propagation) argument.
fn rule_unwrap_audit(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.rel_path.starts_with(UNWRAP_AUDIT_PREFIX) {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        let method_call =
            i > 0 && toks[i - 1].text == "." && matches!(toks.get(i + 1), Some(n) if n.text == "(");
        if !method_call {
            continue;
        }
        if ctx.lexed.has_justification(t.line, "UNWRAP:") {
            continue;
        }
        push(
            findings,
            ctx,
            t.line,
            "unwrap-audit",
            format!(
                "`.{}()` in serving code without an `// UNWRAP:` justification — convert \
                 reachable failures to ServeError, justify the provably infallible",
                t.text
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_for<'a>(rel_path: &'a str, lexed: &'a Lexed) -> FileCtx<'a> {
        let class = classify(rel_path).expect("lintable");
        FileCtx {
            rel_path,
            class,
            krate: config::crate_for_path(rel_path),
            test_regions: test_regions(&lexed.toks),
            lexed,
        }
    }

    fn run(rel_path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        run_file_rules(&ctx_for(rel_path, &lexed))
    }

    #[test]
    fn unsafe_without_safety_flags_and_with_passes() {
        let bad = run("crates/tensor/src/x.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "unsafe-needs-safety");
        let good = run(
            "crates/tensor/src/x.rs",
            "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g() }\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn layering_flags_snn_reaching_obs() {
        let f = run("crates/snn/src/x.rs", "use nrsnn_obs::Clock;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layering");
        // ...but serve may use obs (edge exists in the DAG).
        assert!(run("crates/serve/src/x.rs", "use nrsnn_obs::Clock;\n").is_empty());
    }

    #[test]
    fn forbidden_api_catches_instant_in_use_group() {
        let f = run(
            "crates/snn/src/x.rs",
            "use std::time::{Duration, Instant};\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "forbidden-api");
        // obs is the exempt home of raw clocks.
        assert!(run("crates/obs/src/x.rs", "use std::time::Instant;\n").is_empty());
    }

    #[test]
    fn atomic_ordering_needs_comment_and_cmp_ordering_is_ignored() {
        let f = run(
            "crates/serve/src/x.rs",
            "fn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "atomic-ordering");
        assert!(run(
            "crates/serve/src/x.rs",
            "fn f(a: &AtomicU64) {\n    // ORDERING: publishes the flag to readers.\n    a.store(1, Ordering::SeqCst);\n}\n",
        )
        .is_empty());
        // std::cmp::Ordering variants never trip the rule.
        assert!(run(
            "crates/snn/src/x.rs",
            "fn f(a: f32, b: f32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n",
        )
        .is_empty());
    }

    #[test]
    fn relaxed_audited_only_on_merge_paths() {
        let in_audit = run(
            "crates/obs/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(in_audit.len(), 1);
        let outside = run(
            "crates/serve/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
        );
        assert!(outside.is_empty(), "{outside:?}");
    }

    #[test]
    fn unwrap_audit_scoped_to_serve_src() {
        let f = run(
            "crates/serve/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unwrap-audit");
        assert!(run(
            "crates/serve/src/x.rs",
            "fn f(x: Option<u32>) -> u32 {\n    // UNWRAP: x is checked Some by the caller.\n    x.unwrap()\n}\n",
        )
        .is_empty());
        assert!(run(
            "crates/snn/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"
        )
        .is_empty());
    }

    #[test]
    fn test_regions_silence_scoped_rules() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(run("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        let covered: Vec<&str> = lexed.toks[a..=b].iter().map(|t| t.text.as_str()).collect();
        assert!(covered.contains(&"unwrap"));
        assert!(!covered.contains(&"c"));
    }
}
