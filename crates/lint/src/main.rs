//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p nrsnn-lint            # lint the enclosing workspace
//! cargo run -p nrsnn-lint -- <root>  # lint an explicit root
//! cargo run -p nrsnn-lint -- --rules # print the rule table
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for (id, what) in nrsnn_lint::RULES {
            println!("{id:<22} {what}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: nrsnn-lint [--rules] [<workspace-root>]");
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("nrsnn-lint: could not locate a workspace root (no Cargo.toml with [workspace] upward of the current directory)");
                return ExitCode::from(2);
            }
        },
    };
    match nrsnn_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("nrsnn-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
            println!("nrsnn-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nrsnn-lint: io error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks upward from the current directory to the first Cargo.toml that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && has_workspace_table(&manifest) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn has_workspace_table(manifest: &Path) -> bool {
    std::fs::read_to_string(manifest)
        .map(|t| t.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
