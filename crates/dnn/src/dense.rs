//! Fully connected (dense) layer.

use nrsnn_tensor::{he_normal, matmul, matmul_slices, transpose, transpose_slices, Tensor};
use rand::Rng;

use crate::{DnnError, Layer, LayerDescriptor, Mode, Result};

/// A fully connected layer computing `y = x·Wᵀ + b` on batches
/// (`batch x in_features` → `batch x out_features`).
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
    /// Reusable buffer for the transposed weights of the forward pass.
    scratch_wt: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with He-normal initialised weights and zero bias.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] if either dimension is zero.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(DnnError::InvalidConfig(
                "dense layer dimensions must be non-zero".to_string(),
            ));
        }
        Ok(Dense {
            name: format!("dense_{in_features}x{out_features}"),
            weights: he_normal(rng, &[out_features, in_features], in_features),
            bias: Tensor::zeros(&[out_features]),
            grad_weights: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
            in_features,
            out_features,
            scratch_wt: Vec::new(),
        })
    }

    /// Creates a dense layer from explicit weights `(out x in)` and bias.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] if the shapes are inconsistent.
    pub fn from_weights(weights: Tensor, bias: Tensor) -> Result<Self> {
        if weights.shape().rank() != 2 || bias.shape().rank() != 1 {
            return Err(DnnError::InvalidConfig(
                "dense weights must be rank 2 and bias rank 1".to_string(),
            ));
        }
        let (out_features, in_features) = (weights.dims()[0], weights.dims()[1]);
        if bias.len() != out_features {
            return Err(DnnError::InvalidConfig(format!(
                "bias length {} does not match output width {out_features}",
                bias.len()
            )));
        }
        Ok(Dense {
            name: format!("dense_{in_features}x{out_features}"),
            grad_weights: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
            weights,
            bias,
            in_features,
            out_features,
            scratch_wt: Vec::new(),
        })
    }

    /// The weight matrix `(out x in)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the weight matrix (used by tests and conversion).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.in_features)
    }

    fn output_width(&self) -> Option<usize> {
        Some(self.out_features)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.forward_into(input, mode, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) -> Result<()> {
        if input.shape().rank() != 2 || input.dims()[1] != self.in_features {
            return Err(DnnError::InputWidthMismatch {
                expected: self.in_features,
                actual: if input.shape().rank() == 2 {
                    input.dims()[1]
                } else {
                    input.len()
                },
                layer: self.name.clone(),
            });
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        // Wᵀ into the layer scratch, x·Wᵀ into `out`'s reused buffer — the
        // same kernels (hence the same values) as the allocating path, which
        // used `matmul(input, &transpose(&self.weights)?)`.
        self.scratch_wt.clear();
        self.scratch_wt
            .resize(self.in_features * self.out_features, 0.0);
        transpose_slices(
            self.weights.as_slice(),
            self.out_features,
            self.in_features,
            &mut self.scratch_wt,
        );
        let batch = input.dims()[0];
        let data = out.reset_zeroed(&[batch, self.out_features]);
        matmul_slices(
            input.as_slice(),
            batch,
            self.in_features,
            &self.scratch_wt,
            self.out_features,
            data,
        );
        let bias = self.bias.as_slice();
        for b in 0..batch {
            for (j, &bv) in bias.iter().enumerate() {
                data[b * self.out_features + j] += bv;
            }
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| DnnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        // dW = gradᵀ · x, db = Σ_batch grad, dx = grad · W
        let grad_t = transpose(grad_output)?;
        let dw = matmul(&grad_t, input)?;
        self.grad_weights.add_scaled_inplace(&dw, 1.0)?;

        let batch = grad_output.dims()[0];
        let gv = grad_output.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for b in 0..batch {
            for j in 0..self.out_features {
                gb[j] += gv[b * self.out_features + j];
            }
        }
        let dx = matmul(grad_output, &self.weights)?;
        Ok(dx)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        visitor(&mut self.weights, &self.grad_weights);
        visitor(&mut self.bias, &self.grad_bias);
    }

    fn zero_grad(&mut self) {
        self.grad_weights = Tensor::zeros(&[self.out_features, self.in_features]);
        self.grad_bias = Tensor::zeros(&[self.out_features]);
    }

    fn descriptor(&self) -> Option<LayerDescriptor> {
        Some(LayerDescriptor::Linear {
            weights: self.weights.clone(),
            bias: self.bias.clone(),
        })
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_with_known_weights() -> Dense {
        // 2 inputs -> 3 outputs
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_slice(&[0.0, 0.5, -1.0]);
        Dense::from_weights(w, b).unwrap()
    }

    #[test]
    fn forward_known_values() {
        let mut layer = layer_with_known_weights();
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let y = layer.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 3.5, 4.0]);
    }

    #[test]
    fn forward_into_matches_forward_and_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(&mut rng, 4, 3).unwrap();
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, 1.0, 0.0, -1.0, 2.0], &[2, 4]).unwrap();
        let reference = layer.forward(&x, Mode::Infer).unwrap();
        let mut out = Tensor::from_slice(&[9.0]); // wrong shape: must be reset
        layer.forward_into(&x, Mode::Infer, &mut out).unwrap();
        assert_eq!(out, reference);
        // A second call must reuse the buffer and reproduce the result.
        layer.forward_into(&x, Mode::Infer, &mut out).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut layer = layer_with_known_weights();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert!(layer.forward(&x, Mode::Infer).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = layer_with_known_weights();
        let g = Tensor::zeros(&[1, 3]);
        assert!(layer.backward(&g).is_err());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(&mut rng, 3, 2).unwrap();
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.5], &[1, 3]).unwrap();

        // scalar loss = sum(output)
        let y = layer.forward(&x, Mode::Train).unwrap();
        let _ = y;
        let grad_out = Tensor::ones(&[1, 2]);
        layer.zero_grad();
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let dx = layer.backward(&grad_out).unwrap();

        // finite difference on the input
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp, Mode::Infer).unwrap().sum();
            let fm = layer.forward(&xm, Mode::Infer).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(&mut rng, 2, 2).unwrap();
        let x = Tensor::from_vec(vec![0.7, -0.4], &[1, 2]).unwrap();
        let grad_out = Tensor::ones(&[1, 2]);

        layer.zero_grad();
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let _ = layer.backward(&grad_out).unwrap();
        let mut analytic = Tensor::zeros(&[2, 2]);
        layer.visit_params(&mut |_, g| {
            if g.dims().len() == 2 {
                analytic = g.clone();
            }
        });

        let eps = 1e-3;
        for idx in 0..4 {
            let orig = layer.weights.as_slice()[idx];
            layer.weights_mut().as_mut_slice()[idx] = orig + eps;
            let fp = layer.forward(&x, Mode::Infer).unwrap().sum();
            layer.weights_mut().as_mut_slice()[idx] = orig - eps;
            let fm = layer.forward(&x, Mode::Infer).unwrap().sum();
            layer.weights_mut().as_mut_slice()[idx] = orig;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - analytic.as_slice()[idx]).abs() < 1e-2,
                "weight grad {idx}: fd {fd} analytic {}",
                analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn descriptor_exports_weights() {
        let layer = layer_with_known_weights();
        match layer.descriptor().unwrap() {
            LayerDescriptor::Linear { weights, bias } => {
                assert_eq!(weights.dims(), &[3, 2]);
                assert_eq!(bias.len(), 3);
            }
            other => panic!("unexpected descriptor {other:?}"),
        }
    }

    #[test]
    fn param_count() {
        let layer = layer_with_known_weights();
        assert_eq!(layer.param_count(), 9);
    }

    #[test]
    fn from_weights_validates_shapes() {
        assert!(Dense::from_weights(Tensor::zeros(&[3]), Tensor::zeros(&[3])).is_err());
        assert!(Dense::from_weights(Tensor::zeros(&[3, 2]), Tensor::zeros(&[2])).is_err());
    }
}
