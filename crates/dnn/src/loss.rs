//! Loss functions.

use nrsnn_tensor::Tensor;

use crate::{DnnError, Result, Softmax};

/// Softmax cross-entropy loss over integer class labels.
///
/// The forward pass returns the mean loss over the batch and the backward
/// pass returns the gradient with respect to the *logits* (softmax and
/// cross-entropy are fused for numerical stability).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Computes the mean cross-entropy loss of `logits` (`batch x classes`)
    /// against integer `labels`.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidLabels`] if the batch sizes differ or a
    /// label is out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> Result<f32> {
        let (probs, _) = self.check_and_softmax(logits, labels)?;
        let classes = logits.dims()[1];
        let pv = probs.as_slice();
        let mut total = 0.0f32;
        for (b, &label) in labels.iter().enumerate() {
            let p = pv[b * classes + label].max(1e-12);
            total -= p.ln();
        }
        Ok(total / labels.len() as f32)
    }

    /// Computes both the mean loss and the gradient of the loss with respect
    /// to the logits: `(softmax(logits) - onehot(labels)) / batch`.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidLabels`] for mismatched or out-of-range
    /// labels.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
        let (probs, batch) = self.check_and_softmax(logits, labels)?;
        let classes = logits.dims()[1];
        let pv = probs.as_slice();
        let mut grad = pv.to_vec();
        let mut total = 0.0f32;
        for (b, &label) in labels.iter().enumerate() {
            let p = pv[b * classes + label].max(1e-12);
            total -= p.ln();
            grad[b * classes + label] -= 1.0;
        }
        let scale = 1.0 / batch as f32;
        for g in &mut grad {
            *g *= scale;
        }
        Ok((
            total / batch as f32,
            Tensor::from_vec(grad, &[batch, classes])?,
        ))
    }

    fn check_and_softmax(&self, logits: &Tensor, labels: &[usize]) -> Result<(Tensor, usize)> {
        if logits.shape().rank() != 2 {
            return Err(DnnError::InvalidLabels(
                "logits must be rank 2 (batch x classes)".to_string(),
            ));
        }
        let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
        if labels.len() != batch {
            return Err(DnnError::InvalidLabels(format!(
                "batch size {batch} but {} labels",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DnnError::InvalidLabels(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        Ok((Softmax::apply(logits)?, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[2, 4]);
        let l = loss.loss(&logits, &[0, 3]).unwrap();
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]).unwrap();
        assert!(loss.loss(&logits, &[0]).unwrap() < 0.01);
        assert!(loss.loss(&logits, &[1]).unwrap() > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.0, -0.6], &[2, 3]).unwrap();
        let labels = [2usize, 0usize];
        let (_, grad) = loss.loss_and_grad(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let fd =
                (loss.loss(&lp, &labels).unwrap() - loss.loss(&lm, &labels).unwrap()) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "logit {i}: fd {fd} analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let (_, grad) = loss.loss_and_grad(&logits, &[1]).unwrap();
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn label_validation() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(loss.loss(&logits, &[0]).is_err());
        assert!(loss.loss(&logits, &[0, 3]).is_err());
    }
}
