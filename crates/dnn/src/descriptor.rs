//! Conversion-oriented layer descriptions.
//!
//! DNN-to-SNN conversion (in `nrsnn-snn`) does not need the full training
//! machinery of a layer, only its weights and geometry.  [`LayerDescriptor`]
//! is the narrow interface between the two crates.

use nrsnn_tensor::{Conv2dGeometry, Pool2dGeometry, Tensor};
use serde::{Deserialize, Serialize};

/// A description of a trained layer sufficient for DNN-to-SNN conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerDescriptor {
    /// A fully connected layer `y = W·x + b` with `W: (out x in)`.
    Linear {
        /// Weight matrix of shape `(out_features, in_features)`.
        weights: Tensor,
        /// Bias vector of length `out_features`.
        bias: Tensor,
    },
    /// A 2-D convolution layer with flattened kernel bank
    /// `W: (out_channels x in_channels·k·k)`.
    Conv {
        /// Flattened kernel bank of shape `(out_channels, patch_len)`.
        weights: Tensor,
        /// Bias vector of length `out_channels`.
        bias: Tensor,
        /// Input geometry of the convolution.
        geometry: Conv2dGeometry,
    },
    /// Average pooling (parameter-free, preserved during conversion because
    /// averaging commutes with spike counting).
    AvgPool {
        /// Pooling geometry.
        geometry: Pool2dGeometry,
    },
}

impl LayerDescriptor {
    /// Number of output features produced by the described layer.
    pub fn output_width(&self) -> usize {
        match self {
            LayerDescriptor::Linear { weights, .. } => weights.dims()[0],
            LayerDescriptor::Conv {
                weights, geometry, ..
            } => weights.dims()[0] * geometry.out_positions(),
            LayerDescriptor::AvgPool { geometry } => geometry.out_len(),
        }
    }

    /// Number of input features consumed by the described layer.
    pub fn input_width(&self) -> usize {
        match self {
            LayerDescriptor::Linear { weights, .. } => weights.dims()[1],
            LayerDescriptor::Conv { geometry, .. } => geometry.in_len(),
            LayerDescriptor::AvgPool { geometry } => geometry.in_len(),
        }
    }

    /// Returns `true` if the layer has trainable weights (Linear / Conv).
    pub fn has_weights(&self) -> bool {
        !matches!(self, LayerDescriptor::AvgPool { .. })
    }

    /// A short kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerDescriptor::Linear { .. } => "linear",
            LayerDescriptor::Conv { .. } => "conv",
            LayerDescriptor::AvgPool { .. } => "avgpool",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_widths() {
        let d = LayerDescriptor::Linear {
            weights: Tensor::zeros(&[3, 5]),
            bias: Tensor::zeros(&[3]),
        };
        assert_eq!(d.output_width(), 3);
        assert_eq!(d.input_width(), 5);
        assert!(d.has_weights());
        assert_eq!(d.kind(), "linear");
    }

    #[test]
    fn conv_widths() {
        let geometry = Conv2dGeometry::new(1, 4, 4, 3, 1, 1).unwrap();
        let d = LayerDescriptor::Conv {
            weights: Tensor::zeros(&[2, 9]),
            bias: Tensor::zeros(&[2]),
            geometry,
        };
        assert_eq!(d.input_width(), 16);
        assert_eq!(d.output_width(), 2 * 16);
    }

    #[test]
    fn avgpool_widths() {
        let geometry = Pool2dGeometry::new(2, 4, 4, 2, 2).unwrap();
        let d = LayerDescriptor::AvgPool { geometry };
        assert_eq!(d.input_width(), 32);
        assert_eq!(d.output_width(), 8);
        assert!(!d.has_weights());
    }
}
