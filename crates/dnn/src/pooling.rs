//! Average and max pooling layers.
//!
//! Average pooling is preferred in conversion-oriented architectures because
//! averaging commutes with spike counting, so the pooled SNN layer can simply
//! average post-synaptic currents.  Max pooling is provided for completeness
//! and for pure-DNN baselines.

use nrsnn_tensor::{Pool2dGeometry, Tensor};

use crate::{DnnError, Layer, LayerDescriptor, Mode, Result};

/// Average pooling over `(C, H, W)` feature maps flattened per row.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    name: String,
    geometry: Pool2dGeometry,
    cached_batch: Option<usize>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(geometry: Pool2dGeometry) -> Self {
        AvgPool2d {
            name: format!(
                "avgpool_{}x{}x{}_w{}s{}",
                geometry.channels,
                geometry.in_height,
                geometry.in_width,
                geometry.window,
                geometry.stride
            ),
            geometry,
            cached_batch: None,
        }
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> &Pool2dGeometry {
        &self.geometry
    }
}

fn check_width(len: usize, expected: usize, name: &str) -> Result<()> {
    if len != expected {
        return Err(DnnError::InputWidthMismatch {
            expected,
            actual: len,
            layer: name.to_string(),
        });
    }
    Ok(())
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.geometry.in_len())
    }

    fn output_width(&self) -> Option<usize> {
        Some(self.geometry.out_len())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        check_width(input.dims()[1], self.geometry.in_len(), &self.name)?;
        let g = &self.geometry;
        let batch = input.dims()[0];
        let (oh, ow) = (g.out_height(), g.out_width());
        let xv = input.as_slice();
        let mut out = vec![0.0f32; batch * g.out_len()];
        let win_area = (g.window * g.window) as f32;
        for b in 0..batch {
            for c in 0..g.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..g.window {
                            for kx in 0..g.window {
                                let iy = oy * g.stride + ky;
                                let ix = ox * g.stride + kx;
                                acc += xv[b * g.in_len()
                                    + c * g.in_height * g.in_width
                                    + iy * g.in_width
                                    + ix];
                            }
                        }
                        out[b * g.out_len() + c * oh * ow + oy * ow + ox] = acc / win_area;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_batch = Some(batch);
        }
        Ok(Tensor::from_vec(out, &[batch, g.out_len()])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let batch = self
            .cached_batch
            .ok_or_else(|| DnnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        let g = &self.geometry;
        let (oh, ow) = (g.out_height(), g.out_width());
        let gv = grad_output.as_slice();
        let mut out = vec![0.0f32; batch * g.in_len()];
        let win_area = (g.window * g.window) as f32;
        for b in 0..batch {
            for c in 0..g.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let grad = gv[b * g.out_len() + c * oh * ow + oy * ow + ox] / win_area;
                        for ky in 0..g.window {
                            for kx in 0..g.window {
                                let iy = oy * g.stride + ky;
                                let ix = ox * g.stride + kx;
                                out[b * g.in_len()
                                    + c * g.in_height * g.in_width
                                    + iy * g.in_width
                                    + ix] += grad;
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, &[batch, g.in_len()])?)
    }

    fn descriptor(&self) -> Option<LayerDescriptor> {
        Some(LayerDescriptor::AvgPool {
            geometry: self.geometry,
        })
    }
}

/// Max pooling over `(C, H, W)` feature maps flattened per row.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    geometry: Pool2dGeometry,
    cached_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    pub fn new(geometry: Pool2dGeometry) -> Self {
        MaxPool2d {
            name: format!(
                "maxpool_{}x{}x{}_w{}s{}",
                geometry.channels,
                geometry.in_height,
                geometry.in_width,
                geometry.window,
                geometry.stride
            ),
            geometry,
            cached_argmax: None,
            cached_batch: 0,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.geometry.in_len())
    }

    fn output_width(&self) -> Option<usize> {
        Some(self.geometry.out_len())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        check_width(input.dims()[1], self.geometry.in_len(), &self.name)?;
        let g = &self.geometry;
        let batch = input.dims()[0];
        let (oh, ow) = (g.out_height(), g.out_width());
        let xv = input.as_slice();
        let mut out = vec![0.0f32; batch * g.out_len()];
        let mut argmax = vec![0usize; batch * g.out_len()];
        for b in 0..batch {
            for c in 0..g.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..g.window {
                            for kx in 0..g.window {
                                let iy = oy * g.stride + ky;
                                let ix = ox * g.stride + kx;
                                let idx = b * g.in_len()
                                    + c * g.in_height * g.in_width
                                    + iy * g.in_width
                                    + ix;
                                if xv[idx] > best {
                                    best = xv[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = b * g.out_len() + c * oh * ow + oy * ow + ox;
                        out[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_argmax = Some(argmax);
            self.cached_batch = batch;
        }
        Ok(Tensor::from_vec(out, &[batch, g.out_len()])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax =
            self.cached_argmax
                .as_ref()
                .ok_or_else(|| DnnError::BackwardBeforeForward {
                    layer: self.name.clone(),
                })?;
        let g = &self.geometry;
        let gv = grad_output.as_slice();
        let mut out = vec![0.0f32; self.cached_batch * g.in_len()];
        for (oidx, &iidx) in argmax.iter().enumerate() {
            out[iidx] += gv[oidx];
        }
        Ok(Tensor::from_vec(out, &[self.cached_batch, g.in_len()])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry_2x2() -> Pool2dGeometry {
        Pool2dGeometry::new(1, 4, 4, 2, 2).unwrap()
    }

    fn input_4x4() -> Tensor {
        Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 16],
        )
        .unwrap()
    }

    #[test]
    fn avg_pool_known_values() {
        let mut layer = AvgPool2d::new(geometry_2x2());
        let y = layer.forward(&input_4x4(), Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn max_pool_known_values() {
        let mut layer = MaxPool2d::new(geometry_2x2());
        let y = layer.forward(&input_4x4(), Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let mut layer = AvgPool2d::new(geometry_2x2());
        let _ = layer.forward(&input_4x4(), Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![4.0, 0.0, 0.0, 0.0], &[1, 4]).unwrap();
        let dx = layer.backward(&g).unwrap();
        // 4.0 spread over the 2x2 top-left window -> 1.0 each.
        assert_eq!(dx.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(dx.get(&[0, 5]).unwrap(), 1.0);
        assert_eq!(dx.get(&[0, 2]).unwrap(), 0.0);
        assert!((dx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut layer = MaxPool2d::new(geometry_2x2());
        let _ = layer.forward(&input_4x4(), Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let dx = layer.backward(&g).unwrap();
        // maxima are at flat indices 5, 7, 13, 15
        assert_eq!(dx.get(&[0, 5]).unwrap(), 1.0);
        assert_eq!(dx.get(&[0, 7]).unwrap(), 2.0);
        assert_eq!(dx.get(&[0, 13]).unwrap(), 3.0);
        assert_eq!(dx.get(&[0, 15]).unwrap(), 4.0);
        assert_eq!(dx.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn pooling_preserves_mean_for_avg() {
        let mut layer = AvgPool2d::new(geometry_2x2());
        let x = input_4x4();
        let y = layer.forward(&x, Mode::Infer).unwrap();
        assert!((x.mean() - y.mean()).abs() < 1e-6);
    }

    #[test]
    fn wrong_width_rejected() {
        let mut layer = AvgPool2d::new(geometry_2x2());
        let x = Tensor::zeros(&[1, 15]);
        assert!(layer.forward(&x, Mode::Infer).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut a = AvgPool2d::new(geometry_2x2());
        let mut m = MaxPool2d::new(geometry_2x2());
        assert!(a.backward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(m.backward(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    fn avgpool_descriptor_present_maxpool_absent() {
        let a = AvgPool2d::new(geometry_2x2());
        let m = MaxPool2d::new(geometry_2x2());
        assert!(a.descriptor().is_some());
        assert!(m.descriptor().is_none());
    }
}
