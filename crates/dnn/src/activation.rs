//! Activation layers: ReLU and softmax.

use nrsnn_tensor::Tensor;

use crate::{DnnError, Layer, Mode, Result};

/// Rectified linear unit, `y = max(0, x)`.
///
/// In the DNN-to-SNN conversion this layer is what the spiking (IF) neuron
/// replaces: ReLU activations map onto firing rates / spike times.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn input_width(&self) -> Option<usize> {
        None
    }

    fn output_width(&self) -> Option<usize> {
        None
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| DnnError::BackwardBeforeForward {
                layer: "relu".to_string(),
            })?;
        Ok(input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })?)
    }
}

/// Softmax over the last dimension of a `(batch x classes)` tensor.
///
/// Normally the loss fuses softmax with cross-entropy; this standalone layer
/// exists for inference-time probability outputs and for tests.
#[derive(Debug, Clone, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a new softmax layer.
    pub fn new() -> Self {
        Softmax {
            cached_output: None,
        }
    }

    /// Applies a numerically stable softmax to each row of `logits`.
    ///
    /// # Errors
    /// Returns a tensor error if `logits` is not rank 2.
    pub fn apply(logits: &Tensor) -> Result<Tensor> {
        if logits.shape().rank() != 2 {
            return Err(DnnError::InvalidConfig(format!(
                "softmax expects rank-2 logits, got rank {}",
                logits.shape().rank()
            )));
        }
        let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
        let lv = logits.as_slice();
        let mut out = vec![0.0f32; batch * classes];
        for b in 0..batch {
            let row = &lv[b * classes..(b + 1) * classes];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (j, e) in exps.iter().enumerate() {
                out[b * classes + j] = e / sum;
            }
        }
        Ok(Tensor::from_vec(out, &[batch, classes])?)
    }
}

impl Layer for Softmax {
    fn name(&self) -> &str {
        "softmax"
    }

    fn input_width(&self) -> Option<usize> {
        None
    }

    fn output_width(&self) -> Option<usize> {
        None
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = Softmax::apply(input)?;
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or_else(|| DnnError::BackwardBeforeForward {
                layer: "softmax".to_string(),
            })?;
        // dL/dx_i = y_i * (g_i - Σ_j g_j y_j), rowwise.
        let (batch, classes) = (y.dims()[0], y.dims()[1]);
        let yv = y.as_slice();
        let gv = grad_output.as_slice();
        let mut out = vec![0.0f32; batch * classes];
        for b in 0..batch {
            let dot: f32 = (0..classes)
                .map(|j| gv[b * classes + j] * yv[b * classes + j])
                .sum();
            for j in 0..classes {
                out[b * classes + j] = yv[b * classes + j] * (gv[b * classes + j] - dot);
            }
        }
        Ok(Tensor::from_vec(out, &[batch, classes])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = relu.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[1, 3]).unwrap();
        let _ = relu.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap();
        let dx = relu.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = Softmax::apply(&logits).unwrap();
        for b in 0..2 {
            let row = p.row(b).unwrap();
            assert!((row.sum() - 1.0).abs() < 1e-5);
            assert!(row.as_slice().iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.add_scalar(100.0);
        let pa = Softmax::apply(&a).unwrap();
        let pb = Softmax::apply(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rejects_rank1() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(Softmax::apply(&v).is_err());
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1, 3])).is_err());
    }
}
