//! # nrsnn-dnn
//!
//! A from-scratch deep-neural-network substrate used to train the analog
//! (ReLU) networks that are later converted to spiking networks by
//! `nrsnn-snn`.  The paper's noise-robustness study relies on DNN-to-SNN
//! conversion, so a trainable DNN stack is a prerequisite substrate.
//!
//! The crate provides:
//!
//! * a [`Layer`] trait with dense, convolutional, pooling, ReLU, dropout and
//!   flatten layers, each with full forward/backward passes;
//! * softmax cross-entropy loss ([`loss::SoftmaxCrossEntropy`]);
//! * SGD-with-momentum and Adam optimizers;
//! * a [`Sequential`] container with a training loop, evaluation and
//!   activation recording (needed for data-based threshold balancing during
//!   conversion);
//! * weight (de)serialization.
//!
//! ## Example
//!
//! ```
//! use nrsnn_dnn::{Dense, Relu, Sequential, Sgd, SoftmaxCrossEntropy, TrainConfig};
//! use nrsnn_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nrsnn_dnn::DnnError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(&mut rng, 4, 8)?);
//! net.push(Relu::new());
//! net.push(Dense::new(&mut rng, 8, 2)?);
//!
//! // Tiny two-class problem: classify by sign of the first feature.
//! let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0], &[2, 4])?;
//! let y = vec![0usize, 1usize];
//! let cfg = TrainConfig { epochs: 50, batch_size: 2, ..TrainConfig::default() };
//! let mut opt = Sgd::new(0.1, 0.9);
//! net.fit(&x, &y, &mut opt, &SoftmaxCrossEntropy::new(), &cfg, &mut rng)?;
//! assert!(net.evaluate(&x, &y)?.accuracy > 0.99);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod activation;
mod conv;
mod dense;
mod descriptor;
mod dropout;
mod error;
mod flatten;
mod layer;
pub mod loss;
mod metrics;
mod network;
mod optimizer;
mod pooling;
mod serialize;

pub use activation::{Relu, Softmax};
pub use conv::Conv2d;
pub use dense::Dense;
pub use descriptor::LayerDescriptor;
pub use dropout::Dropout;
pub use error::DnnError;
pub use flatten::Flatten;
pub use layer::{Layer, Mode};
pub use loss::SoftmaxCrossEntropy;
pub use metrics::{accuracy, confusion_matrix, EvalReport};
pub use network::{Sequential, TrainConfig, TrainReport};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use pooling::{AvgPool2d, MaxPool2d};
pub use serialize::{load_network_weights, save_network_weights, NetworkWeights};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DnnError>;
