//! The [`Sequential`] network container and training loop.

use nrsnn_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{
    accuracy, DnnError, EvalReport, Layer, LayerDescriptor, Mode, Optimizer, Result,
    SoftmaxCrossEntropy,
};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Whether to shuffle the training set every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr_decay: 1.0,
            shuffle: true,
        }
    }
}

/// Per-epoch training statistics returned by [`Sequential::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f32,
}

/// A feed-forward stack of [`Layer`]s applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Reusable ping-pong buffer for [`Sequential::predict_into`], kept on
    /// the network so repeated inference reuses it across calls.
    scratch: Tensor,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer to the network.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of all layers in order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs a forward pass through all layers.
    ///
    /// # Errors
    /// Propagates layer errors (width mismatches etc.).
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs a forward pass and additionally returns the output of every
    /// layer (used for activation statistics during DNN-to-SNN conversion).
    ///
    /// # Errors
    /// Propagates layer errors.
    pub fn forward_collect(&mut self, input: &Tensor) -> Result<Vec<Tensor>> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, Mode::Infer)?;
            outputs.push(x.clone());
        }
        Ok(outputs)
    }

    /// Inference helper returning raw logits.
    ///
    /// # Errors
    /// Propagates layer errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Infer)
    }

    /// Into-buffer inference: writes the logits into `out`, ping-ponging the
    /// activations through `out` and the network's persistent scratch tensor
    /// so layers with an allocation-free [`Layer::forward_into`] (e.g.
    /// `Dense`) reuse buffers throughout the stack **and across calls**.
    /// Produces the same values as [`Sequential::predict`].
    ///
    /// # Errors
    /// Propagates layer errors.
    pub fn predict_into(&mut self, input: &Tensor, out: &mut Tensor) -> Result<()> {
        // Destructured so `scratch` and the layer iteration borrow disjoint
        // fields.
        let Sequential { layers, scratch } = self;
        let Some((first, rest)) = layers.split_first_mut() else {
            *out = input.clone();
            return Ok(());
        };
        first.forward_into(input, Mode::Infer, out)?;
        for layer in rest {
            std::mem::swap(out, scratch);
            layer.forward_into(scratch, Mode::Infer, out)?;
        }
        Ok(())
    }

    /// Back-propagates a loss gradient through every layer.
    ///
    /// # Errors
    /// Propagates layer errors.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies one optimizer step over all parameters.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        optimizer.begin_step();
        let mut key = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |param, grad| {
                optimizer.step(key, param, grad);
                key += 1;
            });
        }
    }

    /// Conversion descriptors of all weighted / pooling layers, in order.
    pub fn descriptors(&self) -> Vec<LayerDescriptor> {
        self.layers.iter().filter_map(|l| l.descriptor()).collect()
    }

    /// For every descriptor-bearing layer, the `q`-th percentile of its
    /// post-nonlinearity activations over the given probe inputs.
    ///
    /// This is the statistic used for data-based threshold balancing in the
    /// DNN-to-SNN conversion.
    ///
    /// # Errors
    /// Propagates layer errors.
    pub fn activation_percentiles(&mut self, probe: &Tensor, q: f32) -> Result<Vec<f32>> {
        let outputs = self.forward_collect(probe)?;
        let mut result = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.descriptor().is_none() {
                continue;
            }
            // Use the output of the following ReLU if there is one, so the
            // statistic reflects the non-negative activations the SNN must
            // represent.
            let source = if i + 1 < self.layers.len() && self.layers[i + 1].name() == "relu" {
                &outputs[i + 1]
            } else {
                &outputs[i]
            };
            let positive = source.map(|x| x.max(0.0));
            result.push(positive.percentile(q).max(1e-6));
        }
        Ok(result)
    }

    /// Trains the network with mini-batch gradient descent.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] for an empty network or zero batch
    /// size and [`DnnError::InvalidLabels`] for mismatched labels.
    pub fn fit<R: Rng>(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        loss: &SoftmaxCrossEntropy,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Result<TrainReport> {
        if self.is_empty() {
            return Err(DnnError::InvalidConfig(
                "cannot train an empty network".to_string(),
            ));
        }
        if config.batch_size == 0 || config.epochs == 0 {
            return Err(DnnError::InvalidConfig(
                "epochs and batch_size must be non-zero".to_string(),
            ));
        }
        if inputs.shape().rank() != 2 || inputs.dims()[0] != labels.len() {
            return Err(DnnError::InvalidLabels(format!(
                "inputs shape {:?} incompatible with {} labels",
                inputs.dims(),
                labels.len()
            )));
        }
        let samples = labels.len();
        let mut order: Vec<usize> = (0..samples).collect();
        let mut epoch_losses = Vec::with_capacity(config.epochs);

        for _epoch in 0..config.epochs {
            if config.shuffle {
                order.shuffle(rng);
            }
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size) {
                let batch_x = Tensor::stack_rows(
                    &chunk
                        .iter()
                        .map(|&i| inputs.row(i))
                        .collect::<std::result::Result<Vec<_>, _>>()?,
                )?;
                let batch_y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

                self.zero_grad();
                let logits = self.forward(&batch_x, Mode::Train)?;
                let (batch_loss, grad) = loss.loss_and_grad(&logits, &batch_y)?;
                self.backward(&grad)?;
                self.apply_gradients(optimizer);

                epoch_loss += batch_loss;
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f32);
            optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
        }

        let final_train_accuracy = self.evaluate(inputs, labels)?.accuracy;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }

    /// Evaluates classification accuracy and loss over a labelled set.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidLabels`] for mismatched labels.
    pub fn evaluate(&mut self, inputs: &Tensor, labels: &[usize]) -> Result<EvalReport> {
        let logits = self.predict(inputs)?;
        let acc = accuracy(&logits, labels)?;
        let loss = SoftmaxCrossEntropy::new().loss(&logits, labels).ok();
        Ok(EvalReport {
            accuracy: acc,
            mean_loss: loss,
            samples: labels.len(),
        })
    }

    /// Visits every `(parameter, gradient)` pair of the whole network.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Dropout, Relu, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_dataset() -> (Tensor, Vec<usize>) {
        // XOR-like separable task with a margin so a small MLP can learn it.
        let x = Tensor::from_vec(
            vec![
                0.0, 0.0, //
                0.0, 1.0, //
                1.0, 0.0, //
                1.0, 1.0,
            ],
            &[4, 2],
        )
        .unwrap();
        let y = vec![0usize, 1, 1, 0];
        (x, y)
    }

    fn build_mlp(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(rng, 2, 16).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(rng, 16, 2).unwrap());
        net
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_mlp(&mut rng);
        let (x, y) = xor_dataset();
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut opt = Sgd::new(0.5, 0.9);
        let report = net
            .fit(
                &x,
                &y,
                &mut opt,
                &SoftmaxCrossEntropy::new(),
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.epoch_losses.len(), 300);
        assert!(
            report.final_train_accuracy > 0.99,
            "acc {}",
            report.final_train_accuracy
        );
        // Loss should decrease substantially.
        assert!(report.epoch_losses[299] < report.epoch_losses[0] * 0.5);
    }

    #[test]
    fn predict_into_matches_predict() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = build_mlp(&mut rng);
        let (x, _) = xor_dataset();
        let reference = net.predict(&x).unwrap();
        let mut out = Tensor::from_slice(&[1.0, 2.0]); // wrong shape: must be reset
        net.predict_into(&x, &mut out).unwrap();
        assert_eq!(out, reference);
        // Empty networks pass the input through, like forward().
        let mut empty = Sequential::new();
        empty.predict_into(&x, &mut out).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn empty_network_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        let (x, y) = xor_dataset();
        let mut opt = Sgd::new(0.1, 0.0);
        assert!(net
            .fit(
                &x,
                &y,
                &mut opt,
                &SoftmaxCrossEntropy::new(),
                &TrainConfig::default(),
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn zero_batch_size_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_mlp(&mut rng);
        let (x, y) = xor_dataset();
        let cfg = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        let mut opt = Sgd::new(0.1, 0.0);
        assert!(net
            .fit(
                &x,
                &y,
                &mut opt,
                &SoftmaxCrossEntropy::new(),
                &cfg,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn descriptors_skip_activations_and_dropout() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(&mut rng, 4, 8).unwrap());
        net.push(Relu::new());
        net.push(Dropout::new(0.2, 0).unwrap());
        net.push(Dense::new(&mut rng, 8, 3).unwrap());
        let d = net.descriptors();
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.kind() == "linear"));
    }

    #[test]
    fn activation_percentiles_are_positive_and_per_layer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = build_mlp(&mut rng);
        let (x, _) = xor_dataset();
        let p = net.activation_percentiles(&x, 99.9).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = {
            let mut n = Sequential::new();
            n.push(Dense::new(&mut rng, 3, 5).unwrap());
            n.push(Dense::new(&mut rng, 5, 2).unwrap());
            n
        };
        assert_eq!(net.param_count(), (3 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn debug_lists_layer_names() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = build_mlp(&mut rng);
        let dbg = format!("{net:?}");
        assert!(dbg.contains("relu"));
    }
}
