//! Dropout regularisation.
//!
//! Dropout matters for this reproduction beyond its usual regularisation
//! role: the paper (§III) attributes part of TTFS coding's robustness to the
//! *all-or-none* activation statistics induced by training the source DNN
//! with dropout, so converted networks should be trained with it enabled.

use nrsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DnnError, Layer, Mode, Result};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; inference is a
/// no-op.
#[derive(Debug, Clone)]
pub struct Dropout {
    probability: f32,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `probability` and a
    /// deterministic internal RNG seeded with `seed`.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] unless `0.0 <= probability < 1.0`.
    pub fn new(probability: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&probability) {
            return Err(DnnError::InvalidConfig(format!(
                "dropout probability must be in [0, 1), got {probability}"
            )));
        }
        Ok(Dropout {
            probability,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        })
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.probability
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn input_width(&self) -> Option<usize> {
        None
    }

    fn output_width(&self) -> Option<usize> {
        None
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Infer => Ok(input.clone()),
            Mode::Train => {
                if self.probability == 0.0 {
                    self.cached_mask = Some(Tensor::ones(&[input.len()]));
                    return Ok(input.clone());
                }
                let keep = 1.0 - self.probability;
                let mask_data: Vec<f32> = (0..input.len())
                    .map(|_| {
                        if self.rng.gen::<f32>() < self.probability {
                            0.0
                        } else {
                            1.0 / keep
                        }
                    })
                    .collect();
                let mask = Tensor::from_vec(mask_data, &[input.len()])?;
                let flat = input.reshape(&[input.len()])?;
                let out = flat.mul(&mask)?.reshape(input.dims())?;
                self.cached_mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or_else(|| DnnError::BackwardBeforeForward {
                layer: "dropout".to_string(),
            })?;
        let flat = grad_output.reshape(&[grad_output.len()])?;
        Ok(flat.mul(mask)?.reshape(grad_output.dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 0).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = d.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 7).unwrap();
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeroed {zeros}");
        // survivors are scaled to preserve expectation
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[1, 100]);
        let dx = d.backward(&g).unwrap();
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 1).unwrap();
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        let y = d.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }

    #[test]
    fn no_descriptor_for_conversion() {
        let d = Dropout::new(0.3, 0).unwrap();
        assert!(d.descriptor().is_none());
    }
}
