//! 2-D convolution layer implemented via `im2col`.

use nrsnn_tensor::{col2im, he_normal, im2col, matmul, transpose, Conv2dGeometry, Tensor};
use rand::Rng;

use crate::{DnnError, Layer, LayerDescriptor, Mode, Result};

/// A 2-D convolution over feature maps stored as flattened `(C, H, W)` rows
/// of a `(batch x C·H·W)` tensor.
///
/// The kernel bank is stored flattened as `(out_channels x in_channels·k·k)`
/// so that the forward pass is a single matrix multiplication per sample
/// against the `im2col` patch matrix.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    geometry: Conv2dGeometry,
    out_channels: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initialised kernels.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] if `out_channels` is zero or the
    /// geometry is invalid.
    pub fn new<R: Rng>(rng: &mut R, geometry: Conv2dGeometry, out_channels: usize) -> Result<Self> {
        if out_channels == 0 {
            return Err(DnnError::InvalidConfig(
                "conv2d requires at least one output channel".to_string(),
            ));
        }
        let patch = geometry.patch_len();
        Ok(Conv2d {
            name: format!(
                "conv_{}x{}x{}_k{}s{}p{}_to{}",
                geometry.in_channels,
                geometry.in_height,
                geometry.in_width,
                geometry.kernel,
                geometry.stride,
                geometry.padding,
                out_channels
            ),
            geometry,
            out_channels,
            weights: he_normal(rng, &[out_channels, patch], patch),
            bias: Tensor::zeros(&[out_channels]),
            grad_weights: Tensor::zeros(&[out_channels, patch]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: Vec::new(),
        })
    }

    /// Creates a convolution layer from explicit flattened kernels and bias.
    ///
    /// # Errors
    /// Returns [`DnnError::InvalidConfig`] if shapes are inconsistent with the
    /// geometry.
    pub fn from_weights(geometry: Conv2dGeometry, weights: Tensor, bias: Tensor) -> Result<Self> {
        if weights.shape().rank() != 2 || weights.dims()[1] != geometry.patch_len() {
            return Err(DnnError::InvalidConfig(format!(
                "conv weights must be (out_channels x {}), got {:?}",
                geometry.patch_len(),
                weights.dims()
            )));
        }
        let out_channels = weights.dims()[0];
        if bias.len() != out_channels {
            return Err(DnnError::InvalidConfig(format!(
                "conv bias length {} does not match {out_channels} output channels",
                bias.len()
            )));
        }
        Ok(Conv2d {
            name: format!("conv_loaded_to{out_channels}"),
            geometry,
            out_channels,
            grad_weights: Tensor::zeros(&[out_channels, geometry.patch_len()]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: Vec::new(),
            weights,
            bias,
        })
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geometry
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Flattened kernel bank `(out_channels x patch_len)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    fn out_features(&self) -> usize {
        self.out_channels * self.geometry.out_positions()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.geometry.in_len())
    }

    fn output_width(&self) -> Option<usize> {
        Some(self.out_features())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.dims()[1] != self.geometry.in_len() {
            return Err(DnnError::InputWidthMismatch {
                expected: self.geometry.in_len(),
                actual: if input.shape().rank() == 2 {
                    input.dims()[1]
                } else {
                    input.len()
                },
                layer: self.name.clone(),
            });
        }
        let batch = input.dims()[0];
        let positions = self.geometry.out_positions();
        let mut out = vec![0.0f32; batch * self.out_features()];
        if mode == Mode::Train {
            self.cached_cols = Vec::with_capacity(batch);
        }
        let wt = transpose(&self.weights)?; // (patch x out_ch)
        for b in 0..batch {
            let sample = input.row(b)?;
            let cols = im2col(&sample, &self.geometry)?; // (positions x patch)
            let prod = matmul(&cols, &wt)?; // (positions x out_ch)
            let pv = prod.as_slice();
            let bias = self.bias.as_slice();
            for c in 0..self.out_channels {
                for p in 0..positions {
                    out[b * self.out_features() + c * positions + p] =
                        pv[p * self.out_channels + c] + bias[c];
                }
            }
            if mode == Mode::Train {
                self.cached_cols.push(cols);
            }
        }
        Ok(Tensor::from_vec(out, &[batch, self.out_features()])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_cols.is_empty() {
            return Err(DnnError::BackwardBeforeForward {
                layer: self.name.clone(),
            });
        }
        let batch = grad_output.dims()[0];
        let positions = self.geometry.out_positions();
        let mut grad_input = vec![0.0f32; batch * self.geometry.in_len()];
        let gv = grad_output.as_slice();
        for b in 0..batch {
            // Reassemble grad for this sample as (positions x out_ch).
            let mut g = vec![0.0f32; positions * self.out_channels];
            for c in 0..self.out_channels {
                for p in 0..positions {
                    g[p * self.out_channels + c] = gv[b * self.out_features() + c * positions + p];
                }
            }
            let g = Tensor::from_vec(g, &[positions, self.out_channels])?;
            let cols = &self.cached_cols[b];
            // dW += gᵀ (out_ch x positions) · cols (positions x patch)
            let gt = transpose(&g)?;
            let dw = matmul(&gt, cols)?;
            self.grad_weights.add_scaled_inplace(&dw, 1.0)?;
            // db += column sums of g
            let gb = self.grad_bias.as_mut_slice();
            let gvs = g.as_slice();
            for p in 0..positions {
                for c in 0..self.out_channels {
                    gb[c] += gvs[p * self.out_channels + c];
                }
            }
            // dcols = g (positions x out_ch) · W (out_ch x patch)
            let dcols = matmul(&g, &self.weights)?;
            let dinput = col2im(&dcols, &self.geometry)?;
            let dst = &mut grad_input[b * self.geometry.in_len()..(b + 1) * self.geometry.in_len()];
            for (d, &s) in dst.iter_mut().zip(dinput.as_slice()) {
                *d += s;
            }
        }
        Ok(Tensor::from_vec(
            grad_input,
            &[batch, self.geometry.in_len()],
        )?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        visitor(&mut self.weights, &self.grad_weights);
        visitor(&mut self.bias, &self.grad_bias);
    }

    fn zero_grad(&mut self) {
        self.grad_weights = Tensor::zeros(&[self.out_channels, self.geometry.patch_len()]);
        self.grad_bias = Tensor::zeros(&[self.out_channels]);
    }

    fn descriptor(&self) -> Option<LayerDescriptor> {
        Some(LayerDescriptor::Conv {
            weights: self.weights.clone(),
            bias: self.bias.clone(),
            geometry: self.geometry,
        })
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_kernel_layer() -> Conv2d {
        // 1x3x3 input, 1x1 kernel with weight 1 -> output equals input.
        let geometry = Conv2dGeometry::new(1, 3, 3, 1, 1, 0).unwrap();
        let weights = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let bias = Tensor::zeros(&[1]);
        Conv2d::from_weights(geometry, weights, bias).unwrap()
    }

    #[test]
    fn identity_convolution_preserves_input() {
        let mut layer = identity_kernel_layer();
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[1, 9]).unwrap();
        let y = layer.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn averaging_kernel_known_values() {
        // 2x2 kernel of 0.25 over a 2x2 input: single output = mean.
        let geometry = Conv2dGeometry::new(1, 2, 2, 2, 1, 0).unwrap();
        let weights = Tensor::from_vec(vec![0.25; 4], &[1, 4]).unwrap();
        let bias = Tensor::from_slice(&[1.0]);
        let mut layer = Conv2d::from_weights(geometry, weights, bias).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[1, 4]).unwrap();
        let y = layer.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[4.0]); // mean 3.0 + bias 1.0
    }

    #[test]
    fn output_width_matches_geometry() {
        let mut rng = StdRng::seed_from_u64(0);
        let geometry = Conv2dGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let layer = Conv2d::new(&mut rng, geometry, 4).unwrap();
        assert_eq!(layer.output_width(), Some(4 * 64));
        assert_eq!(layer.input_width(), Some(3 * 64));
        assert_eq!(layer.param_count(), 4 * 27 + 4);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let geometry = Conv2dGeometry::new(1, 4, 4, 3, 1, 0).unwrap();
        let mut layer = Conv2d::new(&mut rng, geometry, 2).unwrap();
        let x_data: Vec<f32> = (0..16).map(|i| (i as f32) / 16.0 - 0.5).collect();
        let x = Tensor::from_vec(x_data, &[1, 16]).unwrap();

        layer.zero_grad();
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::ones(&[1, layer.out_features()]);
        let dx = layer.backward(&grad_out).unwrap();

        let eps = 1e-2;
        for i in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp, Mode::Infer).unwrap().sum();
            let fm = layer.forward(&xm, Mode::Infer).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 5e-2,
                "input grad {i}: fd {fd} analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn from_weights_validates() {
        let geometry = Conv2dGeometry::new(1, 4, 4, 3, 1, 0).unwrap();
        assert!(
            Conv2d::from_weights(geometry, Tensor::zeros(&[2, 8]), Tensor::zeros(&[2])).is_err()
        );
        assert!(
            Conv2d::from_weights(geometry, Tensor::zeros(&[2, 9]), Tensor::zeros(&[3])).is_err()
        );
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = identity_kernel_layer();
        assert!(layer.backward(&Tensor::zeros(&[1, 9])).is_err());
    }

    #[test]
    fn descriptor_round_trips_geometry() {
        let layer = identity_kernel_layer();
        match layer.descriptor().unwrap() {
            LayerDescriptor::Conv { geometry, .. } => {
                assert_eq!(geometry.in_height, 3);
            }
            other => panic!("unexpected descriptor {other:?}"),
        }
    }
}
