//! Gradient-based optimizers.

use std::collections::HashMap;

use nrsnn_tensor::Tensor;

/// An optimizer updates a parameter tensor in place given its gradient.
///
/// Parameters are identified by a stable integer key assigned by the network
/// (layer-major, parameter-minor order), which is how stateful optimizers
/// (momentum, Adam) find their per-parameter buffers.
pub trait Optimizer: Send {
    /// Applies one update step to `param` using `grad`.
    fn step(&mut self, key: usize, param: &mut Tensor, grad: &Tensor);

    /// Called once per optimizer step, before parameter visits (e.g. to
    /// advance the Adam time step).
    fn begin_step(&mut self) {}

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for simple schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and momentum
    /// coefficient (`0.0` disables momentum).
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, key: usize, param: &mut Tensor, grad: &Tensor) {
        if self.momentum == 0.0 {
            let _ = param.add_scaled_inplace(grad, -self.learning_rate);
            return;
        }
        let velocity = self
            .velocity
            .entry(key)
            .or_insert_with(|| Tensor::zeros(param.dims()));
        // v = m·v + g ; p -= lr·v
        let scaled = velocity.scale(self.momentum);
        let mut v = scaled;
        let _ = v.add_scaled_inplace(grad, 1.0);
        let _ = param.add_scaled_inplace(&v, -self.learning_rate);
        *velocity = v;
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    timestep: u64,
    first_moment: HashMap<usize, Tensor>,
    second_moment: HashMap<usize, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the canonical default betas
    /// (`0.9`, `0.999`) and epsilon `1e-8`.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            timestep: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.timestep += 1;
    }

    fn step(&mut self, key: usize, param: &mut Tensor, grad: &Tensor) {
        if self.timestep == 0 {
            self.timestep = 1;
        }
        let m = self
            .first_moment
            .entry(key)
            .or_insert_with(|| Tensor::zeros(param.dims()));
        let v = self
            .second_moment
            .entry(key)
            .or_insert_with(|| Tensor::zeros(param.dims()));

        let t = self.timestep as i32;
        let (b1, b2) = (self.beta1, self.beta2);
        let mv = m.as_mut_slice();
        let vv = v.as_mut_slice();
        let gv = grad.as_slice();
        let pv = param.as_mut_slice();
        let bias1 = 1.0 - b1.powi(t);
        let bias2 = 1.0 - b2.powi(t);
        for i in 0..pv.len() {
            mv[i] = b1 * mv[i] + (1.0 - b1) * gv[i];
            vv[i] = b2 * vv[i] + (1.0 - b2) * gv[i] * gv[i];
            let m_hat = mv[i] / bias1;
            let v_hat = vv[i] / bias2;
            pv[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(param: &Tensor) -> Tensor {
        // d/dx of 0.5·x² is x.
        param.clone()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut x = Tensor::from_slice(&[10.0, -5.0]);
        for _ in 0..100 {
            let g = quadratic_grad(&x);
            opt.step(0, &mut x, &g);
        }
        assert!(x.norm_sq() < 1e-4);
    }

    #[test]
    fn sgd_momentum_descends_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9);
        let mut x = Tensor::from_slice(&[4.0, 4.0]);
        for _ in 0..200 {
            let g = quadratic_grad(&x);
            opt.step(0, &mut x, &g);
        }
        assert!(x.norm_sq() < 1e-3, "norm {}", x.norm_sq());
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut x = Tensor::from_slice(&[3.0, -2.0, 1.0]);
        for _ in 0..300 {
            opt.begin_step();
            let g = quadratic_grad(&x);
            opt.step(0, &mut x, &g);
        }
        assert!(x.norm_sq() < 1e-3, "norm {}", x.norm_sq());
    }

    #[test]
    fn optimizers_keep_separate_state_per_key() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut a = Tensor::from_slice(&[1.0]);
        let mut b = Tensor::from_slice(&[100.0]);
        for _ in 0..10 {
            let ga = quadratic_grad(&a);
            let gb = quadratic_grad(&b);
            opt.step(0, &mut a, &ga);
            opt.step(1, &mut b, &gb);
        }
        // If the velocity buffers were shared, `a` would be blown far away
        // from zero by `b`'s large gradients.
        assert!(a.as_slice()[0].abs() < 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
