//! Classification metrics.

use nrsnn_tensor::Tensor;

use crate::{DnnError, Result};

/// Summary of a model evaluation over a labelled set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Fraction of correctly classified samples in `[0, 1]`.
    pub accuracy: f32,
    /// Mean loss if a loss function was evaluated, otherwise `None`.
    pub mean_loss: Option<f32>,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl EvalReport {
    /// Accuracy expressed as a percentage, matching the paper's tables.
    pub fn accuracy_percent(&self) -> f32 {
        self.accuracy * 100.0
    }
}

/// Computes classification accuracy of `logits` (`batch x classes`) against
/// integer labels.
///
/// # Errors
/// Returns [`DnnError::InvalidLabels`] if the batch sizes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.shape().rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(DnnError::InvalidLabels(format!(
            "logits shape {:?} incompatible with {} labels",
            logits.dims(),
            labels.len()
        )));
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = (0..labels.len())
        .filter(|&b| {
            let row = logits.row(b).expect("row within batch");
            row.argmax() == labels[b]
        })
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Computes the confusion matrix (`classes x classes`, rows = true label,
/// columns = predicted label) for `logits` against `labels`.
///
/// # Errors
/// Returns [`DnnError::InvalidLabels`] if sizes disagree or a label is out of
/// range.
pub fn confusion_matrix(
    logits: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Result<Vec<Vec<usize>>> {
    if logits.shape().rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(DnnError::InvalidLabels(
            "logits batch does not match labels".to_string(),
        ));
    }
    let mut matrix = vec![vec![0usize; classes]; classes];
    for (b, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(DnnError::InvalidLabels(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        let pred = logits.row(b)?.argmax();
        if pred < classes {
            matrix[label][pred] += 1;
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_2x3() -> Tensor {
        Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1], &[2, 3]).unwrap()
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let logits = logits_2x3();
        assert_eq!(accuracy(&logits, &[1, 0]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 2]).unwrap(), 0.5);
        assert_eq!(accuracy(&logits, &[0, 2]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_checks_batch() {
        let logits = logits_2x3();
        assert!(accuracy(&logits, &[1]).is_err());
    }

    #[test]
    fn confusion_matrix_totals() {
        let logits = logits_2x3();
        let cm = confusion_matrix(&logits, &[1, 2], 3).unwrap();
        assert_eq!(cm[1][1], 1); // true 1 predicted 1
        assert_eq!(cm[2][0], 1); // true 2 predicted 0
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn confusion_matrix_rejects_bad_labels() {
        let logits = logits_2x3();
        assert!(confusion_matrix(&logits, &[1, 5], 3).is_err());
    }

    #[test]
    fn report_percent() {
        let r = EvalReport {
            accuracy: 0.875,
            mean_loss: None,
            samples: 8,
        };
        assert!((r.accuracy_percent() - 87.5).abs() < 1e-6);
    }

    #[test]
    fn empty_labels_give_zero_accuracy() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }
}
