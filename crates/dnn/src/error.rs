use std::error::Error;
use std::fmt;

use nrsnn_tensor::TensorError;

/// Error type for DNN construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// The network or layer was used with an input of the wrong width.
    InputWidthMismatch {
        /// Width the layer expects.
        expected: usize,
        /// Width that was provided.
        actual: usize,
        /// Layer name.
        layer: String,
    },
    /// `backward` was called before `forward` on a layer that caches inputs.
    BackwardBeforeForward {
        /// Layer name.
        layer: String,
    },
    /// Labels and inputs disagree in batch size, or a label is out of range.
    InvalidLabels(String),
    /// A configuration value was invalid (zero batch size, empty network, …).
    InvalidConfig(String),
    /// Weight (de)serialization failed.
    Serialization(String),
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::InputWidthMismatch {
                expected,
                actual,
                layer,
            } => write!(
                f,
                "layer {layer} expected input width {expected}, got {actual}"
            ),
            DnnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            DnnError::InvalidLabels(msg) => write!(f, "invalid labels: {msg}"),
            DnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DnnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl Error for DnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DnnError::InputWidthMismatch {
            expected: 10,
            actual: 5,
            layer: "dense0".to_string(),
        };
        assert!(e.to_string().contains("dense0"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::ShapeDataMismatch {
            elements: 1,
            expected: 2,
        };
        let de: DnnError = te.clone().into();
        assert_eq!(de, DnnError::Tensor(te));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
