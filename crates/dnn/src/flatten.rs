//! Flatten marker layer.
//!
//! All tensors in this workspace are already stored as flattened rows, so
//! `Flatten` is the identity at runtime.  It exists to make architectures
//! read naturally (conv → flatten → dense) and to document where the spatial
//! interpretation of a row ends.

use nrsnn_tensor::Tensor;

use crate::{Layer, Mode, Result};

/// Identity layer marking the conv-to-dense boundary of an architecture.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn input_width(&self) -> Option<usize> {
        None
    }

    fn output_width(&self) -> Option<usize> {
        None
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        Ok(grad_output.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_is_identity() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(f.forward(&x, Mode::Train).unwrap().as_slice(), x.as_slice());
        assert_eq!(f.backward(&x).unwrap().as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_has_no_params_or_descriptor() {
        let f = Flatten::new();
        assert_eq!(f.param_count(), 0);
        assert!(f.descriptor().is_none());
    }
}
