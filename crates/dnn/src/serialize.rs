//! Weight (de)serialization for trained networks.
//!
//! A trained DNN can be saved to JSON and reloaded later (e.g. to convert the
//! same network under several coding schemes without retraining).

use std::fs;
use std::path::Path;

use nrsnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{DnnError, Result, Sequential};

/// All trainable parameters of a network in layer-major, parameter-minor
/// order (the same order in which [`Sequential::visit_params`] visits them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkWeights {
    /// Flat list of parameter tensors.
    pub params: Vec<Tensor>,
}

// Hand-written (de)serialization: the derive above is a no-op under the
// offline shims (see shims/README.md). Format: `{"params": [tensor, ..]}`.
impl Serialize for NetworkWeights {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("params".to_string(), self.params.to_value())])
    }
}

impl Deserialize for NetworkWeights {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let params_value = value
            .get("params")
            .ok_or_else(|| serde::DeError::new("network weights are missing \"params\""))?;
        Ok(NetworkWeights {
            params: Vec::<Tensor>::from_value(params_value)?,
        })
    }
}

impl NetworkWeights {
    /// Extracts the current parameters of a network.
    pub fn from_network(network: &mut Sequential) -> Self {
        let mut params = Vec::new();
        network.visit_params(&mut |param, _| params.push(param.clone()));
        NetworkWeights { params }
    }

    /// Writes the parameters back into a network with the same architecture.
    ///
    /// # Errors
    /// Returns [`DnnError::Serialization`] if the parameter count or any
    /// shape differs.
    pub fn apply_to(&self, network: &mut Sequential) -> Result<()> {
        let mut idx = 0usize;
        let mut mismatch: Option<String> = None;
        network.visit_params(&mut |param, _| {
            if mismatch.is_some() {
                return;
            }
            match self.params.get(idx) {
                Some(saved) if saved.dims() == param.dims() => {
                    *param = saved.clone();
                }
                Some(saved) => {
                    mismatch = Some(format!(
                        "parameter {idx} shape mismatch: saved {:?}, network {:?}",
                        saved.dims(),
                        param.dims()
                    ));
                }
                None => mismatch = Some(format!("missing parameter {idx} in saved weights")),
            }
            idx += 1;
        });
        if let Some(msg) = mismatch {
            return Err(DnnError::Serialization(msg));
        }
        if idx != self.params.len() {
            return Err(DnnError::Serialization(format!(
                "saved weights have {} parameters but network has {idx}",
                self.params.len()
            )));
        }
        Ok(())
    }
}

/// Saves the parameters of `network` as JSON at `path`.
///
/// # Errors
/// Returns [`DnnError::Serialization`] on I/O or encoding failures.
pub fn save_network_weights<P: AsRef<Path>>(network: &mut Sequential, path: P) -> Result<()> {
    let weights = NetworkWeights::from_network(network);
    let json = serde_json::to_string(&weights)
        .map_err(|e| DnnError::Serialization(format!("encode: {e}")))?;
    fs::write(path, json).map_err(|e| DnnError::Serialization(format!("write: {e}")))
}

/// Loads parameters from JSON at `path` into `network`.
///
/// # Errors
/// Returns [`DnnError::Serialization`] on I/O, decoding or shape mismatches.
pub fn load_network_weights<P: AsRef<Path>>(network: &mut Sequential, path: P) -> Result<()> {
    let json =
        fs::read_to_string(path).map_err(|e| DnnError::Serialization(format!("read: {e}")))?;
    let weights: NetworkWeights =
        serde_json::from_str(&json).map_err(|e| DnnError::Serialization(format!("decode: {e}")))?;
    weights.apply_to(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(&mut rng, 3, 4).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(&mut rng, 4, 2).unwrap());
        net
    }

    #[test]
    fn weights_round_trip_in_memory() {
        let mut a = small_net(1);
        let mut b = small_net(2);
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[1, 3]).unwrap();
        let ya = a.predict(&x).unwrap();
        let yb_before = b.predict(&x).unwrap();
        assert_ne!(ya.as_slice(), yb_before.as_slice());

        let w = NetworkWeights::from_network(&mut a);
        w.apply_to(&mut b).unwrap();
        let yb_after = b.predict(&x).unwrap();
        assert_eq!(ya.as_slice(), yb_after.as_slice());
    }

    #[test]
    fn apply_rejects_architecture_mismatch() {
        let mut a = small_net(1);
        let w = NetworkWeights::from_network(&mut a);
        let mut rng = StdRng::seed_from_u64(3);
        let mut other = Sequential::new();
        other.push(Dense::new(&mut rng, 5, 2).unwrap());
        assert!(w.apply_to(&mut other).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("nrsnn_dnn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");

        let mut a = small_net(7);
        save_network_weights(&mut a, &path).unwrap();
        let mut b = small_net(8);
        load_network_weights(&mut b, &path).unwrap();

        let x = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[1, 3]).unwrap();
        assert_eq!(
            a.predict(&x).unwrap().as_slice(),
            b.predict(&x).unwrap().as_slice()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let mut net = small_net(0);
        assert!(load_network_weights(&mut net, "/nonexistent/path/weights.json").is_err());
    }
}
