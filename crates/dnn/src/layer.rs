//! The [`Layer`] trait shared by every network component.

use nrsnn_tensor::Tensor;

use crate::{LayerDescriptor, Result};

/// Whether a forward pass is running in training or inference mode.
///
/// Dropout behaves differently in the two modes; everything else ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training mode: dropout masks are sampled, caches for backprop are kept.
    Train,
    /// Inference mode: deterministic forward pass.
    #[default]
    Infer,
}

/// A differentiable network layer operating on rank-2 batches
/// (`batch_size x features`).
///
/// Layers cache whatever they need during [`Layer::forward`] so that a
/// subsequent [`Layer::backward`] can compute gradients; `backward` must be
/// preceded by a `forward` call in [`Mode::Train`].
pub trait Layer: Send + Sync {
    /// Short human-readable name (used in error messages and serialization).
    fn name(&self) -> &str;

    /// Number of input features the layer expects, if fixed.
    fn input_width(&self) -> Option<usize>;

    /// Number of output features the layer produces, if fixed.
    fn output_width(&self) -> Option<usize>;

    /// Computes the layer output for a batch of inputs.
    ///
    /// # Errors
    /// Returns an error if the batch width does not match the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Into-buffer variant of [`Layer::forward`]: writes the output into
    /// `out`, replacing its contents.
    ///
    /// The default delegates to `forward` (allocating a fresh output);
    /// layers on the inference hot path (e.g. `Dense`) override it to reuse
    /// `out`'s buffer.  Must produce the same values as `forward`.
    ///
    /// # Errors
    /// Same as [`Layer::forward`].
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) -> Result<()> {
        *out = self.forward(input, mode)?;
        Ok(())
    }

    /// Back-propagates `grad_output` (gradient of the loss with respect to
    /// this layer's output) and returns the gradient with respect to the
    /// layer input. Parameter gradients are accumulated internally.
    ///
    /// # Errors
    /// Returns [`crate::DnnError::BackwardBeforeForward`] if no forward pass
    /// was cached.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every `(parameter, gradient)` pair of the layer, in a stable
    /// order, so an optimizer can update the parameters in place.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        let _ = visitor;
    }

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {}

    /// A conversion-oriented description of the layer (weights, geometry),
    /// or `None` for layers that vanish during DNN-to-SNN conversion
    /// (ReLU, dropout, flatten, softmax).
    fn descriptor(&self) -> Option<LayerDescriptor> {
        None
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_infer() {
        assert_eq!(Mode::default(), Mode::Infer);
    }

    #[test]
    fn mode_is_copy_and_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(m, Mode::Infer);
    }
}
