//! Property tests proving every SIMD backend bit-identical to the scalar
//! reference kernel, over adversarial shapes and values.
//!
//! Shapes draw from a pool straddling the 8-lane block width (0, 1, lane−1,
//! lane, lane+1, non-multiples); values draw from a pool of IEEE-754 corner
//! cases (`-0.0`, subnormals, `f32::MAX`, mixed signs, exact zeros) mixed
//! with ordinary magnitudes.  Every assertion compares raw bits, not
//! approximate values — the workspace contract is byte-equality, and these
//! tests are the kernel-level half of the scalar-vs-SIMD matrix in
//! `tests/workspace_bit_identity.rs`.

use nrsnn_tensor::simd::{
    available_backends, im2col_slices_with, matmul_slices_with, matmul_sparse_slices_with,
    matvec_bias_slices_with, matvec_slices_with, matvec_sparse_slices_with, sum8_by,
    sum_gather_with, SimdBackend,
};
use nrsnn_tensor::{
    im2col_into, matmul_into, matmul_sparse_into, matvec_into, matvec_sparse_into, Conv2dGeometry,
    Tensor, TensorError,
};
use proptest::{rng_for, TestRng, CASES};
use rand::Rng;

/// Shape pool straddling the 8-lane block width.
const SHAPES: &[usize] = &[0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33];

/// Adversarial value pool: signed zeros, subnormals, extremes, mixed signs.
/// `f32::MAX` may overflow a product to `±inf` — still deterministic IEEE
/// results that must agree bitwise across backends.
const SPECIAL: &[f32] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -2.5,
    f32::MIN_POSITIVE, // smallest normal
    1.0e-41,           // subnormal
    -1.0e-41,          // negative subnormal
    f32::MAX,
    -f32::MAX,
    1.0e-20,
    3.4028,
];

fn draw_shape(rng: &mut TestRng) -> usize {
    SHAPES[rng.gen_range(0..SHAPES.len())]
}

/// Nonzero shape (for dimensions the kernels require to be positive, like
/// matrix row counts fed through `Tensor::from_vec`).
fn draw_shape_nz(rng: &mut TestRng) -> usize {
    loop {
        let s = draw_shape(rng);
        if s != 0 {
            return s;
        }
    }
}

/// Draws a value: half the time an adversarial special, half an ordinary
/// magnitude. `zero_bias` boosts the exact-zero probability so sparse paths
/// see genuinely sparse inputs (with both zero signs).
fn draw_value(rng: &mut TestRng, zero_bias: bool) -> f32 {
    if zero_bias && rng.gen_range(0.0f32..1.0) < 0.5 {
        return if rng.gen_range(0.0f32..1.0) < 0.25 {
            -0.0
        } else {
            0.0
        };
    }
    if rng.gen_range(0.0f32..1.0) < 0.5 {
        SPECIAL[rng.gen_range(0..SPECIAL.len())]
    } else {
        rng.gen_range(-4.0f32..4.0)
    }
}

fn draw_vec(rng: &mut TestRng, len: usize, zero_bias: bool) -> Vec<f32> {
    (0..len).map(|_| draw_value(rng, zero_bias)).collect()
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Ascending indices of the nonzero entries — the sparse kernels' contract.
fn active_indices(x: &[f32]) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(j, _)| j as u32)
        .collect()
}

fn simd_backends() -> Vec<SimdBackend> {
    available_backends()
        .into_iter()
        .filter(|&b| b != SimdBackend::Scalar)
        .collect()
}

#[test]
fn matvec_every_isa_matches_scalar_bitwise() {
    let mut rng = rng_for("matvec_every_isa_matches_scalar_bitwise");
    let isas = simd_backends();
    for _ in 0..CASES {
        let (m, n) = (draw_shape(&mut rng), draw_shape(&mut rng));
        let a = draw_vec(&mut rng, m * n, false);
        let x = draw_vec(&mut rng, n, false);
        let mut reference = vec![f32::NAN; m];
        matvec_slices_with(SimdBackend::Scalar, &a, m, n, &x, &mut reference);
        for &isa in &isas {
            let mut out = vec![f32::NAN; m];
            matvec_slices_with(isa, &a, m, n, &x, &mut out);
            assert_eq!(bits(&out), bits(&reference), "{isa:?} m={m} n={n}");
        }
    }
}

#[test]
fn matvec_bias_every_isa_matches_scalar_bitwise() {
    let mut rng = rng_for("matvec_bias_every_isa_matches_scalar_bitwise");
    let isas = simd_backends();
    for case in 0..CASES {
        let (m, n) = (draw_shape(&mut rng), draw_shape(&mut rng));
        // Every fourth case zeroes an entire row — the all-zero-row corner.
        let mut a = draw_vec(&mut rng, m * n, false);
        if case % 4 == 0 && m > 0 && n > 0 {
            let row = rng.gen_range(0..m);
            a[row * n..(row + 1) * n].fill(0.0);
        }
        let x = draw_vec(&mut rng, n, false);
        // Biases lean on the signed-zero corner hard.
        let bias: Vec<f32> = (0..m)
            .map(|_| {
                if rng.gen_range(0.0f32..1.0) < 0.3 {
                    -0.0
                } else {
                    draw_value(&mut rng, false)
                }
            })
            .collect();
        let mut reference = vec![f32::NAN; m];
        matvec_bias_slices_with(SimdBackend::Scalar, &a, m, n, &x, &bias, &mut reference);
        for &isa in &isas {
            let mut out = vec![f32::NAN; m];
            matvec_bias_slices_with(isa, &a, m, n, &x, &bias, &mut out);
            assert_eq!(bits(&out), bits(&reference), "{isa:?} m={m} n={n}");
        }
    }
}

#[test]
fn matvec_sparse_every_isa_matches_dense_scalar_bitwise() {
    let mut rng = rng_for("matvec_sparse_every_isa_matches_dense_scalar_bitwise");
    for _ in 0..CASES {
        let (m, n) = (draw_shape(&mut rng), draw_shape(&mut rng));
        // Finite weights only: the skipped-term no-op argument requires
        // finite a (an inf times a skipped 0.0 would be NaN, and the sparse
        // kernel never computes it). The engine guarantees finite weights.
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let x = draw_vec(&mut rng, n, true); // zero-heavy input, both signs
        let bias: Vec<f32> = (0..m).map(|_| draw_value(&mut rng, true)).collect();
        let active = active_indices(&x);
        // The dense scalar kernel is the single source of truth: the sparse
        // kernel must match it on every backend.
        let mut reference = vec![f32::NAN; m];
        matvec_bias_slices_with(SimdBackend::Scalar, &a, m, n, &x, &bias, &mut reference);
        for &backend in available_backends().iter() {
            let mut out = vec![f32::NAN; m];
            matvec_sparse_slices_with(backend, &a, m, n, &x, &active, &bias, &mut out);
            assert_eq!(
                bits(&out),
                bits(&reference),
                "{backend:?} m={m} n={n} |active|={}",
                active.len()
            );
        }
    }
}

#[test]
fn matmul_every_isa_matches_scalar_bitwise() {
    let mut rng = rng_for("matmul_every_isa_matches_scalar_bitwise");
    let isas = simd_backends();
    for case in 0..CASES {
        let (m, k, n) = (
            draw_shape(&mut rng),
            draw_shape(&mut rng),
            draw_shape(&mut rng),
        );
        // Zero-heavy `a` exercises the skip-zero fast path.
        let a = draw_vec(&mut rng, m * k, case % 2 == 0);
        let b = draw_vec(&mut rng, k * n, false);
        let mut reference = vec![f32::NAN; m * n];
        matmul_slices_with(SimdBackend::Scalar, &a, m, k, &b, n, &mut reference);
        for &isa in &isas {
            let mut out = vec![f32::NAN; m * n];
            matmul_slices_with(isa, &a, m, k, &b, n, &mut out);
            assert_eq!(bits(&out), bits(&reference), "{isa:?} m={m} k={k} n={n}");
        }
        // Bias-seeded variant, with -0.0 biases in the pool.
        let bias: Vec<f32> = (0..n).map(|_| draw_value(&mut rng, true)).collect();
        if !bias.is_empty() {
            let mut reference = vec![f32::NAN; m * n];
            matmul_sparse_slices_with(SimdBackend::Scalar, &a, m, k, &b, n, &bias, &mut reference);
            for &isa in &isas {
                let mut out = vec![f32::NAN; m * n];
                matmul_sparse_slices_with(isa, &a, m, k, &b, n, &bias, &mut out);
                assert_eq!(bits(&out), bits(&reference), "{isa:?} biased m={m} n={n}");
            }
        }
    }
}

#[test]
fn im2col_every_isa_matches_scalar_bitwise() {
    let mut rng = rng_for("im2col_every_isa_matches_scalar_bitwise");
    let isas = simd_backends();
    for _ in 0..CASES {
        let c = rng.gen_range(1usize..4);
        let h = rng.gen_range(1usize..12);
        let w = rng.gen_range(1usize..12);
        let k = rng.gen_range(1usize..6);
        let s = rng.gen_range(1usize..3);
        let p = rng.gen_range(0usize..3);
        let Ok(geom) = Conv2dGeometry::new(c, h, w, k, s, p) else {
            continue; // kernel larger than padded input: rejected upstream
        };
        let x = draw_vec(&mut rng, geom.in_len(), false);
        let len = geom.out_positions() * geom.patch_len();
        let mut reference = vec![f32::NAN; len];
        im2col_slices_with(SimdBackend::Scalar, &x, &geom, &mut reference);
        for &isa in &isas {
            let mut out = vec![f32::NAN; len];
            im2col_slices_with(isa, &x, &geom, &mut out);
            assert_eq!(bits(&out), bits(&reference), "{isa:?} geom {geom:?}");
        }
    }
}

#[test]
fn sum_gather_every_isa_matches_sum8_by_bitwise() {
    let mut rng = rng_for("sum_gather_every_isa_matches_sum8_by_bitwise");
    for _ in 0..CASES {
        let table_len = draw_shape_nz(&mut rng);
        let table = draw_vec(&mut rng, table_len, false);
        let idx_len = draw_shape(&mut rng);
        let idx: Vec<u32> = (0..idx_len)
            .map(|_| rng.gen_range(0..table_len) as u32)
            .collect();
        let reference = sum8_by(idx.len(), |i| table[idx[i] as usize]);
        for backend in available_backends() {
            let got = sum_gather_with(backend, &table, &idx);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "{backend:?} table_len={table_len} idx_len={idx_len}"
            );
        }
    }
}

#[test]
fn into_wrappers_return_typed_shape_errors() {
    let a = Tensor::zeros(&[3, 4]);
    let b_bad = Tensor::zeros(&[5, 2]); // inner dim mismatch
    let x_bad = Tensor::zeros(&[5]);
    let vec1 = Tensor::zeros(&[3]);
    let mut out = Vec::new();

    assert!(matches!(
        matmul_into(&a, &b_bad, &mut out),
        Err(TensorError::ShapeMismatch { op: "matmul", .. })
    ));
    assert!(matches!(
        matvec_into(&a, &x_bad, &mut out),
        Err(TensorError::ShapeMismatch { op: "matvec", .. })
    ));
    assert!(matches!(
        matvec_into(&a, &a, &mut out),
        Err(TensorError::RankMismatch { op: "matvec", .. })
    ));
    // Sparse wrappers: out-of-range active index and wrong bias length.
    let x = Tensor::zeros(&[4]);
    assert!(matches!(
        matvec_sparse_into(&a, &x, &[4], &vec1, &mut out),
        Err(TensorError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        matvec_sparse_into(&a, &x, &[0], &x_bad, &mut out),
        Err(TensorError::ShapeMismatch { .. })
    ));
    let b = Tensor::zeros(&[4, 2]);
    assert!(matches!(
        matmul_sparse_into(&a, &b, &vec1, &mut out), // bias len 3 != n=2
        Err(TensorError::ShapeMismatch { .. })
    ));
    // im2col: wrong input length for the geometry.
    let geom = Conv2dGeometry::new(1, 4, 4, 3, 1, 0).unwrap();
    assert!(matches!(
        im2col_into(&x_bad, &geom, &mut out),
        Err(TensorError::ShapeDataMismatch { .. })
    ));
    // Valid calls still succeed after the failures (buffers are reusable).
    let b_ok = Tensor::zeros(&[4, 2]);
    assert!(matmul_into(&a, &b_ok, &mut out).is_ok());
    assert_eq!(out.len(), 6);
}
