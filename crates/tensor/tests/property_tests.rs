//! Property-based tests for the tensor substrate.

use nrsnn_tensor::{matmul, matvec, outer, transpose, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn add_is_commutative(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let ta = Tensor::from_vec(a, &[16]).unwrap();
        let tb = Tensor::from_vec(b, &[16]).unwrap();
        let ab = ta.add(&tb).unwrap();
        let ba = tb.add(&ta).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn sub_then_add_is_identity(a in tensor_strategy(12), b in tensor_strategy(12)) {
        let ta = Tensor::from_vec(a, &[12]).unwrap();
        let tb = Tensor::from_vec(b, &[12]).unwrap();
        let back = ta.sub(&tb).unwrap().add(&tb).unwrap();
        for (x, y) in back.as_slice().iter().zip(ta.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn scale_is_linear(a in tensor_strategy(10), k in -10.0f32..10.0) {
        let t = Tensor::from_vec(a, &[10]).unwrap();
        let lhs = t.scale(k).sum();
        let rhs = t.sum() * k;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_is_involution(data in tensor_strategy(20)) {
        let t = Tensor::from_vec(data, &[4, 5]).unwrap();
        let tt = transpose(&transpose(&t).unwrap()).unwrap();
        prop_assert_eq!(t.as_slice(), tt.as_slice());
    }

    #[test]
    fn matmul_identity_is_noop(data in tensor_strategy(12)) {
        let t = Tensor::from_vec(data, &[3, 4]).unwrap();
        let id = Tensor::eye(4);
        let out = matmul(&t, &id).unwrap();
        for (x, y) in out.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_is_linear_in_vector(
        m in tensor_strategy(12),
        x in tensor_strategy(4),
        y in tensor_strategy(4)
    ) {
        let mat = Tensor::from_vec(m, &[3, 4]).unwrap();
        let tx = Tensor::from_vec(x, &[4]).unwrap();
        let ty = Tensor::from_vec(y, &[4]).unwrap();
        let lhs = matvec(&mat, &tx.add(&ty).unwrap()).unwrap();
        let rhs = matvec(&mat, &tx).unwrap().add(&matvec(&mat, &ty).unwrap()).unwrap();
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 0.5, "lhs {a} rhs {b}");
        }
    }

    #[test]
    fn outer_rank_one_rows_are_scaled_copies(
        a in tensor_strategy(3),
        b in tensor_strategy(5)
    ) {
        let ta = Tensor::from_vec(a.clone(), &[3]).unwrap();
        let tb = Tensor::from_vec(b.clone(), &[5]).unwrap();
        let o = outer(&ta, &tb).unwrap();
        for (i, av) in a.iter().enumerate() {
            let row = o.row(i).unwrap();
            for (r, bv) in row.as_slice().iter().zip(&b) {
                prop_assert!((r - av * bv).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn reshape_preserves_sum(data in tensor_strategy(24)) {
        let t = Tensor::from_vec(data, &[24]).unwrap();
        let r = t.reshape(&[2, 3, 4]).unwrap();
        prop_assert!((t.sum() - r.sum()).abs() < 1e-3);
    }

    #[test]
    fn percentile_is_within_min_max(data in tensor_strategy(32), q in 0.0f32..100.0) {
        let t = Tensor::from_vec(data, &[32]).unwrap();
        let p = t.percentile(q);
        prop_assert!(p >= t.min() && p <= t.max());
    }

    #[test]
    fn stack_rows_then_row_round_trips(rows in proptest::collection::vec(tensor_strategy(6), 1..5)) {
        let tensors: Vec<Tensor> = rows.iter().map(|r| Tensor::from_vec(r.clone(), &[6]).unwrap()).collect();
        let stacked = Tensor::stack_rows(&tensors).unwrap();
        for (i, orig) in tensors.iter().enumerate() {
            let row = stacked.row(i).unwrap();
            prop_assert_eq!(row.as_slice(), orig.as_slice());
        }
    }
}
