//! Generic lane-blocked kernels, instantiated once per [`F32x8`] backend.
//!
//! Every kernel here defines the **canonical operation order** for the whole
//! workspace: columns are consumed in ascending 8-wide blocks, each block's
//! partial products live in eight independent lane accumulators, the lanes
//! are combined with the fixed tree in [`super::vec::reduce8`], and the
//! `n % 8` tail elements are added sequentially afterwards.  The scalar
//! backend executes exactly this algorithm, so whichever ISA runs a kernel,
//! the result bits are the same.
//!
//! # Safety
//!
//! All functions in this module are `unsafe`: they index through raw
//! pointers and trust the slice-length / index-bounds contracts that the
//! safe dispatch wrappers in [`super`] assert before calling in, and the
//! x86 instantiations additionally require the matching CPU features
//! (guaranteed by runtime dispatch).

use super::vec::{reduce8, F32x8, BLOCK};

/// Canonicalises a bias value used to seed an accumulator: `b + 0.0`
/// flushes `-0.0` to `+0.0` and leaves every other value (including NaN
/// payloads produced upstream) bitwise unchanged.
///
/// Seeding from `+0.0` rather than `-0.0` is what makes "skip the zero
/// terms" a *bitwise* no-op on the sparse paths: under IEEE-754
/// round-to-nearest, `acc + (w * ±0.0)` can only differ from `acc` when
/// `acc` is `-0.0` and the product is `+0.0` (or vice versa), and a lane
/// seeded `+0.0` can never become `-0.0` again (an IEEE add yields `-0.0`
/// only when both operands are `-0.0`).
#[inline(always)]
pub(crate) fn seed_from_bias(b: f32) -> f32 {
    b + 0.0
}

/// Dense mat-vec with optional bias seeding: `out[i] = seed(bias[i]) + Σ_j
/// a[i][j]·x[j]` in the canonical lane-blocked order.  An empty `bias`
/// means "no bias": `out[i]` is the plain dot product.
///
/// # Safety
/// Requires `a.len() == m*n`, `x.len() == n`, `out.len() == m` and
/// `bias.len() ∈ {0, m}`; the backend `V` must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn matvec_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(out.len(), m);
    debug_assert!(bias.is_empty() || bias.len() == m);
    let nb = n - (n % BLOCK);
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    let has_bias = !bias.is_empty();
    for (i, o) in out.iter_mut().enumerate() {
        // SAFETY: `i < m`, so row `i*n..i*n+n` lies inside `a` (len `m*n`).
        let row = unsafe { ap.add(i * n) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let mut acc = unsafe { V::zero() };
        let mut b = 0usize;
        while b < nb {
            // SAFETY: `b + 8 <= nb <= n == x.len()` — the block is inside `x`.
            let xv = unsafe { V::load(xp.add(b)) };
            // SAFETY: `b + 8 <= nb <= n` — the block is inside row `i` of `a`.
            let rv = unsafe { V::load(row.add(b)) };
            // SAFETY: register-only lane op; the backend is runnable per dispatch.
            acc = unsafe { acc.add(rv.mul(xv)) };
            b += BLOCK;
        }
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let mut s = unsafe { acc.reduce() };
        for j in nb..n {
            // SAFETY: tail `j < n`, inside both the row span and `x`.
            s += unsafe { *row.add(j) * *xp.add(j) };
        }
        *o = if has_bias {
            seed_from_bias(bias[i]) + s
        } else {
            s
        };
    }
}

/// Groups the lane-blocked body of an `active` index list by lane
/// (`j % 8`), preserving the ascending order inside each lane, and hands
/// the grouped indices plus the 9 group boundaries to `f`.
///
/// A counting sort into a thread-local scratch buffer: the buffer grows to
/// the largest `|active|` seen on this thread and is then reused, so the
/// simulation hot path stays allocation-free in the steady state.
fn with_lane_buckets<R>(body: &[u32], f: impl FnOnce(&[u32], &[usize; BLOCK + 1]) -> R) -> R {
    thread_local! {
        static BUCKETS: core::cell::RefCell<Vec<u32>> =
            const { core::cell::RefCell::new(Vec::new()) };
    }
    BUCKETS.with(|cell| {
        let mut buckets = cell.borrow_mut();
        buckets.clear();
        buckets.resize(body.len(), 0);
        let mut counts = [0usize; BLOCK];
        for &j in body {
            counts[(j as usize) % BLOCK] += 1;
        }
        let mut starts = [0usize; BLOCK + 1];
        for l in 0..BLOCK {
            starts[l + 1] = starts[l] + counts[l];
        }
        let mut cursor = starts;
        for &j in body {
            let l = (j as usize) % BLOCK;
            buckets[cursor[l]] = j;
            cursor[l] += 1;
        }
        f(&buckets, &starts)
    })
}

/// Sparse mat-vec: like [`matvec_generic`] with bias, but `O(m·|active|)` —
/// each row touches only the active columns.  `active` must hold the
/// ascending, duplicate-free indices of the nonzero entries of `x`.
///
/// The kernel is deliberately **scalar on every backend**.  A vector
/// version would have to choose between processing whole 8-wide blocks
/// (degrades to the dense kernel's cost once active columns are scattered —
/// at density `d` a fraction `1-(1-d)^8` of blocks contain an active
/// column) or compacting the active columns into vector lanes (changes the
/// lane assignment, and with it the reduction order and the result bits).
/// Instead the active body is grouped by lane once per call
/// ([`with_lane_buckets`], amortised over all `m` rows), and each row runs
/// one register-accumulator loop per lane — the same `O(|active|)`
/// sequential multiply-adds as a plain compressed dot product, just split
/// into eight sub-sequences that feed the canonical [`reduce8`] tree.
///
/// Bit-identity with the dense kernel: lane `l` receives exactly the dense
/// kernel's ascending sub-sequence of column products `j ≡ l (mod 8)` with
/// the zero terms skipped, and each skipped term is `w·(±0.0)` added to an
/// accumulator that starts `+0.0` and can never become `-0.0` — a bitwise
/// no-op by the argument on [`seed_from_bias`].  Tail columns (`j ≥ n-n%8`)
/// are added sequentially after the reduction, exactly as in the dense
/// kernel, again with only zero terms skipped.
///
/// # Safety
/// Requires `a.len() == m*n`, `x.len() == n`, `bias.len() == m`,
/// `out.len() == m`, and every index in `active` to be `< n`.  (`V` only
/// fixes the dispatch signature; no vector instructions are issued.)
#[inline(always)]
pub(crate) unsafe fn matvec_sparse_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    active: &[u32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(out.len(), m);
    debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "active not sorted");
    let nb = n - (n % BLOCK);
    // Ascending order => one split separates lane-blocked body columns
    // from tail columns.
    let body_len = active.partition_point(|&j| (j as usize) < nb);
    let (body, tail) = active.split_at(body_len);
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    with_lane_buckets(body, |buckets, starts| {
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: `i < m`, so row `i*n..i*n+n` lies inside `a` (len `m*n`).
            let row = unsafe { ap.add(i * n) };
            let mut lanes = [0.0f32; BLOCK];
            for l in 0..BLOCK {
                let mut acc = 0.0f32;
                for &ju in &buckets[starts[l]..starts[l + 1]] {
                    let j = ju as usize;
                    // SAFETY: `j < nb <= n` (bucketed body index), inside row and `x`.
                    acc += unsafe { *row.add(j) * *xp.add(j) };
                }
                lanes[l] = acc;
            }
            let mut s = reduce8(lanes);
            for &ju in tail {
                let j = ju as usize;
                // SAFETY: tail `j` came from `active`, all `< n` per the contract.
                s += unsafe { *row.add(j) * *xp.add(j) };
            }
            *o = seed_from_bias(bias[i]) + s;
        }
    });
}

/// Dense/sparse mat-mul: `out = seedrow(bias) .+ a·b` where `a` is `m×k`,
/// `b` is `k×n` and `bias` (empty for "no bias") seeds every output row.
///
/// Vectorised over the output columns in axpy form (`out_block +=
/// a[i][kk]·b_block`), which keeps the per-element operation order of the
/// classic `ikj` scalar loop **exactly** — only the machine width changes —
/// so this kernel is bit-for-bit the historical scalar matmul.  Terms with
/// `a[i][kk] == 0.0` are skipped; this is a bitwise no-op because every
/// accumulator starts from `+0.0` or a canonicalised bias and can never be
/// `-0.0` (see [`seed_from_bias`]).
///
/// # Safety
/// Requires `a.len() == m*k`, `b.len() == k*n`, `out.len() == m*n` and
/// `bias.len() ∈ {0, n}`; the backend `V` must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn matmul_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(bias.is_empty() || bias.len() == n);
    let nb = n - (n % BLOCK);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let has_bias = !bias.is_empty();
    let biasp = bias.as_ptr();
    for i in 0..m {
        // SAFETY: `i < m`, so row `i*n..i*n+n` lies inside `out` (len `m*n`).
        let orow = unsafe { out.as_mut_ptr().add(i * n) };
        // Seed the output row: canonicalised bias (b_j + 0.0) or +0.0.
        let mut j = 0usize;
        while j < nb {
            let seed = if has_bias {
                // SAFETY: `j + 8 <= nb <= n == bias.len()` on this branch.
                unsafe { V::load(biasp.add(j)).add(V::zero()) }
            } else {
                // SAFETY: register-only lane op; the backend is runnable per dispatch.
                unsafe { V::zero() }
            };
            // SAFETY: `j + 8 <= nb <= n` — the block is inside output row `i`.
            unsafe { seed.store(orow.add(j)) };
            j += BLOCK;
        }
        for j in nb..n {
            // SAFETY: tail `j < n`, inside output row `i` and (if present) `bias`.
            unsafe {
                *orow.add(j) = if has_bias {
                    seed_from_bias(*biasp.add(j))
                } else {
                    0.0
                }
            };
        }
        for kk in 0..k {
            // SAFETY: `i < m`, `kk < k`, so the flat index is inside `a` (len `m*k`).
            let aik = unsafe { *ap.add(i * k + kk) };
            if aik == 0.0 {
                continue; // bitwise no-op: accumulators are never -0.0
            }
            // SAFETY: register-only lane op; the backend is runnable per dispatch.
            let av = unsafe { V::splat(aik) };
            // SAFETY: `kk < k`, so row `kk*n..kk*n+n` lies inside `b` (len `k*n`).
            let brow = unsafe { bp.add(kk * n) };
            let mut j = 0usize;
            while j < nb {
                // SAFETY: `j + 8 <= nb <= n` — the block is inside output row `i`.
                let ov = unsafe { V::load(orow.add(j)) };
                // SAFETY: `j + 8 <= nb <= n` — the block is inside row `kk` of `b`.
                let bv = unsafe { V::load(brow.add(j)) };
                // SAFETY: register mul/add plus a store into the in-bounds block above.
                unsafe { ov.add(av.mul(bv)).store(orow.add(j)) };
                j += BLOCK;
            }
            for j in nb..n {
                // SAFETY: tail `j < n`, inside both the output row and row `kk` of `b`.
                unsafe { *orow.add(j) += aik * *brow.add(j) };
            }
        }
    }
}

/// Sums `table[idx]` over every index in `idx`, in the canonical
/// lane-blocked order: 8-wide gather blocks accumulate into lanes, the
/// lanes reduce through the fixed tree, and the tail indices are added
/// sequentially.  This is the vector form of [`super::sum8_by`] — the two
/// must stay in lockstep.
///
/// # Safety
/// Every `idx` value must be `< table.len()` and `table.len()` must fit in
/// `i32` (the AVX2 gather treats indices as signed); the backend `V` must
/// be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn sum_gather_generic<V: F32x8>(table: &[f32], idx: &[u32]) -> f32 {
    let n = idx.len();
    let nb = n - (n % BLOCK);
    let ip = idx.as_ptr();
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let mut acc = unsafe { V::zero() };
    let mut b = 0usize;
    while b < nb {
        // SAFETY: `b + 8 <= nb <= idx.len()` and every index is `< table.len()`
        // per this fn's contract, so the gather stays inside `table`.
        let g = unsafe { V::gather(table, ip.add(b)) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        acc = unsafe { acc.add(g) };
        b += BLOCK;
    }
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let mut s = unsafe { acc.reduce() };
    for &t in &idx[nb..] {
        s += table[t as usize];
    }
    s
}

/// Normalised clamp used by every coding's encode path: `out[i] =
/// min(max(x[i], 0), θ) / θ` with the canonical x86 `max`/`min` semantics
/// (see [`F32x8::max`]) — the lane-blocked twin of [`super::clamp_ratio`],
/// which the `n % 8` tail calls so the two stay in lockstep.
///
/// Every operation is an elementwise, correctly rounded IEEE op with a
/// pinned NaN/zero rule, so lanes and tail agree bit for bit on any
/// backend: NaN activations flush to `+0.0` (`max(NaN, 0) = 0` under the
/// canonical rule) and `-0.0` flushes to `+0.0` the same way.
///
/// # Safety
/// Requires `out.len() == x.len()`; the backend `V` must be runnable on
/// this CPU.
#[inline(always)]
pub(crate) unsafe fn encode_ratio_generic<V: F32x8>(x: &[f32], threshold: f32, out: &mut [f32]) {
    debug_assert_eq!(out.len(), x.len());
    let n = x.len();
    let nb = n - (n % BLOCK);
    let xp = x.as_ptr();
    let op = out.as_mut_ptr();
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let zero = unsafe { V::zero() };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let theta = unsafe { V::splat(threshold) };
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= n == x.len()` — the block is inside `x`.
        let v = unsafe { V::load(xp.add(i)) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let r = unsafe { v.max(zero).min(theta).div(theta) };
        // SAFETY: `i + 8 <= nb <= n == out.len()` — the block is inside `out`.
        unsafe { r.store(op.add(i)) };
        i += BLOCK;
    }
    for j in nb..n {
        // SAFETY: tail `j < n`, inside both `x` and `out` (equal lengths).
        unsafe { *op.add(j) = super::clamp_ratio(*xp.add(j), threshold) };
    }
}

/// Quantising encode shared by the rate and burst codings: `out[i] =
/// round_half_up(min(max(x[i], 0), θ) / θ · scale)` as an `f32` whole
/// number — the lane-blocked twin of [`super::quantize_value`], which the
/// tail calls.
///
/// Rounding is half-up (`trunc(y) + (y − trunc(y) ≥ 0.5 ? 1.0 : 0.0)`),
/// which equals `f32::round` (half-away-from-zero) on the non-negative
/// domain these encodes live in, and is exact: `y − trunc(y)` is computed
/// without error for finite `y ≥ 0` (Sterbenz), so every component is a
/// correctly rounded elementwise op and lanes match the tail bitwise.
///
/// # Safety
/// Requires `out.len() == x.len()` and `0 ≤ scale ≤ 2^24` (the
/// [`F32x8::trunc`] domain plus exact-integer headroom); the backend `V`
/// must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn encode_quant_generic<V: F32x8>(
    x: &[f32],
    threshold: f32,
    scale: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), x.len());
    debug_assert!((0.0..=16_777_216.0).contains(&scale));
    let n = x.len();
    let nb = n - (n % BLOCK);
    let xp = x.as_ptr();
    let op = out.as_mut_ptr();
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let zero = unsafe { V::zero() };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let theta = unsafe { V::splat(threshold) };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let sc = unsafe { V::splat(scale) };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let half = unsafe { V::splat(0.5) };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let one = unsafe { V::splat(1.0) };
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= n == x.len()` — the block is inside `x`.
        let v = unsafe { V::load(xp.add(i)) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let y = unsafe { v.max(zero).min(theta).div(theta).mul(sc) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let t = unsafe { y.trunc() };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let bump = unsafe { y.sub(t).cmp_ge(half).and(one) };
        // SAFETY: register ops plus a store into `out[i..i+8]`, in bounds as above.
        unsafe { t.add(bump).store(op.add(i)) };
        i += BLOCK;
    }
    for j in nb..n {
        // SAFETY: tail `j < n`, inside both `x` and `out` (equal lengths).
        unsafe { *op.add(j) = super::quantize_value(*xp.add(j), threshold, scale) };
    }
}

/// Pure in-place rescale used by decode paths: `io[i] = io[i] · mul / div`
/// — elementwise IEEE multiply then divide, trivially bit-identical across
/// backends.  In place because the rate decode writes raw spike counts
/// into the output buffer and rescales them where they sit.
///
/// # Safety
/// The backend `V` must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn scale_ratio_generic<V: F32x8>(io: &mut [f32], mul: f32, div: f32) {
    let n = io.len();
    let nb = n - (n % BLOCK);
    let p = io.as_mut_ptr();
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let mv = unsafe { V::splat(mul) };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let dv = unsafe { V::splat(div) };
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= n == io.len()` — the block is inside `io`.
        let v = unsafe { V::load(p.add(i)) };
        // SAFETY: register ops plus a store back into the same in-bounds block.
        unsafe { v.mul(mv).div(dv).store(p.add(i)) };
        i += BLOCK;
    }
    for j in nb..n {
        // SAFETY: tail `j < n == io.len()`.
        unsafe { *p.add(j) = *p.add(j) * mul / div };
    }
}

/// Phase-coding bit patterns, 8 neurons per block: for each input the
/// greedy binary expansion of `min(max(x, 0), θ)/θ` over the per-phase
/// weights `w_k = 2^-(k+1)` — bit `k` of `out[i]` is set iff phase `k`
/// fires in every period.  The lane-blocked twin of
/// [`super::phase_bits_value`], which the tail calls.
///
/// Per weight the lanes run one ordered `rem ≥ thresholds[k]` compare, a
/// masked subtract (`rem −= mask & w_k`; false lanes subtract `+0.0`, a
/// bitwise no-op since `rem` is never `-0.0` on this path), and a
/// `movemask` whose bit `l` lands in bit `k` of lane `l`'s pattern — the
/// exact per-value greedy loop, eight neurons at a time.
///
/// Inputs that clamp to a ratio `≤ 0.0` are forced silent (pattern 0) —
/// this matters because `thresholds[k] = w_k − 1e-6` goes *negative* once
/// `w_k < 1e-6` (`k ≥ 20`), at which point a zero remainder would fire
/// every remaining phase.  The per-value reference implements the same
/// guard as an early return.
///
/// # Safety
/// Requires `bits.len() == x.len()` and `weights.len() == thresholds.len()
/// <= 64` (patterns accumulate in a `u64`); the backend `V` must be
/// runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn phase_bits_generic<V: F32x8>(
    x: &[f32],
    threshold: f32,
    weights: &[f32],
    thresholds: &[f32],
    bits: &mut [u64],
) {
    debug_assert_eq!(bits.len(), x.len());
    debug_assert_eq!(weights.len(), thresholds.len());
    debug_assert!(weights.len() <= 64);
    let n = x.len();
    let nb = n - (n % BLOCK);
    let xp = x.as_ptr();
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let zero = unsafe { V::zero() };
    // SAFETY: register-only lane op; the backend is runnable per dispatch.
    let theta = unsafe { V::splat(threshold) };
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= n == x.len()` — the block is inside `x`.
        let v = unsafe { V::load(xp.add(i)) };
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let ratio = unsafe { v.max(zero).min(theta).div(theta) };
        // Lanes whose ratio <= 0.0 must produce pattern 0 (see above).
        // SAFETY: register-only lane op; the backend is runnable per dispatch.
        let silent = unsafe { zero.cmp_ge(ratio).movemask() };
        let mut rem = ratio;
        let mut lane_bits = [0u64; BLOCK];
        for (k, (&w, &th)) in weights.iter().zip(thresholds).enumerate() {
            // SAFETY: register-only lane op; the backend is runnable per dispatch.
            let fire = unsafe { rem.cmp_ge(V::splat(th)) };
            // SAFETY: register-only lane op; the backend is runnable per dispatch.
            rem = unsafe { rem.sub(fire.and(V::splat(w))) };
            // SAFETY: register-only lane op; the backend is runnable per dispatch.
            let m = unsafe { fire.movemask() };
            for (l, lb) in lane_bits.iter_mut().enumerate() {
                *lb |= (((m >> l) & 1) as u64) << k;
            }
        }
        for (l, lb) in lane_bits.iter().enumerate() {
            bits[i + l] = if silent & (1 << l) != 0 { 0 } else { *lb };
        }
        i += BLOCK;
    }
    for (j, b) in bits.iter_mut().enumerate().skip(nb) {
        // SAFETY: tail `j < n == x.len()`; the helper only reads the value.
        *b = unsafe { super::phase_bits_value(*xp.add(j), threshold, weights, thresholds) };
    }
}

/// Copies `len` elements from `src` to `dst` through the vector unit.
///
/// # Safety
/// `src` and `dst` must be valid for `len` reads/writes and must not
/// overlap.
#[inline(always)]
unsafe fn copy_span<V: F32x8>(src: *const f32, dst: *mut f32, len: usize) {
    let nb = len - (len % BLOCK);
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= len`, inside the caller-guaranteed spans.
        unsafe { V::load(src.add(i)).store(dst.add(i)) };
        i += BLOCK;
    }
    while i < len {
        // SAFETY: `i < len`, inside the caller-guaranteed spans.
        unsafe { *dst.add(i) = *src.add(i) };
        i += 1;
    }
}

/// Writes `len` zeros (`+0.0`) starting at `dst`.
///
/// # Safety
/// `dst` must be valid for `len` writes.
#[inline(always)]
unsafe fn zero_span<V: F32x8>(dst: *mut f32, len: usize) {
    let nb = len - (len % BLOCK);
    let mut i = 0usize;
    while i < nb {
        // SAFETY: `i + 8 <= nb <= len`, inside the caller-guaranteed span.
        unsafe { V::zero().store(dst.add(i)) };
        i += BLOCK;
    }
    while i < len {
        // SAFETY: `i < len`, inside the caller-guaranteed span.
        unsafe { *dst.add(i) = 0.0 };
        i += 1;
    }
}

/// im2col patch unrolling, restructured from the historical per-element
/// branchy loop into "zero-fill the padded prefix, bulk-copy the valid
/// span, zero-fill the padded suffix" per kernel row.  Copies and
/// zero-stores are trivially bitwise-identical across backends, so this
/// kernel needs no reduction-order argument at all.
///
/// The geometry parameters are passed flat (rather than as
/// [`crate::Conv2dGeometry`]) to keep this module independent of the
/// higher-level conv types.
///
/// # Safety
/// Requires `x.len() == c*h*w` and `out.len() == out_positions*patch_len`
/// for the geometry implied by the parameters (kernel `k`, stride `s`,
/// padding `p`, output `oh×ow`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn im2col_generic<V: F32x8>(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let patch_len = c * k * k;
    debug_assert_eq!(x.len(), c * h * w);
    debug_assert_eq!(out.len(), oh * ow * patch_len);
    let xp = x.as_ptr();
    let op = out.as_mut_ptr();
    let mut row = 0usize;
    for oy in 0..oh {
        for ox in 0..ow {
            let base = row * patch_len;
            let ix0 = (ox * s) as isize - p as isize;
            // kx positions with an in-bounds input column: lo..hi.
            let lo = (-ix0).clamp(0, k as isize) as usize;
            let hi = (w as isize - ix0).clamp(0, k as isize) as usize;
            for ci in 0..c {
                for ky in 0..k {
                    // SAFETY: `base + ci*k*k + ky*k + k <= oh*ow*patch_len == out.len()`
                    // for every (oy, ox, ci, ky) in these loop ranges.
                    let dst = unsafe { op.add(base + ci * k * k + ky * k) };
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        // SAFETY: the destination row `dst..dst+k` is inside `out` (see above).
                        unsafe { zero_span::<V>(dst, k) };
                        continue;
                    }
                    // SAFETY: `0 <= iy < h`, so the input row lies inside `x` (len `c*h*w`).
                    let src_row = unsafe { xp.add(ci * h * w + iy as usize * w) };
                    // SAFETY: prefix/suffix zero-fills and the copy cover exactly
                    // `dst..dst+k` (in bounds above); the copied span
                    // `ix0+lo..ix0+hi` is the clamped in-bounds part of the row.
                    unsafe {
                        zero_span::<V>(dst, lo);
                        copy_span::<V>(src_row.offset(ix0 + lo as isize), dst.add(lo), hi - lo);
                        zero_span::<V>(dst.add(hi), k - hi);
                    }
                }
            }
            row += 1;
        }
    }
}

/// Scalar form of the exact integer phase-weight sum: every spike at time
/// `t` contributes `2^(!t & mask)` (for a power-of-two period `mask + 1`,
/// `!t & mask` is `period-1 - phase`).  Integer addition is exact and
/// associative, so the result is independent of spike order, accumulation
/// strategy and ISA **by construction** — which is why this kernel family,
/// unlike the float reductions above, needs no canonical lane order: the
/// four independent accumulators here and the vector shifts of
/// [`phase_pow2_sum_avx2`] are free to differ in shape.
pub(crate) fn phase_pow2_sum_scalar(train: &[u32], mask: u32) -> u64 {
    let mut chunks = train.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
    for q in chunks.by_ref() {
        s0 += 1u64 << (!q[0] & mask);
        s1 += 1u64 << (!q[1] & mask);
        s2 += 1u64 << (!q[2] & mask);
        s3 += 1u64 << (!q[3] & mask);
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for &t in chunks.remainder() {
        s += 1u64 << (!t & mask);
    }
    s
}

/// AVX2 form of [`phase_pow2_sum_scalar`]: eight spikes per iteration via
/// the variable per-lane shift (`vpsllvd`, the instruction that makes this
/// kernel AVX2-only — SSE2 has no per-lane shift counts and runs the
/// scalar form instead), each `u32` power widened to a `u64` lane before
/// accumulation so the vector sums cannot wrap.
///
/// # Safety
/// Requires AVX2 (callers dispatch through the resolved backend) and
/// `mask < 32` (the shift count domain of `vpsllvd`; asserted by the
/// public wrapper).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn phase_pow2_sum_avx2(train: &[u32], mask: u32) -> u64 {
    use core::arch::x86_64::*;
    let vmask = _mm256_set1_epi32(mask as i32);
    let one = _mm256_set1_epi32(1);
    let mut acc = _mm256_setzero_si256();
    let mut chunks = train.chunks_exact(8);
    for q in chunks.by_ref() {
        // SAFETY: `q` is exactly 8 contiguous u32s; loadu has no alignment
        // requirement.
        let v = unsafe { _mm256_loadu_si256(q.as_ptr().cast()) };
        let sh = _mm256_andnot_si256(v, vmask);
        let pw = _mm256_sllv_epi32(one, sh);
        let lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(pw));
        let hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(pw));
        acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
    }
    let mut lanes = [0u64; 4];
    // SAFETY: `lanes` is 32 bytes of writable memory; storeu is unaligned.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
    let mut s = lanes.iter().sum::<u64>();
    for &t in chunks.remainder() {
        s += 1u64 << (!t & mask);
    }
    s
}
