//! Generic lane-blocked kernels, instantiated once per [`F32x8`] backend.
//!
//! Every kernel here defines the **canonical operation order** for the whole
//! workspace: columns are consumed in ascending 8-wide blocks, each block's
//! partial products live in eight independent lane accumulators, the lanes
//! are combined with the fixed tree in [`super::vec::reduce8`], and the
//! `n % 8` tail elements are added sequentially afterwards.  The scalar
//! backend executes exactly this algorithm, so whichever ISA runs a kernel,
//! the result bits are the same.
//!
//! # Safety
//!
//! All functions in this module are `unsafe`: they index through raw
//! pointers and trust the slice-length / index-bounds contracts that the
//! safe dispatch wrappers in [`super`] assert before calling in, and the
//! x86 instantiations additionally require the matching CPU features
//! (guaranteed by runtime dispatch).

use super::vec::{reduce8, F32x8, BLOCK};

/// Canonicalises a bias value used to seed an accumulator: `b + 0.0`
/// flushes `-0.0` to `+0.0` and leaves every other value (including NaN
/// payloads produced upstream) bitwise unchanged.
///
/// Seeding from `+0.0` rather than `-0.0` is what makes "skip the zero
/// terms" a *bitwise* no-op on the sparse paths: under IEEE-754
/// round-to-nearest, `acc + (w * ±0.0)` can only differ from `acc` when
/// `acc` is `-0.0` and the product is `+0.0` (or vice versa), and a lane
/// seeded `+0.0` can never become `-0.0` again (an IEEE add yields `-0.0`
/// only when both operands are `-0.0`).
#[inline(always)]
pub(crate) fn seed_from_bias(b: f32) -> f32 {
    b + 0.0
}

/// Dense mat-vec with optional bias seeding: `out[i] = seed(bias[i]) + Σ_j
/// a[i][j]·x[j]` in the canonical lane-blocked order.  An empty `bias`
/// means "no bias": `out[i]` is the plain dot product.
///
/// # Safety
/// Requires `a.len() == m*n`, `x.len() == n`, `out.len() == m` and
/// `bias.len() ∈ {0, m}`; the backend `V` must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn matvec_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(out.len(), m);
    debug_assert!(bias.is_empty() || bias.len() == m);
    let nb = n - (n % BLOCK);
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    let has_bias = !bias.is_empty();
    for (i, o) in out.iter_mut().enumerate() {
        let row = unsafe { ap.add(i * n) };
        let mut acc = unsafe { V::zero() };
        let mut b = 0usize;
        while b < nb {
            let xv = unsafe { V::load(xp.add(b)) };
            let rv = unsafe { V::load(row.add(b)) };
            acc = unsafe { acc.add(rv.mul(xv)) };
            b += BLOCK;
        }
        let mut s = unsafe { acc.reduce() };
        for j in nb..n {
            s += unsafe { *row.add(j) * *xp.add(j) };
        }
        *o = if has_bias {
            seed_from_bias(bias[i]) + s
        } else {
            s
        };
    }
}

/// Groups the lane-blocked body of an `active` index list by lane
/// (`j % 8`), preserving the ascending order inside each lane, and hands
/// the grouped indices plus the 9 group boundaries to `f`.
///
/// A counting sort into a thread-local scratch buffer: the buffer grows to
/// the largest `|active|` seen on this thread and is then reused, so the
/// simulation hot path stays allocation-free in the steady state.
fn with_lane_buckets<R>(body: &[u32], f: impl FnOnce(&[u32], &[usize; BLOCK + 1]) -> R) -> R {
    thread_local! {
        static BUCKETS: core::cell::RefCell<Vec<u32>> =
            const { core::cell::RefCell::new(Vec::new()) };
    }
    BUCKETS.with(|cell| {
        let mut buckets = cell.borrow_mut();
        buckets.clear();
        buckets.resize(body.len(), 0);
        let mut counts = [0usize; BLOCK];
        for &j in body {
            counts[(j as usize) % BLOCK] += 1;
        }
        let mut starts = [0usize; BLOCK + 1];
        for l in 0..BLOCK {
            starts[l + 1] = starts[l] + counts[l];
        }
        let mut cursor = starts;
        for &j in body {
            let l = (j as usize) % BLOCK;
            buckets[cursor[l]] = j;
            cursor[l] += 1;
        }
        f(&buckets, &starts)
    })
}

/// Sparse mat-vec: like [`matvec_generic`] with bias, but `O(m·|active|)` —
/// each row touches only the active columns.  `active` must hold the
/// ascending, duplicate-free indices of the nonzero entries of `x`.
///
/// The kernel is deliberately **scalar on every backend**.  A vector
/// version would have to choose between processing whole 8-wide blocks
/// (degrades to the dense kernel's cost once active columns are scattered —
/// at density `d` a fraction `1-(1-d)^8` of blocks contain an active
/// column) or compacting the active columns into vector lanes (changes the
/// lane assignment, and with it the reduction order and the result bits).
/// Instead the active body is grouped by lane once per call
/// ([`with_lane_buckets`], amortised over all `m` rows), and each row runs
/// one register-accumulator loop per lane — the same `O(|active|)`
/// sequential multiply-adds as a plain compressed dot product, just split
/// into eight sub-sequences that feed the canonical [`reduce8`] tree.
///
/// Bit-identity with the dense kernel: lane `l` receives exactly the dense
/// kernel's ascending sub-sequence of column products `j ≡ l (mod 8)` with
/// the zero terms skipped, and each skipped term is `w·(±0.0)` added to an
/// accumulator that starts `+0.0` and can never become `-0.0` — a bitwise
/// no-op by the argument on [`seed_from_bias`].  Tail columns (`j ≥ n-n%8`)
/// are added sequentially after the reduction, exactly as in the dense
/// kernel, again with only zero terms skipped.
///
/// # Safety
/// Requires `a.len() == m*n`, `x.len() == n`, `bias.len() == m`,
/// `out.len() == m`, and every index in `active` to be `< n`.  (`V` only
/// fixes the dispatch signature; no vector instructions are issued.)
#[inline(always)]
pub(crate) unsafe fn matvec_sparse_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    active: &[u32],
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(out.len(), m);
    debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "active not sorted");
    let nb = n - (n % BLOCK);
    // Ascending order => one split separates lane-blocked body columns
    // from tail columns.
    let body_len = active.partition_point(|&j| (j as usize) < nb);
    let (body, tail) = active.split_at(body_len);
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    with_lane_buckets(body, |buckets, starts| {
        for (i, o) in out.iter_mut().enumerate() {
            let row = unsafe { ap.add(i * n) };
            let mut lanes = [0.0f32; BLOCK];
            for l in 0..BLOCK {
                let mut acc = 0.0f32;
                for &ju in &buckets[starts[l]..starts[l + 1]] {
                    let j = ju as usize;
                    acc += unsafe { *row.add(j) * *xp.add(j) };
                }
                lanes[l] = acc;
            }
            let mut s = reduce8(lanes);
            for &ju in tail {
                let j = ju as usize;
                s += unsafe { *row.add(j) * *xp.add(j) };
            }
            *o = seed_from_bias(bias[i]) + s;
        }
    });
}

/// Dense/sparse mat-mul: `out = seedrow(bias) .+ a·b` where `a` is `m×k`,
/// `b` is `k×n` and `bias` (empty for "no bias") seeds every output row.
///
/// Vectorised over the output columns in axpy form (`out_block +=
/// a[i][kk]·b_block`), which keeps the per-element operation order of the
/// classic `ikj` scalar loop **exactly** — only the machine width changes —
/// so this kernel is bit-for-bit the historical scalar matmul.  Terms with
/// `a[i][kk] == 0.0` are skipped; this is a bitwise no-op because every
/// accumulator starts from `+0.0` or a canonicalised bias and can never be
/// `-0.0` (see [`seed_from_bias`]).
///
/// # Safety
/// Requires `a.len() == m*k`, `b.len() == k*n`, `out.len() == m*n` and
/// `bias.len() ∈ {0, n}`; the backend `V` must be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn matmul_generic<V: F32x8>(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(bias.is_empty() || bias.len() == n);
    let nb = n - (n % BLOCK);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let has_bias = !bias.is_empty();
    let biasp = bias.as_ptr();
    for i in 0..m {
        let orow = unsafe { out.as_mut_ptr().add(i * n) };
        // Seed the output row: canonicalised bias (b_j + 0.0) or +0.0.
        let mut j = 0usize;
        while j < nb {
            let seed = if has_bias {
                unsafe { V::load(biasp.add(j)).add(V::zero()) }
            } else {
                unsafe { V::zero() }
            };
            unsafe { seed.store(orow.add(j)) };
            j += BLOCK;
        }
        for j in nb..n {
            unsafe {
                *orow.add(j) = if has_bias {
                    seed_from_bias(*biasp.add(j))
                } else {
                    0.0
                }
            };
        }
        for kk in 0..k {
            let aik = unsafe { *ap.add(i * k + kk) };
            if aik == 0.0 {
                continue; // bitwise no-op: accumulators are never -0.0
            }
            let av = unsafe { V::splat(aik) };
            let brow = unsafe { bp.add(kk * n) };
            let mut j = 0usize;
            while j < nb {
                let ov = unsafe { V::load(orow.add(j)) };
                let bv = unsafe { V::load(brow.add(j)) };
                unsafe { ov.add(av.mul(bv)).store(orow.add(j)) };
                j += BLOCK;
            }
            for j in nb..n {
                unsafe { *orow.add(j) += aik * *brow.add(j) };
            }
        }
    }
}

/// Sums `table[idx]` over every index in `idx`, in the canonical
/// lane-blocked order: 8-wide gather blocks accumulate into lanes, the
/// lanes reduce through the fixed tree, and the tail indices are added
/// sequentially.  This is the vector form of [`super::sum8_by`] — the two
/// must stay in lockstep.
///
/// # Safety
/// Every `idx` value must be `< table.len()` and `table.len()` must fit in
/// `i32` (the AVX2 gather treats indices as signed); the backend `V` must
/// be runnable on this CPU.
#[inline(always)]
pub(crate) unsafe fn sum_gather_generic<V: F32x8>(table: &[f32], idx: &[u32]) -> f32 {
    let n = idx.len();
    let nb = n - (n % BLOCK);
    let ip = idx.as_ptr();
    let mut acc = unsafe { V::zero() };
    let mut b = 0usize;
    while b < nb {
        let g = unsafe { V::gather(table, ip.add(b)) };
        acc = unsafe { acc.add(g) };
        b += BLOCK;
    }
    let mut s = unsafe { acc.reduce() };
    for &t in &idx[nb..] {
        s += table[t as usize];
    }
    s
}

/// Copies `len` elements from `src` to `dst` through the vector unit.
///
/// # Safety
/// `src` and `dst` must be valid for `len` reads/writes and must not
/// overlap.
#[inline(always)]
unsafe fn copy_span<V: F32x8>(src: *const f32, dst: *mut f32, len: usize) {
    let nb = len - (len % BLOCK);
    let mut i = 0usize;
    while i < nb {
        unsafe { V::load(src.add(i)).store(dst.add(i)) };
        i += BLOCK;
    }
    while i < len {
        unsafe { *dst.add(i) = *src.add(i) };
        i += 1;
    }
}

/// Writes `len` zeros (`+0.0`) starting at `dst`.
///
/// # Safety
/// `dst` must be valid for `len` writes.
#[inline(always)]
unsafe fn zero_span<V: F32x8>(dst: *mut f32, len: usize) {
    let nb = len - (len % BLOCK);
    let mut i = 0usize;
    while i < nb {
        unsafe { V::zero().store(dst.add(i)) };
        i += BLOCK;
    }
    while i < len {
        unsafe { *dst.add(i) = 0.0 };
        i += 1;
    }
}

/// im2col patch unrolling, restructured from the historical per-element
/// branchy loop into "zero-fill the padded prefix, bulk-copy the valid
/// span, zero-fill the padded suffix" per kernel row.  Copies and
/// zero-stores are trivially bitwise-identical across backends, so this
/// kernel needs no reduction-order argument at all.
///
/// The geometry parameters are passed flat (rather than as
/// [`crate::Conv2dGeometry`]) to keep this module independent of the
/// higher-level conv types.
///
/// # Safety
/// Requires `x.len() == c*h*w` and `out.len() == out_positions*patch_len`
/// for the geometry implied by the parameters (kernel `k`, stride `s`,
/// padding `p`, output `oh×ow`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn im2col_generic<V: F32x8>(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let patch_len = c * k * k;
    debug_assert_eq!(x.len(), c * h * w);
    debug_assert_eq!(out.len(), oh * ow * patch_len);
    let xp = x.as_ptr();
    let op = out.as_mut_ptr();
    let mut row = 0usize;
    for oy in 0..oh {
        for ox in 0..ow {
            let base = row * patch_len;
            let ix0 = (ox * s) as isize - p as isize;
            // kx positions with an in-bounds input column: lo..hi.
            let lo = (-ix0).clamp(0, k as isize) as usize;
            let hi = (w as isize - ix0).clamp(0, k as isize) as usize;
            for ci in 0..c {
                for ky in 0..k {
                    let dst = unsafe { op.add(base + ci * k * k + ky * k) };
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        unsafe { zero_span::<V>(dst, k) };
                        continue;
                    }
                    let src_row = unsafe { xp.add(ci * h * w + iy as usize * w) };
                    unsafe {
                        zero_span::<V>(dst, lo);
                        copy_span::<V>(src_row.offset(ix0 + lo as isize), dst.add(lo), hi - lo);
                        zero_span::<V>(dst.add(hi), k - hi);
                    }
                }
            }
            row += 1;
        }
    }
}
