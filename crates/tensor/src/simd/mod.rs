//! Runtime-dispatched SIMD kernels, bit-identical across backends.
//!
//! Every hot slice kernel in the workspace (dense/sparse mat-vec, mat-mul,
//! `im2col` unrolling and the tabulated exp-PSC sum used by TTAS decoding)
//! is written **once** as a generic lane-blocked algorithm over an 8-lane
//! vector abstraction (`vec::F32x8`) and instantiated per ISA:
//!
//! * **scalar** — portable `[f32; 8]` emulation, compiled on every target;
//! * **sse2** — two `__m128` halves (baseline on `x86_64`);
//! * **avx2** — one `__m256`, selected behind one-time runtime detection.
//!
//! Because the block width, per-lane IEEE operations (no FMA) and the
//! lane-reduction tree are fixed independently of the ISA, all three
//! backends produce **byte-identical** results — the property the
//! workspace-wide bit-identity matrix in `tests/workspace_bit_identity.rs`
//! and `crates/tensor/tests/simd_kernel_proptest.rs` enforce.
//!
//! ## Selecting a backend
//!
//! The active backend is chosen once, on first use, from the [`SIMD_ENV_VAR`]
//! (`NRSNN_SIMD`) environment variable — mirroring how `NRSNN_THREADS`
//! selects sweep parallelism:
//!
//! * `auto` (or unset) — best available backend: AVX2, else SSE2, else scalar;
//! * `scalar` / `sse2` / `avx2` — request that backend explicitly;
//! * anything else — a typed [`TensorError::InvalidSimdOverride`] from
//!   [`resolve_env`] (and a panic from [`active_backend`], which has no way
//!   to return it).
//!
//! Requesting an ISA the CPU lacks is **not** an error: the request degrades
//! along the documented fallback chain `avx2 → sse2 → scalar` (see
//! [`SimdBackend::resolve`]). This keeps one exported `NRSNN_SIMD=avx2`
//! setting usable across heterogeneous machines; forcing the portable path
//! with `NRSNN_SIMD=scalar` always works everywhere.

mod kernels;
mod vec;

pub use vec::{reduce8, BLOCK};

use crate::{Conv2dGeometry, TensorError};
use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable that overrides SIMD backend selection
/// (`scalar`/`sse2`/`avx2`/`auto`). See the [module docs](self) for the
/// exact semantics; the parallelism analogue is
/// `nrsnn_runtime::THREADS_ENV_VAR` (`NRSNN_THREADS`).
pub const SIMD_ENV_VAR: &str = "NRSNN_SIMD";

/// A SIMD instruction-set backend for the tensor kernels.
///
/// Variants are ordered from narrowest to widest; "widest available"
/// selection and the fallback rule both walk this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdBackend {
    /// Portable scalar emulation of the 8-lane machine; always available.
    Scalar,
    /// SSE2 (two 128-bit halves); baseline on `x86_64`.
    Sse2,
    /// AVX2 (one 256-bit register); detected at runtime.
    Avx2,
}

impl SimdBackend {
    /// The canonical lowercase name, as accepted by [`parse_override`].
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Sse2 => "sse2",
            SimdBackend::Avx2 => "avx2",
        }
    }

    /// Whether this backend issues real vector instructions.
    ///
    /// `false` only for [`SimdBackend::Scalar`].  Callers that tune a
    /// *performance* decision to the kernel speed (never a result — every
    /// backend is bit-identical) can use this instead of matching on the
    /// exact ISA: the dense kernels are several times faster on any vector
    /// backend, which e.g. moves the sparse-vs-dense crossover density in
    /// `nrsnn_snn::SparsityPolicy`.
    pub fn is_vector(self) -> bool {
        !matches!(self, SimdBackend::Scalar)
    }

    /// Whether this backend can run on the current CPU.
    ///
    /// [`SimdBackend::Scalar`] is always available; the x86 backends
    /// require both `target_arch = "x86_64"` and the runtime CPUID check.
    pub fn is_available(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                SimdBackend::Scalar => true,
                SimdBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
                SimdBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            matches!(self, SimdBackend::Scalar)
        }
    }

    /// Applies the fallback rule against the actual CPU: the widest
    /// available backend at or below `self` in the chain
    /// `avx2 → sse2 → scalar`.
    ///
    /// Never fails — `scalar` terminates the chain on every platform. Which
    /// backend runs a kernel is unobservable from the results (they are
    /// bit-identical), only from throughput.
    pub fn resolve(self) -> SimdBackend {
        resolve_with(self, SimdBackend::is_available)
    }
}

/// The pure fallback rule behind [`SimdBackend::resolve`], parameterised
/// over an availability predicate so every combination is unit-testable
/// without controlling the host CPU: walk down `avx2 → sse2 → scalar` from
/// `requested` and return the first backend for which `available` holds
/// (`scalar` is returned unconditionally as the chain's terminal).
pub fn resolve_with(
    requested: SimdBackend,
    available: impl Fn(SimdBackend) -> bool,
) -> SimdBackend {
    let mut backend = requested;
    loop {
        if backend == SimdBackend::Scalar || available(backend) {
            return backend;
        }
        backend = match backend {
            SimdBackend::Avx2 => SimdBackend::Sse2,
            _ => SimdBackend::Scalar,
        };
    }
}

/// The widest backend available on this CPU (`avx2 → sse2 → scalar`).
pub fn detect_best() -> SimdBackend {
    SimdBackend::Avx2.resolve()
}

/// All backends available on this CPU, narrowest first (always starts with
/// [`SimdBackend::Scalar`]). Test matrices iterate this to cover every ISA
/// the host can actually run.
pub fn available_backends() -> Vec<SimdBackend> {
    [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Parses an [`SIMD_ENV_VAR`] override value.
///
/// Returns `Ok(None)` for `auto` (detect the best backend), `Ok(Some(_))`
/// for an explicit backend request (not yet resolved against the CPU), and
/// a typed [`TensorError::InvalidSimdOverride`] for anything else — an
/// unknown value is an error, never a silent fallback. Matching is
/// case-insensitive and ignores surrounding whitespace.
///
/// # Errors
/// [`TensorError::InvalidSimdOverride`] if the value is not one of
/// `scalar`, `sse2`, `avx2`, `auto`.
pub fn parse_override(value: &str) -> crate::Result<Option<SimdBackend>> {
    match value.trim().to_ascii_lowercase().as_str() {
        "auto" => Ok(None),
        "scalar" => Ok(Some(SimdBackend::Scalar)),
        "sse2" => Ok(Some(SimdBackend::Sse2)),
        "avx2" => Ok(Some(SimdBackend::Avx2)),
        _ => Err(TensorError::InvalidSimdOverride(value.trim().to_string())),
    }
}

/// Reads [`SIMD_ENV_VAR`] from the process environment and resolves it to
/// the backend that would run: the parsed override passed through the
/// fallback rule, or [`detect_best`] when the variable is unset or `auto`.
///
/// Long-lived entry points (e.g. `nrsnn-serve`) call this eagerly at
/// startup so a typo in the environment surfaces as a typed error instead
/// of a panic from the first kernel invocation.
///
/// # Errors
/// [`TensorError::InvalidSimdOverride`] if the variable is set to an
/// unknown value.
pub fn resolve_env() -> crate::Result<SimdBackend> {
    match std::env::var(SIMD_ENV_VAR) {
        Ok(value) => Ok(match parse_override(&value)? {
            Some(requested) => requested.resolve(),
            None => detect_best(),
        }),
        Err(_) => Ok(detect_best()),
    }
}

/// Lazily initialised active backend; 0 = uninitialised, otherwise
/// `backend_code`.  A plain atomic (not `OnceLock`) so tests and benches
/// can switch backends mid-process via [`set_backend`]; racing threads at
/// worst re-run the cheap env resolution, and because all backends are
/// bit-identical a concurrent switch can never change results.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn backend_code(b: SimdBackend) -> u8 {
    match b {
        SimdBackend::Scalar => 1,
        SimdBackend::Sse2 => 2,
        SimdBackend::Avx2 => 3,
    }
}

fn backend_from_code(code: u8) -> Option<SimdBackend> {
    match code {
        1 => Some(SimdBackend::Scalar),
        2 => Some(SimdBackend::Sse2),
        3 => Some(SimdBackend::Avx2),
        _ => None,
    }
}

/// The backend every dispatched kernel currently runs on.
///
/// Initialised on first call from [`resolve_env`] and cached; use
/// [`set_backend`] to switch afterwards.
///
/// # Panics
/// If [`SIMD_ENV_VAR`] holds an unknown value. Kernels are infallible, so
/// an invalid override cannot surface as a `Result` here; processes that
/// want the typed error validate with [`resolve_env`] at startup.
pub fn active_backend() -> SimdBackend {
    // ORDERING: Relaxed — ACTIVE is a standalone u8 cache cell; no other
    // memory is published through it, and racing first-time initialisers
    // all store the same resolved code, so any interleaving reads a
    // valid value.
    if let Some(b) = backend_from_code(ACTIVE.load(Ordering::Relaxed)) {
        return b;
    }
    let resolved = resolve_env().unwrap_or_else(|err| panic!("{err}"));
    // ORDERING: Relaxed — see the load above; the value is self-contained.
    ACTIVE.store(backend_code(resolved), Ordering::Relaxed);
    resolved
}

/// Forces the active backend for all subsequently dispatched kernels,
/// resolving `requested` through the fallback rule first; returns the
/// backend that will actually run. Used by the bit-identity test matrices
/// and the per-ISA benches; results never depend on the choice.
pub fn set_backend(requested: SimdBackend) -> SimdBackend {
    let resolved = requested.resolve();
    // ORDERING: Relaxed — the code is self-contained (no payload to
    // publish); dispatch sites tolerate reading the old backend during a
    // switch, results are bit-identical either way.
    ACTIVE.store(backend_code(resolved), Ordering::Relaxed);
    resolved
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `#[target_feature]` entry points per ISA.  The generic kernels are
    //! `#[inline(always)]`, so they inline into these wrappers and compile
    //! with the wrapper's feature set — the standard one-generic-kernel /
    //! per-ISA-monomorphisation pattern.

    macro_rules! isa_entry_points {
        ($feature:literal, $vty:ty) => {
            use crate::simd::kernels;

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn matvec(
                a: &[f32],
                m: usize,
                n: usize,
                x: &[f32],
                bias: &[f32],
                out: &mut [f32],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::matvec_generic::<$vty>(a, m, n, x, bias, out) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn matvec_sparse(
                a: &[f32],
                m: usize,
                n: usize,
                x: &[f32],
                active: &[u32],
                bias: &[f32],
                out: &mut [f32],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::matvec_sparse_generic::<$vty>(a, m, n, x, active, bias, out) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn matmul(
                a: &[f32],
                m: usize,
                k: usize,
                b: &[f32],
                n: usize,
                bias: &[f32],
                out: &mut [f32],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::matmul_generic::<$vty>(a, m, k, b, n, bias, out) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn sum_gather(table: &[f32], idx: &[u32]) -> f32 {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::sum_gather_generic::<$vty>(table, idx) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn encode_ratio(x: &[f32], threshold: f32, out: &mut [f32]) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::encode_ratio_generic::<$vty>(x, threshold, out) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn encode_quant(
                x: &[f32],
                threshold: f32,
                scale: f32,
                out: &mut [f32],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::encode_quant_generic::<$vty>(x, threshold, scale, out) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn scale_ratio(io: &mut [f32], mul: f32, div: f32) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::scale_ratio_generic::<$vty>(io, mul, div) }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn phase_bits(
                x: &[f32],
                threshold: f32,
                weights: &[f32],
                thresholds: &[f32],
                bits: &mut [u64],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe {
                    kernels::phase_bits_generic::<$vty>(x, threshold, weights, thresholds, bits)
                }
            }

            // SAFETY: thin per-ISA wrapper; callers must uphold the generic
            // kernel's `# Safety` contract, forwarded verbatim.
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn im2col(
                x: &[f32],
                c: usize,
                h: usize,
                w: usize,
                k: usize,
                s: usize,
                p: usize,
                oh: usize,
                ow: usize,
                out: &mut [f32],
            ) {
                // SAFETY: same contract as the callee; the `target_feature`
                // gate matches the instantiated backend's ISA.
                unsafe { kernels::im2col_generic::<$vty>(x, c, h, w, k, s, p, oh, ow, out) }
            }
        };
    }

    pub(crate) mod sse2 {
        isa_entry_points!("sse2", crate::simd::vec::Sse2V);
    }

    pub(crate) mod avx2 {
        isa_entry_points!("avx2", crate::simd::vec::Avx2V);
    }
}

/// Dispatches one kernel call to the resolved backend.
///
/// SAFETY (discharged at every expansion site): the wrapper has asserted
/// the slice-length/index contracts of the generic kernel, and `resolve()`
/// only ever returns a backend whose CPU features are present.
macro_rules! dispatch {
    ($backend:expr, $generic:ident :: $isa_fn:ident ( $($arg:expr),* $(,)? )) => {
        match $backend.resolve() {
            // SAFETY: the scalar instantiation needs no ISA; the expansion
            // site asserted the kernel's slice contracts (macro doc above).
            SimdBackend::Scalar => unsafe { kernels::$generic::<vec::ScalarV>($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: resolve() returned Sse2, so the ISA is present; slice
            // contracts asserted at the expansion site.
            SimdBackend::Sse2 => unsafe { x86::sse2::$isa_fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: resolve() returned Avx2, so the ISA is present; slice
            // contracts asserted at the expansion site.
            SimdBackend::Avx2 => unsafe { x86::avx2::$isa_fn($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("resolve() returns Scalar on non-x86_64"),
        }
    };
}

/// [`crate::matvec_slices`] on an explicit backend: `out[i] = Σ_j
/// a[i][j]·x[j]` in the canonical lane-blocked order.
///
/// # Panics
/// If `a.len() != m*n`, `x.len() != n` or `out.len() != m`. The checks are
/// real (not debug) assertions: the kernels read through raw pointers, so
/// a violated contract must stop before the first load.
pub fn matvec_slices_with(
    backend: SimdBackend,
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * n, "matvec: a.len() != m*n");
    assert_eq!(x.len(), n, "matvec: x.len() != n");
    assert_eq!(out.len(), m, "matvec: out.len() != m");
    dispatch!(backend, matvec_generic::matvec(a, m, n, x, &[], out))
}

/// [`crate::matvec_bias_slices`] on an explicit backend: `out[i] =
/// (bias[i] + 0.0) + Σ_j a[i][j]·x[j]` in the canonical lane-blocked
/// order.
///
/// # Panics
/// If any slice length disagrees with `m`/`n` (real assertions, see
/// [`matvec_slices_with`]).
pub fn matvec_bias_slices_with(
    backend: SimdBackend,
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * n, "matvec_bias: a.len() != m*n");
    assert_eq!(x.len(), n, "matvec_bias: x.len() != n");
    assert_eq!(bias.len(), m, "matvec_bias: bias.len() != m");
    assert_eq!(out.len(), m, "matvec_bias: out.len() != m");
    dispatch!(backend, matvec_generic::matvec(a, m, n, x, bias, out))
}

/// [`crate::matvec_sparse_slices`] on an explicit backend: the bias-seeded
/// `O(m·|active|)` mat-vec that touches only the active columns,
/// scatter-accumulating each product into its canonical lane (`j % 8`).
/// It runs the same scalar lane-blocked algorithm on every backend — see
/// `kernels::matvec_sparse_generic` for why a vector version would cost
/// either the sparsity or the bit-identity.  Bit-identical to
/// [`matvec_bias_slices_with`] whenever `active` lists exactly the nonzero
/// entries of `x` in ascending order (proof sketch on the kernel).
///
/// # Panics
/// If any slice length disagrees with `m`/`n`, or any active index is
/// `>= n` (real assertions, see [`matvec_slices_with`]).
#[allow(clippy::too_many_arguments)]
pub fn matvec_sparse_slices_with(
    backend: SimdBackend,
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    active: &[u32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * n, "matvec_sparse: a.len() != m*n");
    assert_eq!(x.len(), n, "matvec_sparse: x.len() != n");
    assert_eq!(bias.len(), m, "matvec_sparse: bias.len() != m");
    assert_eq!(out.len(), m, "matvec_sparse: out.len() != m");
    assert!(
        active.iter().all(|&j| (j as usize) < n),
        "matvec_sparse: active index out of range"
    );
    dispatch!(
        backend,
        matvec_sparse_generic::matvec_sparse(a, m, n, x, active, bias, out)
    )
}

/// [`crate::matmul_slices`] on an explicit backend: `out = a·b` in the
/// historical `ikj` order (vectorisation over output columns does not
/// change the per-element operation order — see
/// `kernels::matmul_generic`).
///
/// # Panics
/// If any slice length disagrees with `m`/`k`/`n` (real assertions, see
/// [`matvec_slices_with`]).
pub fn matmul_slices_with(
    backend: SimdBackend,
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul: a.len() != m*k");
    assert_eq!(b.len(), k * n, "matmul: b.len() != k*n");
    assert_eq!(out.len(), m * n, "matmul: out.len() != m*n");
    dispatch!(backend, matmul_generic::matmul(a, m, k, b, n, &[], out))
}

/// [`crate::matmul_sparse_slices`] on an explicit backend:
/// [`matmul_slices_with`] with every output row seeded from the
/// canonicalised `bias` (length `n`).
///
/// # Panics
/// If any slice length disagrees with `m`/`k`/`n` (real assertions, see
/// [`matvec_slices_with`]).
#[allow(clippy::too_many_arguments)]
pub fn matmul_sparse_slices_with(
    backend: SimdBackend,
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_sparse: a.len() != m*k");
    assert_eq!(b.len(), k * n, "matmul_sparse: b.len() != k*n");
    assert_eq!(bias.len(), n, "matmul_sparse: bias.len() != n");
    assert_eq!(out.len(), m * n, "matmul_sparse: out.len() != m*n");
    dispatch!(backend, matmul_generic::matmul(a, m, k, b, n, bias, out))
}

/// [`crate::im2col_slices`] on an explicit backend: patch unrolling as
/// zero-fills plus bulk span copies (bitwise-identical on every backend by
/// construction).
///
/// # Panics
/// If `x.len()` or `out.len()` disagree with the geometry (real
/// assertions, see [`matvec_slices_with`]).
pub fn im2col_slices_with(backend: SimdBackend, x: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    assert_eq!(x.len(), geom.in_len(), "im2col: x.len() != in_len");
    assert_eq!(
        out.len(),
        geom.out_positions() * geom.patch_len(),
        "im2col: out.len() != out_positions*patch_len"
    );
    dispatch!(
        backend,
        im2col_generic::im2col(
            x,
            geom.in_channels,
            geom.in_height,
            geom.in_width,
            geom.kernel,
            geom.stride,
            geom.padding,
            geom.out_height(),
            geom.out_width(),
            out,
        )
    )
}

/// Sums `table[idx]` over `idx` on an explicit backend, in the canonical
/// lane-blocked order — the vector twin of [`sum8_by`] (the SNN crate's
/// tabulated exp-PSC decode routes through this).
///
/// # Panics
/// If any index is out of bounds for `table`, or `table.len()` exceeds
/// `i32::MAX` (the AVX2 gather reads indices as signed `i32`). Real
/// assertions, see [`matvec_slices_with`].
pub fn sum_gather_with(backend: SimdBackend, table: &[f32], idx: &[u32]) -> f32 {
    assert!(
        table.len() <= i32::MAX as usize,
        "sum_gather: table too large for i32 gather indices"
    );
    assert!(
        idx.iter().all(|&t| (t as usize) < table.len()),
        "sum_gather: index out of range"
    );
    dispatch!(backend, sum_gather_generic::sum_gather(table, idx))
}

/// Exact integer phase-weight sum on an explicit backend: for each spike
/// time `t`, accumulates `2^(!t & mask)` into a `u64` — with a
/// power-of-two phase period `mask + 1`, that term is `2^(period-1-phase)`,
/// i.e. the phase-coding weight `2^-(phase+1)` scaled by `2^period`.  The
/// phase decode divides the sum back down in one rounding step.
///
/// Unlike the float reductions, this kernel needs no canonical lane order:
/// integer addition is exact and associative, so every backend is free to
/// pick its own accumulation shape (four scalar accumulators, or eight
/// `vpsllvd` lanes on AVX2) and still produce the identical `u64`.  SSE2
/// has no per-lane variable shift and runs the scalar form.
///
/// # Panics
/// If `mask + 1` is not a power of two or `mask >= 32` (the shift-count
/// domain of the AVX2 per-lane shift).
pub fn phase_pow2_sum_with(backend: SimdBackend, train: &[u32], mask: u32) -> u64 {
    assert!(
        mask < 32 && (mask + 1).is_power_of_two(),
        "phase_pow2_sum: mask must be 2^k - 1 with k <= 5"
    );
    match backend.resolve() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: resolve() only returns Avx2 when the CPU has it, and the
        // mask domain was asserted above.
        SimdBackend::Avx2 => unsafe { kernels::phase_pow2_sum_avx2(train, mask) },
        _ => kernels::phase_pow2_sum_scalar(train, mask),
    }
}

/// Lane-wise normalised clamp on an explicit backend: `out[i] =
/// min(max(x[i], 0), θ) / θ` with the canonical x86 `max`/`min` semantics —
/// the lane-blocked form of [`clamp_ratio`].  The TTFS/TTAS encodes use
/// this to compute every neuron's activation ratio in lanes before the
/// (inherently scalar) logarithm maps active ratios to spike times.
///
/// # Panics
/// If `out.len() != x.len()` or `threshold` is not strictly positive (real
/// assertions, see [`matvec_slices_with`]).
pub fn encode_ratio_with(backend: SimdBackend, x: &[f32], threshold: f32, out: &mut [f32]) {
    assert_eq!(out.len(), x.len(), "encode_ratio: out.len() != x.len()");
    assert!(threshold > 0.0, "encode_ratio: threshold must be positive");
    dispatch!(
        backend,
        encode_ratio_generic::encode_ratio(x, threshold, out)
    )
}

/// Lane-wise quantising encode on an explicit backend: `out[i] =
/// round_half_up(min(max(x[i], 0), θ)/θ · scale)` as an `f32` whole number
/// — the lane-blocked form of [`quantize_value`].  The rate coding uses
/// `scale = time_steps`, the burst coding `scale = max_spikes`; both then
/// materialise the spike trains from the counts in a scalar tail.
///
/// # Panics
/// If `out.len() != x.len()`, `threshold` is not strictly positive, or
/// `scale` is outside `[0, 2^24]` (the exact-integer domain of the
/// truncating lane conversion). Real assertions, see
/// [`matvec_slices_with`].
pub fn encode_quant_with(
    backend: SimdBackend,
    x: &[f32],
    threshold: f32,
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(out.len(), x.len(), "encode_quant: out.len() != x.len()");
    assert!(threshold > 0.0, "encode_quant: threshold must be positive");
    assert!(
        (0.0..=16_777_216.0).contains(&scale),
        "encode_quant: scale outside [0, 2^24]"
    );
    dispatch!(
        backend,
        encode_quant_generic::encode_quant(x, threshold, scale, out)
    )
}

/// Lane-wise in-place rescale on an explicit backend: `io[i] = io[i] · mul
/// / div`.  The rate decode uses this to map spike counts (written into
/// the output buffer first) back to values (`mul = θ`, `div =
/// time_steps`).
pub fn scale_ratio_with(backend: SimdBackend, io: &mut [f32], mul: f32, div: f32) {
    dispatch!(backend, scale_ratio_generic::scale_ratio(io, mul, div))
}

/// Lane-wise phase-coding bit patterns on an explicit backend: bit `k` of
/// `bits[i]` is set iff phase `k` of every period fires for input `x[i]` —
/// the lane-blocked form of [`phase_bits_value`] (greedy binary expansion
/// of the clamped ratio over `weights`, firing where the remainder clears
/// `thresholds`).  The phase coding computes each neuron's pattern once
/// here, then replays it across periods in a scalar tail.
///
/// # Panics
/// If `bits.len() != x.len()`, `threshold` is not strictly positive, or
/// `weights`/`thresholds` lengths differ or exceed 64 (patterns accumulate
/// in a `u64`). Real assertions, see [`matvec_slices_with`].
pub fn phase_bits_with(
    backend: SimdBackend,
    x: &[f32],
    threshold: f32,
    weights: &[f32],
    thresholds: &[f32],
    bits: &mut [u64],
) {
    assert_eq!(bits.len(), x.len(), "phase_bits: bits.len() != x.len()");
    assert!(threshold > 0.0, "phase_bits: threshold must be positive");
    assert_eq!(
        weights.len(),
        thresholds.len(),
        "phase_bits: weights.len() != thresholds.len()"
    );
    assert!(weights.len() <= 64, "phase_bits: more than 64 phases");
    dispatch!(
        backend,
        phase_bits_generic::phase_bits(x, threshold, weights, thresholds, bits)
    )
}

/// The canonical lane maximum: `if a > b { a } else { b }` — the exact
/// semantics of x86 `maxps` (returns the *second* operand on NaN or
/// equality), which is what every vector backend executes.  This is the
/// scalar tails' and per-value wrappers' definition of `max`; note it is
/// **not** `f32::max`, which treats NaN differently.
#[inline(always)]
pub fn lane_max(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// The canonical lane minimum: `if a < b { a } else { b }` — x86 `minps`
/// semantics (see [`lane_max`]).
#[inline(always)]
pub fn lane_min(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// The canonical clamped activation ratio every coding's encode starts
/// from: `min(max(x, 0), θ) / θ` under [`lane_max`]/[`lane_min`]
/// semantics.  NaN and `-0.0` activations both flush to `+0.0` (silent);
/// everything else lands in `[0, 1]`.  This is the per-value reference the
/// lane kernels must match bit for bit.
#[inline(always)]
pub fn clamp_ratio(x: f32, threshold: f32) -> f32 {
    lane_min(lane_max(x, 0.0), threshold) / threshold
}

/// Half-up rounding on the non-negative domain: `trunc(y) + (y − trunc(y)
/// ≥ 0.5 ? 1.0 : 0.0)`.  Equals `f32::round` for every finite `y ≥ 0`
/// (half-up and half-away-from-zero coincide there), but is built only
/// from operations the 8-lane machine has (truncation, subtract, ordered
/// compare, masked add) — SSE2 has no rounding instruction — so lanes and
/// scalar agree bitwise by construction: `y − trunc(y)` is exact for
/// finite `y ≥ 0`, and every other step is a single correctly rounded op.
#[inline(always)]
pub fn round_half_up_nonneg(y: f32) -> f32 {
    let t = y.trunc();
    t + if y - t >= 0.5 { 1.0 } else { 0.0 }
}

/// The canonical per-value quantising encode shared by the rate and burst
/// codings: `round_half_up(clamp_ratio(x, θ) · scale)` as an `f32` whole
/// number in `[0, scale]`.  The per-value reference of
/// [`encode_quant_with`].
#[inline(always)]
pub fn quantize_value(x: f32, threshold: f32, scale: f32) -> f32 {
    round_half_up_nonneg(clamp_ratio(x, threshold) * scale)
}

/// The canonical per-value phase-coding bit pattern: greedy binary
/// expansion of `clamp_ratio(x, θ)` over the per-phase `weights`, setting
/// bit `k` where the remainder clears `thresholds[k]`.  Ratios `≤ 0.0`
/// are silent (pattern 0) — the guard matters because `thresholds[k] =
/// w_k − 1e-6` goes negative once `w_k < 1e-6`, at which point a zero
/// remainder would fire every remaining phase.  The per-value reference of
/// [`phase_bits_with`].
#[inline(always)]
pub fn phase_bits_value(x: f32, threshold: f32, weights: &[f32], thresholds: &[f32]) -> u64 {
    debug_assert_eq!(weights.len(), thresholds.len());
    debug_assert!(weights.len() <= 64);
    let ratio = clamp_ratio(x, threshold);
    if ratio <= 0.0 {
        return 0;
    }
    let mut rem = ratio;
    let mut bits = 0u64;
    for (k, (&w, &th)) in weights.iter().zip(thresholds).enumerate() {
        if rem >= th {
            rem -= w;
            bits |= 1 << k;
        }
    }
    bits
}

/// Sums `term(0) + … + term(n-1)` in the canonical lane-blocked order
/// without materialising a slice: term `i` accumulates into lane `i % 8`
/// over ascending 8-wide blocks, the lanes combine through [`reduce8`],
/// and the `n % 8` tail adds sequentially.
///
/// This is the *scalar reference* for every lane-blocked reduction in the
/// workspace — [`sum_gather_with`] and the mat-vec kernels produce exactly
/// these bits — and is what non-tabulated decode paths use so that
/// tabulated and per-train decodes stay bitwise interchangeable.
pub fn sum8_by(n: usize, mut term: impl FnMut(usize) -> f32) -> f32 {
    let nb = n - (n % BLOCK);
    let mut lanes = [0.0f32; BLOCK];
    let mut i = 0usize;
    while i < nb {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += term(i + l);
        }
        i += BLOCK;
    }
    let mut s = reduce8(lanes);
    for j in nb..n {
        s += term(j);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_override_accepts_known_values() {
        assert_eq!(parse_override("auto").unwrap(), None);
        assert_eq!(parse_override("scalar").unwrap(), Some(SimdBackend::Scalar));
        assert_eq!(parse_override("sse2").unwrap(), Some(SimdBackend::Sse2));
        assert_eq!(parse_override("avx2").unwrap(), Some(SimdBackend::Avx2));
        // Case-insensitive, whitespace-tolerant — same lenience as the
        // NRSNN_THREADS parser applies to numbers.
        assert_eq!(parse_override(" AVX2 ").unwrap(), Some(SimdBackend::Avx2));
        assert_eq!(parse_override("Auto").unwrap(), None);
    }

    #[test]
    fn parse_override_rejects_unknown_values_with_typed_error() {
        for bad in ["", "avx512", "fastest", "1", "sse", "scalar,avx2"] {
            match parse_override(bad) {
                Err(TensorError::InvalidSimdOverride(v)) => assert_eq!(v, bad.trim()),
                other => panic!("expected InvalidSimdOverride for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn fallback_rule_walks_down_the_chain() {
        use SimdBackend::{Avx2, Scalar, Sse2};
        // Exhaustive over the 4 availability combos (scalar is always
        // available by definition and never consulted).
        for (sse2_ok, avx2_ok) in [(false, false), (true, false), (false, true), (true, true)] {
            let avail = |b: SimdBackend| match b {
                Scalar => true,
                Sse2 => sse2_ok,
                Avx2 => avx2_ok,
            };
            assert_eq!(resolve_with(Scalar, avail), Scalar);
            assert_eq!(
                resolve_with(Sse2, avail),
                if sse2_ok { Sse2 } else { Scalar }
            );
            let expect_avx2 = if avx2_ok {
                Avx2
            } else if sse2_ok {
                Sse2
            } else {
                Scalar
            };
            assert_eq!(resolve_with(Avx2, avail), expect_avx2);
        }
    }

    #[test]
    fn scalar_is_always_available_and_resolves_to_itself() {
        assert!(SimdBackend::Scalar.is_available());
        assert_eq!(SimdBackend::Scalar.resolve(), SimdBackend::Scalar);
        assert_eq!(available_backends()[0], SimdBackend::Scalar);
    }

    #[test]
    fn detect_best_is_available_and_widest() {
        let best = detect_best();
        assert!(best.is_available());
        for b in available_backends() {
            assert!(b <= best, "{b:?} wider than detected best {best:?}");
        }
    }

    #[test]
    fn set_backend_resolves_and_sticks() {
        let prev = active_backend();
        let got = set_backend(SimdBackend::Scalar);
        assert_eq!(got, SimdBackend::Scalar);
        assert_eq!(active_backend(), SimdBackend::Scalar);
        // A request for the widest backend resolves to something available.
        let wide = set_backend(SimdBackend::Avx2);
        assert!(wide.is_available());
        assert_eq!(active_backend(), wide);
        set_backend(prev);
    }

    #[test]
    fn backend_codes_round_trip() {
        for b in [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2] {
            assert_eq!(backend_from_code(backend_code(b)), Some(b));
        }
        assert_eq!(backend_from_code(0), None);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for b in [SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2] {
            assert_eq!(parse_override(b.name()).unwrap(), Some(b));
        }
    }

    #[test]
    fn sum8_by_matches_sum_gather_on_every_backend() {
        let table: Vec<f32> = (0..23).map(|i| (i as f32 * 0.37 - 3.0).exp()).collect();
        let idx: Vec<u32> = (0..23).rev().map(|i| i % 23).collect();
        let reference = sum8_by(idx.len(), |i| table[idx[i] as usize]);
        for backend in available_backends() {
            let got = sum_gather_with(backend, &table, &idx);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "sum_gather({backend:?}) != sum8_by"
            );
        }
    }

    #[test]
    fn phase_pow2_sum_matches_direct_shift_sum_on_every_backend() {
        for mask in [0u32, 1, 3, 7, 15, 31] {
            // Lengths straddling the 4- and 8-wide chunk boundaries.
            for len in [0usize, 1, 3, 4, 7, 8, 9, 16, 23, 64, 100] {
                let train: Vec<u32> = (0..len as u32)
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect();
                let reference: u64 = train.iter().map(|&t| 1u64 << (!t & mask)).sum();
                for backend in available_backends() {
                    assert_eq!(
                        phase_pow2_sum_with(backend, &train, mask),
                        reference,
                        "phase_pow2_sum({backend:?}) mask={mask} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "phase_pow2_sum: mask must be 2^k - 1")]
    fn phase_pow2_sum_rejects_non_mask_shapes() {
        phase_pow2_sum_with(SimdBackend::Scalar, &[0, 1, 2], 5);
    }

    #[test]
    fn dispatched_matvec_matches_scalar_bitwise_smoke() {
        let (m, n) = (5, 19); // non-multiple width exercises the tail
        let a: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.31 - 2.7).sin()).collect();
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.77 - 1.1).cos()).collect();
        let bias: Vec<f32> = (0..m)
            .map(|i| if i == 3 { -0.0 } else { i as f32 })
            .collect();
        let mut reference = vec![0.0f32; m];
        matvec_bias_slices_with(SimdBackend::Scalar, &a, m, n, &x, &bias, &mut reference);
        for backend in available_backends() {
            let mut out = vec![f32::NAN; m];
            matvec_bias_slices_with(backend, &a, m, n, &x, &bias, &mut out);
            for (o, r) in out.iter().zip(&reference) {
                assert_eq!(o.to_bits(), r.to_bits(), "matvec({backend:?}) != scalar");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matvec: a.len() != m*n")]
    fn dispatched_matvec_rejects_bad_lengths_in_release() {
        // Real assertions (not debug) must guard the raw-pointer kernels.
        let mut out = vec![0.0f32; 2];
        matvec_slices_with(SimdBackend::Scalar, &[1.0; 3], 2, 2, &[1.0; 2], &mut out);
    }
}
