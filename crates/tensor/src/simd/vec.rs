//! The fixed-width vector abstraction behind the SIMD kernels.
//!
//! Every backend models the **same abstract machine**: eight `f32` lanes,
//! IEEE-754 single-precision multiply and add per lane (no FMA — a fused
//! multiply-add rounds once instead of twice and would change bits), and a
//! horizontal reduction that combines the lanes in one canonical tree:
//!
//! ```text
//! reduce([l0..l7]) = ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
//! ```
//!
//! The tree is exactly what falls out of the natural two-step narrowing on
//! x86 — add the high 128-bit half onto the low half, then the high 64 bits
//! onto the low 64, then lane 1 onto lane 0 — and the scalar backend
//! replays it verbatim.  Because per-lane `mul`/`add` are correctly rounded
//! IEEE operations on every backend and the reduction order is pinned, a
//! generic kernel instantiated with any [`F32x8`] implementation produces
//! **bit-identical** results to the scalar instantiation.

/// Number of `f32` lanes in the abstract vector — fixed at 8 for every
/// backend (AVX2 maps it to one `__m256`, SSE2 to two `__m128`s, the scalar
/// backend to `[f32; 8]`), so the blocking and reduction order — and hence
/// the result bits — never depend on which ISA runs the kernel.
pub const BLOCK: usize = 8;

/// Eight `f32` lanes with IEEE mul/add and the canonical reduction tree.
///
/// # Safety
///
/// All methods are `unsafe` for two reasons: pointer-based `load`/`store`/
/// `gather` trust the caller for bounds, and the x86 implementations must
/// only run on CPUs that support their ISA (guaranteed by the runtime
/// dispatch in [`super::SimdBackend::resolve`]).
pub(crate) trait F32x8: Copy {
    /// All lanes `+0.0`.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn zero() -> Self;
    /// All lanes `v`.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn splat(v: f32) -> Self;
    /// Loads lanes `0..8` from `src` (unaligned).
    ///
    /// # Safety
    /// `src..src+8` must be readable, properly aligned for `f32` reads.
    unsafe fn load(src: *const f32) -> Self;
    /// Stores lanes `0..8` to `dst` (unaligned).
    ///
    /// # Safety
    /// `dst..dst+8` must be writable, properly aligned for `f32` writes.
    unsafe fn store(self, dst: *mut f32);
    /// Lane-wise IEEE single add.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn add(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single multiply.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn mul(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single subtract.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn sub(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single divide.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn div(self, rhs: Self) -> Self;
    /// Lane-wise maximum with the **canonical x86 semantics**
    /// `max(a, b) = if a > b { a } else { b }` — returns the *second*
    /// operand when the lanes compare unordered (NaN) or equal, exactly
    /// like `maxps`.  This is *not* `f32::max` (which is NaN-commutative);
    /// the scalar backend and [`super::lane_max`] replicate the x86 rule so
    /// every backend agrees bit for bit.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn max(self, rhs: Self) -> Self;
    /// Lane-wise minimum with the canonical x86 semantics
    /// `min(a, b) = if a < b { a } else { b }` (see [`F32x8::max`]).
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn min(self, rhs: Self) -> Self;
    /// Lane-wise round-toward-zero to a whole number, via the x86
    /// `cvttps2dq`/`cvtdq2ps` pair (SSE2 has no float rounding
    /// instruction).  **Precondition:** every lane is finite with
    /// `|x| < 2^31`; outside that domain the i32 round-trip saturates
    /// differently per backend.  The coding kernels keep lanes in
    /// `[0, 2^24]`, where the round-trip is exact and equals `f32::trunc`.
    ///
    /// # Safety
    /// No memory preconditions; the `|x| < 2^31` domain bound above is a
    /// values contract, not a soundness one.
    unsafe fn trunc(self) -> Self;
    /// Lane-wise ordered `>=` compare producing a mask: all-ones bits where
    /// `self >= rhs`, `+0.0` otherwise.  Unordered (NaN) lanes compare
    /// false, exactly like `cmpps`.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn cmp_ge(self, rhs: Self) -> Self;
    /// Lane-wise bitwise AND — combines a [`F32x8::cmp_ge`] mask with a
    /// value vector (`mask & v` keeps `v` in true lanes, `+0.0` in false
    /// lanes).
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn and(self, rhs: Self) -> Self;
    /// Packs the sign bit of each lane into bit `l` of the result, exactly
    /// like `movmskps`.  Applied to a [`F32x8::cmp_ge`] mask this yields
    /// one bit per lane of the compare outcome.
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn movemask(self) -> u32;
    /// Lane `l` = `table[idx[l]]` for `idx[0..8]`; all indices must be in
    /// bounds (no backend checks them).
    ///
    /// # Safety
    /// `idx..idx+8` must be readable and every index must be in bounds
    /// for `table`.
    unsafe fn gather(table: &[f32], idx: *const u32) -> Self;
    /// Horizontal sum in the canonical fixed tree (see module docs).
    ///
    /// # Safety
    /// No preconditions beyond the trait ISA contract — register-only.
    unsafe fn reduce(self) -> f32;
}

/// Portable backend: eight plain `f32`s.  This is the *reference semantics*
/// of the abstract machine — the SIMD backends are correct exactly when
/// they match it bit for bit.
#[derive(Clone, Copy)]
pub(crate) struct ScalarV([f32; 8]);

impl F32x8 for ScalarV {
    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn zero() -> Self {
        ScalarV([0.0; 8])
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarV([v; 8])
    }

    // SAFETY: the only unsafe op is the lane load below, inside the
    // caller-guaranteed `src..src+8` readable span.
    #[inline(always)]
    unsafe fn load(src: *const f32) -> Self {
        let mut lanes = [0.0f32; 8];
        for (l, lane) in lanes.iter_mut().enumerate() {
            // SAFETY: `l < 8`, within the caller-guaranteed readable span.
            *lane = unsafe { *src.add(l) };
        }
        ScalarV(lanes)
    }

    // SAFETY: the only unsafe op is the lane store below, inside the
    // caller-guaranteed `dst..dst+8` writable span.
    #[inline(always)]
    unsafe fn store(self, dst: *mut f32) {
        for (l, lane) in self.0.iter().enumerate() {
            // SAFETY: `l < 8`, within the caller-guaranteed writable span.
            unsafe { *dst.add(l) = *lane };
        }
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane *= r;
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane -= r;
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane /= r;
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = super::lane_max(*lane, r);
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = super::lane_min(*lane, r);
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn trunc(self) -> Self {
        // Within the documented |x| < 2^31 precondition `f32::trunc` is
        // exactly the cvttps2dq/cvtdq2ps round-trip.
        let mut lanes = self.0;
        for lane in lanes.iter_mut() {
            *lane = lane.trunc();
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn cmp_ge(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = if *lane >= r {
                f32::from_bits(u32::MAX)
            } else {
                0.0
            };
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn and(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = f32::from_bits(lane.to_bits() & r.to_bits());
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn movemask(self) -> u32 {
        let mut m = 0u32;
        for (l, lane) in self.0.iter().enumerate() {
            m |= (lane.to_bits() >> 31) << l;
        }
        m
    }

    // SAFETY: reads `idx..idx+8` and indexes `table`, both guaranteed
    // by the trait contract (indices in bounds, idx span readable).
    #[inline(always)]
    unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
        let mut lanes = [0.0f32; 8];
        for (l, lane) in lanes.iter_mut().enumerate() {
            // SAFETY: `l < 8`, within the caller-guaranteed `idx` span.
            let i = unsafe { *idx.add(l) } as usize;
            // SAFETY: every gathered index is in bounds per the trait contract.
            *lane = unsafe { *table.get_unchecked(i) };
        }
        ScalarV(lanes)
    }

    // SAFETY: trivially safe — plain arithmetic on owned lanes; `unsafe`
    // only to match the trait signature.
    #[inline(always)]
    unsafe fn reduce(self) -> f32 {
        reduce8(self.0)
    }
}

/// The canonical 8-lane reduction tree, spelled out once so the scalar
/// backend, [`super::sum8_by`] and the documentation all share one
/// definition.
#[inline(always)]
pub fn reduce8(l: [f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{Avx2V, Sse2V};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::F32x8;
    use std::arch::x86_64::{
        __m128, __m128i, __m256, __m256i, _mm256_add_ps, _mm256_and_ps, _mm256_castps256_ps128,
        _mm256_cmp_ps, _mm256_cvtepi32_ps, _mm256_cvttps_epi32, _mm256_div_ps,
        _mm256_extractf128_ps, _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_loadu_si256,
        _mm256_max_ps, _mm256_min_ps, _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_and_ps,
        _mm_cmpge_ps, _mm_cvtepi32_ps, _mm_cvtss_f32, _mm_cvttps_epi32, _mm_div_ps, _mm_loadu_ps,
        _mm_max_ps, _mm_min_ps, _mm_movehl_ps, _mm_movemask_ps, _mm_mul_ps, _mm_set1_ps,
        _mm_set_ps, _mm_setzero_ps, _mm_shuffle_ps, _mm_storeu_ps, _mm_sub_ps, _CMP_GE_OQ,
    };

    /// Narrows the two 128-bit halves of an 8-lane accumulator down to one
    /// `f32` following the canonical tree: add the halves lane-wise, add the
    /// high 64 bits onto the low 64, then lane 1 onto lane 0 — i.e.
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, exactly [`super::reduce8`].
    // SAFETY: register-only SSE shuffles/adds; SSE2 is x86_64 baseline, so
    // callers need no extra ISA argument.
    #[inline(always)]
    unsafe fn reduce_halves(lo: __m128, hi: __m128) -> f32 {
        // SAFETY: register-only SSE shuffles/adds (baseline ISA).
        unsafe {
            // s = [l0+l4, l1+l5, l2+l6, l3+l7]
            let s = _mm_add_ps(lo, hi);
            // p = [s0+s2, s1+s3, _, _]
            let p = _mm_add_ps(s, _mm_movehl_ps(s, s));
            // lane 0 of q = p1
            let q = _mm_shuffle_ps::<0b01>(p, p);
            _mm_cvtss_f32(_mm_add_ss(p, q))
        }
    }

    /// SSE2 backend: the 8-lane machine as two `__m128` halves (lanes 0..4
    /// and 4..8).  SSE2 is part of the x86_64 baseline, so this backend is
    /// always available on that architecture.
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2V(__m128, __m128);

    impl F32x8 for Sse2V {
        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn zero() -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_setzero_ps(), _mm_setzero_ps()) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_set1_ps(v), _mm_set1_ps(v)) }
        }

        // SAFETY: reads the caller-guaranteed `src..src+8` span; SSE2 is
        // x86_64 baseline.
        #[inline(always)]
        unsafe fn load(src: *const f32) -> Self {
            // SAFETY: `movups` is alignment-free; `src..src+8` is readable.
            unsafe { Sse2V(_mm_loadu_ps(src), _mm_loadu_ps(src.add(4))) }
        }

        // SAFETY: writes the caller-guaranteed `dst..dst+8` span; SSE2 is
        // x86_64 baseline.
        #[inline(always)]
        unsafe fn store(self, dst: *mut f32) {
            // SAFETY: `movups` is alignment-free; `dst..dst+8` is writable.
            unsafe {
                _mm_storeu_ps(dst, self.0);
                _mm_storeu_ps(dst.add(4), self.1);
            }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_add_ps(self.0, rhs.0), _mm_add_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_mul_ps(self.0, rhs.0), _mm_mul_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn sub(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_sub_ps(self.0, rhs.0), _mm_sub_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn div(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_div_ps(self.0, rhs.0), _mm_div_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_max_ps(self.0, rhs.0), _mm_max_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn min(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_min_ps(self.0, rhs.0), _mm_min_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn trunc(self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe {
                Sse2V(
                    _mm_cvtepi32_ps(_mm_cvttps_epi32(self.0)),
                    _mm_cvtepi32_ps(_mm_cvttps_epi32(self.1)),
                )
            }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn cmp_ge(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_cmpge_ps(self.0, rhs.0), _mm_cmpge_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn and(self, rhs: Self) -> Self {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { Sse2V(_mm_and_ps(self.0, rhs.0), _mm_and_ps(self.1, rhs.1)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn movemask(self) -> u32 {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { (_mm_movemask_ps(self.0) as u32) | ((_mm_movemask_ps(self.1) as u32) << 4) }
        }

        // SAFETY: reads `idx..idx+8` and in-bounds `table` entries per the
        // trait contract; SSE2 is x86_64 baseline.
        #[inline(always)]
        unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
            // SSE2 has no gather instruction; eight scalar loads assembled
            // into lanes are bit-identical to a hardware gather by
            // construction.
            let t = |l: usize| -> f32 {
                // SAFETY: `l < 8`, within the caller-guaranteed `idx` span.
                let i = unsafe { *idx.add(l) } as usize;
                // SAFETY: every gathered index is in bounds per the trait contract.
                unsafe { *table.get_unchecked(i) }
            };
            // SAFETY: register-only lane assembly from the loaded scalars.
            unsafe {
                Sse2V(
                    _mm_set_ps(t(3), t(2), t(1), t(0)),
                    _mm_set_ps(t(7), t(6), t(5), t(4)),
                )
            }
        }

        // SAFETY: register-only lane arithmetic, no memory access; SSE2 is part of the
        // x86_64 baseline, so the intrinsics are always available here.
        #[inline(always)]
        unsafe fn reduce(self) -> f32 {
            // SAFETY: register-only SSE2 lane ops (baseline ISA).
            unsafe { reduce_halves(self.0, self.1) }
        }
    }

    /// AVX2 backend: the 8-lane machine as one `__m256`.  Uses plain
    /// `vmulps`/`vaddps` (never FMA — fusing would round once instead of
    /// twice and change bits) and `vgatherdps` for table lookups.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2V(__m256);

    impl F32x8 for Avx2V {
        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn zero() -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_setzero_ps()) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_set1_ps(v)) }
        }

        // SAFETY: reads the caller-guaranteed `src..src+8` span; AVX2
        // verified at dispatch.
        #[inline(always)]
        unsafe fn load(src: *const f32) -> Self {
            // SAFETY: `vmovups` is alignment-free; `src..src+8` is readable.
            unsafe { Avx2V(_mm256_loadu_ps(src)) }
        }

        // SAFETY: writes the caller-guaranteed `dst..dst+8` span; AVX2
        // verified at dispatch.
        #[inline(always)]
        unsafe fn store(self, dst: *mut f32) {
            // SAFETY: `vmovups` is alignment-free; `dst..dst+8` is writable.
            unsafe { _mm256_storeu_ps(dst, self.0) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_add_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_mul_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn sub(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_sub_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn div(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_div_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_max_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn min(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_min_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn trunc(self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_cvtepi32_ps(_mm256_cvttps_epi32(self.0))) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn cmp_ge(self, rhs: Self) -> Self {
            // `_CMP_GE_OQ`: ordered, non-signaling — NaN lanes compare
            // false, same outcome as SSE2's `cmpgeps` on quiet NaNs.
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_cmp_ps::<_CMP_GE_OQ>(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn and(self, rhs: Self) -> Self {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { Avx2V(_mm256_and_ps(self.0, rhs.0)) }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn movemask(self) -> u32 {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe { _mm256_movemask_ps(self.0) as u32 }
        }

        // SAFETY: reads `idx..idx+8` and in-bounds `table` entries per the
        // trait contract; AVX2 verified at dispatch.
        #[inline(always)]
        unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
            // `vgatherdps` reads the indices as *signed* i32; the dispatch
            // layer asserts `table.len() <= i32::MAX` so every valid index
            // stays non-negative.
            // SAFETY: `idx..idx+8` is readable (unaligned load) and every index
            // is in bounds, so the gather reads only inside `table`.
            unsafe {
                let vindex: __m256i = _mm256_loadu_si256(idx as *const __m256i);
                Avx2V(_mm256_i32gather_ps::<4>(table.as_ptr(), vindex))
            }
        }

        // SAFETY: register-only lane arithmetic, no memory access; the dispatch layer
        // verified AVX2 support before selecting this backend.
        #[inline(always)]
        unsafe fn reduce(self) -> f32 {
            // SAFETY: register-only AVX2 lane ops; ISA verified at dispatch.
            unsafe {
                reduce_halves(
                    _mm256_castps256_ps128(self.0),
                    _mm256_extractf128_ps::<1>(self.0),
                )
            }
        }
    }

    /// Compile-time guard: `__m128i` round-trips the raw index pointer used
    /// by [`Avx2V::gather`]; keep the import anchored even if gather is
    /// refactored.
    const _: fn() = || {
        let _ = std::mem::size_of::<__m128i>;
    };
}
