//! The fixed-width vector abstraction behind the SIMD kernels.
//!
//! Every backend models the **same abstract machine**: eight `f32` lanes,
//! IEEE-754 single-precision multiply and add per lane (no FMA — a fused
//! multiply-add rounds once instead of twice and would change bits), and a
//! horizontal reduction that combines the lanes in one canonical tree:
//!
//! ```text
//! reduce([l0..l7]) = ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
//! ```
//!
//! The tree is exactly what falls out of the natural two-step narrowing on
//! x86 — add the high 128-bit half onto the low half, then the high 64 bits
//! onto the low 64, then lane 1 onto lane 0 — and the scalar backend
//! replays it verbatim.  Because per-lane `mul`/`add` are correctly rounded
//! IEEE operations on every backend and the reduction order is pinned, a
//! generic kernel instantiated with any [`F32x8`] implementation produces
//! **bit-identical** results to the scalar instantiation.

/// Number of `f32` lanes in the abstract vector — fixed at 8 for every
/// backend (AVX2 maps it to one `__m256`, SSE2 to two `__m128`s, the scalar
/// backend to `[f32; 8]`), so the blocking and reduction order — and hence
/// the result bits — never depend on which ISA runs the kernel.
pub const BLOCK: usize = 8;

/// Eight `f32` lanes with IEEE mul/add and the canonical reduction tree.
///
/// # Safety
///
/// All methods are `unsafe` for two reasons: pointer-based `load`/`store`/
/// `gather` trust the caller for bounds, and the x86 implementations must
/// only run on CPUs that support their ISA (guaranteed by the runtime
/// dispatch in [`super::SimdBackend::resolve`]).
pub(crate) trait F32x8: Copy {
    /// All lanes `+0.0`.
    unsafe fn zero() -> Self;
    /// All lanes `v`.
    unsafe fn splat(v: f32) -> Self;
    /// Loads lanes `0..8` from `src` (unaligned).
    unsafe fn load(src: *const f32) -> Self;
    /// Stores lanes `0..8` to `dst` (unaligned).
    unsafe fn store(self, dst: *mut f32);
    /// Lane-wise IEEE single add.
    unsafe fn add(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single multiply.
    unsafe fn mul(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single subtract.
    unsafe fn sub(self, rhs: Self) -> Self;
    /// Lane-wise IEEE single divide.
    unsafe fn div(self, rhs: Self) -> Self;
    /// Lane-wise maximum with the **canonical x86 semantics**
    /// `max(a, b) = if a > b { a } else { b }` — returns the *second*
    /// operand when the lanes compare unordered (NaN) or equal, exactly
    /// like `maxps`.  This is *not* `f32::max` (which is NaN-commutative);
    /// the scalar backend and [`super::lane_max`] replicate the x86 rule so
    /// every backend agrees bit for bit.
    unsafe fn max(self, rhs: Self) -> Self;
    /// Lane-wise minimum with the canonical x86 semantics
    /// `min(a, b) = if a < b { a } else { b }` (see [`F32x8::max`]).
    unsafe fn min(self, rhs: Self) -> Self;
    /// Lane-wise round-toward-zero to a whole number, via the x86
    /// `cvttps2dq`/`cvtdq2ps` pair (SSE2 has no float rounding
    /// instruction).  **Precondition:** every lane is finite with
    /// `|x| < 2^31`; outside that domain the i32 round-trip saturates
    /// differently per backend.  The coding kernels keep lanes in
    /// `[0, 2^24]`, where the round-trip is exact and equals `f32::trunc`.
    unsafe fn trunc(self) -> Self;
    /// Lane-wise ordered `>=` compare producing a mask: all-ones bits where
    /// `self >= rhs`, `+0.0` otherwise.  Unordered (NaN) lanes compare
    /// false, exactly like `cmpps`.
    unsafe fn cmp_ge(self, rhs: Self) -> Self;
    /// Lane-wise bitwise AND — combines a [`F32x8::cmp_ge`] mask with a
    /// value vector (`mask & v` keeps `v` in true lanes, `+0.0` in false
    /// lanes).
    unsafe fn and(self, rhs: Self) -> Self;
    /// Packs the sign bit of each lane into bit `l` of the result, exactly
    /// like `movmskps`.  Applied to a [`F32x8::cmp_ge`] mask this yields
    /// one bit per lane of the compare outcome.
    unsafe fn movemask(self) -> u32;
    /// Lane `l` = `table[idx[l]]` for `idx[0..8]`; all indices must be in
    /// bounds (no backend checks them).
    unsafe fn gather(table: &[f32], idx: *const u32) -> Self;
    /// Horizontal sum in the canonical fixed tree (see module docs).
    unsafe fn reduce(self) -> f32;
}

/// Portable backend: eight plain `f32`s.  This is the *reference semantics*
/// of the abstract machine — the SIMD backends are correct exactly when
/// they match it bit for bit.
#[derive(Clone, Copy)]
pub(crate) struct ScalarV([f32; 8]);

impl F32x8 for ScalarV {
    #[inline(always)]
    unsafe fn zero() -> Self {
        ScalarV([0.0; 8])
    }

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarV([v; 8])
    }

    #[inline(always)]
    unsafe fn load(src: *const f32) -> Self {
        let mut lanes = [0.0f32; 8];
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = unsafe { *src.add(l) };
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn store(self, dst: *mut f32) {
        for (l, lane) in self.0.iter().enumerate() {
            unsafe { *dst.add(l) = *lane };
        }
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane *= r;
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane -= r;
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane /= r;
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = super::lane_max(*lane, r);
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = super::lane_min(*lane, r);
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn trunc(self) -> Self {
        // Within the documented |x| < 2^31 precondition `f32::trunc` is
        // exactly the cvttps2dq/cvtdq2ps round-trip.
        let mut lanes = self.0;
        for lane in lanes.iter_mut() {
            *lane = lane.trunc();
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn cmp_ge(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = if *lane >= r {
                f32::from_bits(u32::MAX)
            } else {
                0.0
            };
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn and(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane = f32::from_bits(lane.to_bits() & r.to_bits());
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn movemask(self) -> u32 {
        let mut m = 0u32;
        for (l, lane) in self.0.iter().enumerate() {
            m |= (lane.to_bits() >> 31) << l;
        }
        m
    }

    #[inline(always)]
    unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
        let mut lanes = [0.0f32; 8];
        for (l, lane) in lanes.iter_mut().enumerate() {
            let i = unsafe { *idx.add(l) } as usize;
            *lane = unsafe { *table.get_unchecked(i) };
        }
        ScalarV(lanes)
    }

    #[inline(always)]
    unsafe fn reduce(self) -> f32 {
        reduce8(self.0)
    }
}

/// The canonical 8-lane reduction tree, spelled out once so the scalar
/// backend, [`super::sum8_by`] and the documentation all share one
/// definition.
#[inline(always)]
pub fn reduce8(l: [f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{Avx2V, Sse2V};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::F32x8;
    use std::arch::x86_64::{
        __m128, __m128i, __m256, __m256i, _mm256_add_ps, _mm256_and_ps, _mm256_castps256_ps128,
        _mm256_cmp_ps, _mm256_cvtepi32_ps, _mm256_cvttps_epi32, _mm256_div_ps,
        _mm256_extractf128_ps, _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_loadu_si256,
        _mm256_max_ps, _mm256_min_ps, _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_and_ps,
        _mm_cmpge_ps, _mm_cvtepi32_ps, _mm_cvtss_f32, _mm_cvttps_epi32, _mm_div_ps, _mm_loadu_ps,
        _mm_max_ps, _mm_min_ps, _mm_movehl_ps, _mm_movemask_ps, _mm_mul_ps, _mm_set1_ps,
        _mm_set_ps, _mm_setzero_ps, _mm_shuffle_ps, _mm_storeu_ps, _mm_sub_ps, _CMP_GE_OQ,
    };

    /// Narrows the two 128-bit halves of an 8-lane accumulator down to one
    /// `f32` following the canonical tree: add the halves lane-wise, add the
    /// high 64 bits onto the low 64, then lane 1 onto lane 0 — i.e.
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, exactly [`super::reduce8`].
    #[inline(always)]
    unsafe fn reduce_halves(lo: __m128, hi: __m128) -> f32 {
        unsafe {
            // s = [l0+l4, l1+l5, l2+l6, l3+l7]
            let s = _mm_add_ps(lo, hi);
            // p = [s0+s2, s1+s3, _, _]
            let p = _mm_add_ps(s, _mm_movehl_ps(s, s));
            // lane 0 of q = p1
            let q = _mm_shuffle_ps::<0b01>(p, p);
            _mm_cvtss_f32(_mm_add_ss(p, q))
        }
    }

    /// SSE2 backend: the 8-lane machine as two `__m128` halves (lanes 0..4
    /// and 4..8).  SSE2 is part of the x86_64 baseline, so this backend is
    /// always available on that architecture.
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2V(__m128, __m128);

    impl F32x8 for Sse2V {
        #[inline(always)]
        unsafe fn zero() -> Self {
            unsafe { Sse2V(_mm_setzero_ps(), _mm_setzero_ps()) }
        }

        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            unsafe { Sse2V(_mm_set1_ps(v), _mm_set1_ps(v)) }
        }

        #[inline(always)]
        unsafe fn load(src: *const f32) -> Self {
            unsafe { Sse2V(_mm_loadu_ps(src), _mm_loadu_ps(src.add(4))) }
        }

        #[inline(always)]
        unsafe fn store(self, dst: *mut f32) {
            unsafe {
                _mm_storeu_ps(dst, self.0);
                _mm_storeu_ps(dst.add(4), self.1);
            }
        }

        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_add_ps(self.0, rhs.0), _mm_add_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_mul_ps(self.0, rhs.0), _mm_mul_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn sub(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_sub_ps(self.0, rhs.0), _mm_sub_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn div(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_div_ps(self.0, rhs.0), _mm_div_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_max_ps(self.0, rhs.0), _mm_max_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn min(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_min_ps(self.0, rhs.0), _mm_min_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn trunc(self) -> Self {
            unsafe {
                Sse2V(
                    _mm_cvtepi32_ps(_mm_cvttps_epi32(self.0)),
                    _mm_cvtepi32_ps(_mm_cvttps_epi32(self.1)),
                )
            }
        }

        #[inline(always)]
        unsafe fn cmp_ge(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_cmpge_ps(self.0, rhs.0), _mm_cmpge_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn and(self, rhs: Self) -> Self {
            unsafe { Sse2V(_mm_and_ps(self.0, rhs.0), _mm_and_ps(self.1, rhs.1)) }
        }

        #[inline(always)]
        unsafe fn movemask(self) -> u32 {
            unsafe { (_mm_movemask_ps(self.0) as u32) | ((_mm_movemask_ps(self.1) as u32) << 4) }
        }

        #[inline(always)]
        unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
            // SSE2 has no gather instruction; eight scalar loads assembled
            // into lanes are bit-identical to a hardware gather by
            // construction.
            let t = |l: usize| -> f32 {
                let i = unsafe { *idx.add(l) } as usize;
                unsafe { *table.get_unchecked(i) }
            };
            unsafe {
                Sse2V(
                    _mm_set_ps(t(3), t(2), t(1), t(0)),
                    _mm_set_ps(t(7), t(6), t(5), t(4)),
                )
            }
        }

        #[inline(always)]
        unsafe fn reduce(self) -> f32 {
            unsafe { reduce_halves(self.0, self.1) }
        }
    }

    /// AVX2 backend: the 8-lane machine as one `__m256`.  Uses plain
    /// `vmulps`/`vaddps` (never FMA — fusing would round once instead of
    /// twice and change bits) and `vgatherdps` for table lookups.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2V(__m256);

    impl F32x8 for Avx2V {
        #[inline(always)]
        unsafe fn zero() -> Self {
            unsafe { Avx2V(_mm256_setzero_ps()) }
        }

        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            unsafe { Avx2V(_mm256_set1_ps(v)) }
        }

        #[inline(always)]
        unsafe fn load(src: *const f32) -> Self {
            unsafe { Avx2V(_mm256_loadu_ps(src)) }
        }

        #[inline(always)]
        unsafe fn store(self, dst: *mut f32) {
            unsafe { _mm256_storeu_ps(dst, self.0) }
        }

        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_add_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_mul_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn sub(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_sub_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn div(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_div_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_max_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn min(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_min_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn trunc(self) -> Self {
            unsafe { Avx2V(_mm256_cvtepi32_ps(_mm256_cvttps_epi32(self.0))) }
        }

        #[inline(always)]
        unsafe fn cmp_ge(self, rhs: Self) -> Self {
            // `_CMP_GE_OQ`: ordered, non-signaling — NaN lanes compare
            // false, same outcome as SSE2's `cmpgeps` on quiet NaNs.
            unsafe { Avx2V(_mm256_cmp_ps::<_CMP_GE_OQ>(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn and(self, rhs: Self) -> Self {
            unsafe { Avx2V(_mm256_and_ps(self.0, rhs.0)) }
        }

        #[inline(always)]
        unsafe fn movemask(self) -> u32 {
            unsafe { _mm256_movemask_ps(self.0) as u32 }
        }

        #[inline(always)]
        unsafe fn gather(table: &[f32], idx: *const u32) -> Self {
            // `vgatherdps` reads the indices as *signed* i32; the dispatch
            // layer asserts `table.len() <= i32::MAX` so every valid index
            // stays non-negative.
            unsafe {
                let vindex: __m256i = _mm256_loadu_si256(idx as *const __m256i);
                Avx2V(_mm256_i32gather_ps::<4>(table.as_ptr(), vindex))
            }
        }

        #[inline(always)]
        unsafe fn reduce(self) -> f32 {
            unsafe {
                reduce_halves(
                    _mm256_castps256_ps128(self.0),
                    _mm256_extractf128_ps::<1>(self.0),
                )
            }
        }
    }

    /// Compile-time guard: `__m128i` round-trips the raw index pointer used
    /// by [`Avx2V::gather`]; keep the import anchored even if gather is
    /// refactored.
    const _: fn() = || {
        let _ = std::mem::size_of::<__m128i>;
    };
}
