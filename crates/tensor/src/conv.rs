//! Convolution and pooling geometry helpers.
//!
//! The DNN crate implements `Conv2d` layers via `im2col`: each convolution
//! becomes a single matrix multiplication between the unrolled input patches
//! and the flattened kernel bank, which keeps the training code simple and
//! reasonably fast for the laptop-scale models used in the reproduction.

use serde::{Deserialize, Serialize};

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution over an input feature map stored as
/// `(channels, height, width)` in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Number of input channels.
    pub in_channels: usize,
    /// Input height in pixels.
    pub in_height: usize,
    /// Input width in pixels.
    pub in_width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding added symmetrically to both sides.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry and validates that the output is non-empty.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit the
    /// padded input or any dimension is zero.
    pub fn new(
        in_channels: usize,
        in_height: usize,
        in_width: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if in_channels == 0 || in_height == 0 || in_width == 0 || kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "conv2d dimensions must be non-zero".to_string(),
            ));
        }
        if in_height + 2 * padding < kernel || in_width + 2 * padding < kernel {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel} larger than padded input {}x{}",
                in_height + 2 * padding,
                in_width + 2 * padding
            )));
        }
        Ok(Conv2dGeometry {
            in_channels,
            in_height,
            in_width,
            kernel,
            stride,
            padding,
        })
    }

    /// Output height of the convolution.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width of the convolution.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of elements in one unrolled patch (`C·K·K`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of spatial output positions (`H_out·W_out`).
    pub fn out_positions(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Number of elements in the input feature map (`C·H·W`).
    pub fn in_len(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }
}

/// Unrolls an input feature map (flat `C·H·W` vector) into a patch matrix of
/// shape `(out_positions, patch_len)` suitable for convolution by matmul.
///
/// # Errors
/// Returns [`TensorError::ShapeDataMismatch`] if `input.len()` does not match
/// the geometry.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let mut out = Vec::new();
    im2col_into(input, geom, &mut out)?;
    Tensor::from_vec(out, &[geom.out_positions(), geom.patch_len()])
}

/// [`im2col`] into a reusable buffer: clears `out`, resizes it to
/// `out_positions·patch_len` (keeping its capacity) and writes the unrolled
/// patch matrix in row-major order.
///
/// # Errors
/// Same as [`im2col`].
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut Vec<f32>) -> Result<()> {
    if input.len() != geom.in_len() {
        return Err(TensorError::ShapeDataMismatch {
            elements: input.len(),
            expected: geom.in_len(),
        });
    }
    out.clear();
    out.resize(geom.out_positions() * geom.patch_len(), 0.0);
    im2col_slices(input.as_slice(), geom, out);
    Ok(())
}

/// Raw kernel behind [`im2col`]: unrolls a flat `C·H·W` input into the
/// caller-provided patch matrix buffer, overwriting it.
///
/// Dispatches to the runtime-selected SIMD backend (see [`crate::simd`]):
/// each kernel row of a patch becomes "zero-fill padding, bulk-copy the
/// valid span, zero-fill padding", which is bitwise-identical on every
/// backend by construction (it only moves and zeroes values).
///
/// # Panics
/// Asserts the slice lengths before touching any data.
pub fn im2col_slices(x: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    crate::simd::im2col_slices_with(crate::simd::active_backend(), x, geom, out);
}

/// Scatters a patch matrix of shape `(out_positions, patch_len)` back into a
/// flat input-feature-map gradient (`C·H·W`), accumulating overlapping
/// contributions. This is the adjoint of [`im2col`] and is used by the
/// convolution backward pass.
///
/// # Errors
/// Returns [`TensorError::ShapeDataMismatch`] if `cols` has the wrong size.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let expected = geom.out_positions() * geom.patch_len();
    if cols.len() != expected {
        return Err(TensorError::ShapeDataMismatch {
            elements: cols.len(),
            expected,
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_height, geom.in_width);
    let k = geom.kernel;
    let (oh, ow) = (geom.out_height(), geom.out_width());
    let cv = cols.as_slice();
    let mut out = vec![0.0f32; geom.in_len()];
    let mut row = 0usize;
    for oy in 0..oh {
        for ox in 0..ow {
            let base = row * geom.patch_len();
            let mut idx = 0usize;
            for ci in 0..c {
                for ky in 0..k {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for kx in 0..k {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            out[ci * h * w + iy as usize * w + ix as usize] += cv[base + idx];
                        }
                        idx += 1;
                    }
                }
            }
            row += 1;
        }
    }
    Tensor::from_vec(out, &[geom.in_len()])
}

/// Geometry of a 2-D max/average pooling operation over a `(C, H, W)` map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dGeometry {
    /// Number of channels (unchanged by pooling).
    pub channels: usize,
    /// Input height in pixels.
    pub in_height: usize,
    /// Input width in pixels.
    pub in_width: usize,
    /// Square pooling window size.
    pub window: usize,
    /// Stride (commonly equal to the window).
    pub stride: usize,
}

impl Pool2dGeometry {
    /// Creates a pooling geometry.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidGeometry`] if the window does not fit or
    /// any dimension is zero.
    pub fn new(
        channels: usize,
        in_height: usize,
        in_width: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if channels == 0 || in_height == 0 || in_width == 0 || window == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "pool2d dimensions must be non-zero".to_string(),
            ));
        }
        if window > in_height || window > in_width {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {window} larger than input {in_height}x{in_width}"
            )));
        }
        Ok(Pool2dGeometry {
            channels,
            in_height,
            in_width,
            window,
            stride,
        })
    }

    /// Output height of the pooling.
    pub fn out_height(&self) -> usize {
        (self.in_height - self.window) / self.stride + 1
    }

    /// Output width of the pooling.
    pub fn out_width(&self) -> usize {
        (self.in_width - self.window) / self.stride + 1
    }

    /// Number of input elements (`C·H·W`).
    pub fn in_len(&self) -> usize {
        self.channels * self.in_height * self.in_width
    }

    /// Number of output elements (`C·H_out·W_out`).
    pub fn out_len(&self) -> usize {
        self.channels * self.out_height() * self.out_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_geom() -> Conv2dGeometry {
        Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap()
    }

    #[test]
    fn conv_geometry_output_dims() {
        let g = Conv2dGeometry::new(3, 16, 16, 3, 1, 1).unwrap();
        assert_eq!(g.out_height(), 16);
        assert_eq!(g.out_width(), 16);
        assert_eq!(g.patch_len(), 27);

        let g2 = Conv2dGeometry::new(1, 28, 28, 5, 1, 0).unwrap();
        assert_eq!(g2.out_height(), 24);
    }

    #[test]
    fn conv_geometry_rejects_bad_params() {
        assert!(Conv2dGeometry::new(0, 8, 8, 3, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 8, 8, 3, 0, 0).is_err());
    }

    #[test]
    fn im2col_known_patches() {
        let g = simple_geom();
        let input = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // first patch = top-left 2x2 window
        assert_eq!(cols.row(0).unwrap().as_slice(), &[1.0, 2.0, 4.0, 5.0]);
        // last patch = bottom-right 2x2 window
        assert_eq!(cols.row(3).unwrap().as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_with_padding_zero_borders() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1).unwrap();
        let input = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // Patch centred at (0,0): first row/col are padding.
        assert_eq!(
            cols.row(0).unwrap().as_slice(),
            &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]
        );
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_disjoint_patches() {
        // stride == kernel -> patches are disjoint, so col2im(im2col(x)) == x.
        let g = Conv2dGeometry::new(1, 4, 4, 2, 2, 0).unwrap();
        let input = Tensor::from_slice(&[
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
        ]);
        let cols = im2col(&input, &g).unwrap();
        let back = col2im(&cols, &g).unwrap();
        assert_eq!(back.as_slice(), input.as_slice());
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        let g = simple_geom();
        let ones = Tensor::ones(&[g.out_positions(), g.patch_len()]);
        let acc = col2im(&ones, &g).unwrap();
        // centre pixel of a 3x3 input is covered by all four 2x2 patches.
        assert_eq!(acc.get(&[4]).unwrap(), 4.0);
        // corner pixel only by one.
        assert_eq!(acc.get(&[0]).unwrap(), 1.0);
    }

    #[test]
    fn pool_geometry() {
        let g = Pool2dGeometry::new(3, 16, 16, 2, 2).unwrap();
        assert_eq!(g.out_height(), 8);
        assert_eq!(g.out_len(), 3 * 8 * 8);
        assert!(Pool2dGeometry::new(3, 2, 2, 4, 2).is_err());
    }

    #[test]
    fn im2col_wrong_input_len() {
        let g = simple_geom();
        let bad = Tensor::zeros(&[5]);
        assert!(im2col(&bad, &g).is_err());
        let mut buf = Vec::new();
        assert!(im2col_into(&bad, &g, &mut buf).is_err());
    }

    #[test]
    fn im2col_into_matches_allocating_path_and_reuses_capacity() {
        let g = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let input = Tensor::from_vec((0..32).map(|v| v as f32 * 0.25 - 3.0).collect(), &[32])
            .unwrap()
            .reshape(&[32])
            .unwrap();
        let reference = im2col(&input, &g).unwrap();
        let mut buf = vec![42.0f32; 3]; // dirty, wrongly sized: must be reset
        im2col_into(&input, &g, &mut buf).unwrap();
        assert_eq!(buf, reference.as_slice());
        let cap = buf.capacity();
        im2col_into(&input, &g, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);
    }
}
