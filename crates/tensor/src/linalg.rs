//! Dense linear-algebra kernels: matrix multiplication, matrix-vector
//! products, transposition and outer products.

use crate::{Result, Tensor, TensorError};

/// Multiplies two rank-2 tensors: `(m x k) · (k x n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// ```
/// use nrsnn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), nrsnn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 2, "matmul")?;
    ensure_rank(b, 2, "matmul")?;
    let (m, k1) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    // ikj loop order keeps the inner loop contiguous over `b` and `out`.
    for i in 0..m {
        for k in 0..k1 {
            let aik = av[i * k1 + k];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bv[k * n..(k + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Multiplies a rank-2 matrix `(m x n)` by a rank-1 vector of length `n`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] for
/// invalid operands.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 2, "matvec")?;
    ensure_rank(x, 1, "matvec")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec",
        });
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &av[i * n..(i + 1) * n];
        out[i] = row.iter().zip(xv).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec(out, &[m])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 2, "transpose")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Outer product of two rank-1 tensors: `(m) ⊗ (n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 1.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 1, "outer")?;
    ensure_rank(b, 1, "outer")?;
    let (m, n) = (a.len(), b.len());
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = av[i] * bv[j];
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn ensure_rank(t: &Tensor, rank: usize, op: &'static str) -> Result<()> {
    if t.shape().rank() != rank {
        return Err(TensorError::RankMismatch {
            expected: rank,
            actual: t.shape().rank(),
            op,
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix multiplication; see [`matmul`].
    ///
    /// # Errors
    /// Same as [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Matrix transposition; see [`transpose`].
    ///
    /// # Errors
    /// Same as [`transpose`].
    pub fn transpose(&self) -> Result<Tensor> {
        transpose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let c = matmul(&a, &i).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_known_values() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap();
        let x = Tensor::from_slice(&[3.0, 4.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), 6.0);
        let tt = transpose(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn rank_checks() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let m = Tensor::zeros(&[2, 2]);
        assert!(matmul(&v, &m).is_err());
        assert!(matvec(&v, &v).is_err());
        assert!(transpose(&v).is_err());
        assert!(outer(&m, &v).is_err());
    }

    #[test]
    fn matmul_matvec_agree() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0, 2.0]);
        let via_matvec = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[3, 1]).unwrap();
        let via_matmul = matmul(&a, &xm).unwrap();
        assert_eq!(via_matvec.as_slice(), via_matmul.as_slice());
    }
}
