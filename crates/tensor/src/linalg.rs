//! Dense linear-algebra kernels: matrix multiplication, matrix-vector
//! products, transposition and outer products.
//!
//! Every kernel exists in three forms that share one implementation, so the
//! numeric result is bit-identical whichever entry point is used:
//!
//! * a raw slice kernel (`matmul_slices`, …) writing into a caller-provided
//!   buffer — the allocation-free form used by the simulation workspace;
//! * an `_into` variant (`matmul_into`, …) operating on [`Tensor`]s but
//!   reusing the caller's output `Vec` (cleared and resized, capacity kept);
//! * the original allocating function (`matmul`, …), now a thin wrapper that
//!   allocates a fresh output and delegates to the `_into` variant.

use crate::{Result, Tensor, TensorError};

/// Raw kernel behind [`matmul`]: multiplies `a (m x k)` by `b (k x n)` into
/// `out (m x n)`, overwriting it.
///
/// # Panics
/// Debug-asserts the slice lengths; callers validate shapes.
pub fn matmul_slices(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for o in out.iter_mut() {
        *o = 0.0;
    }
    // ikj loop order keeps the inner loop contiguous over `b` and `out`.
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

/// Raw kernel behind [`matvec`]: multiplies `a (m x n)` by `x (n)` into
/// `out (m)`, overwriting it.
///
/// # Panics
/// Debug-asserts the slice lengths; callers validate shapes.
pub fn matvec_slices(a: &[f32], m: usize, n: usize, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(out.len(), m);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        out[i] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
    }
}

/// Raw kernel behind [`transpose`]: writes the transpose of `a (m x n)` into
/// `out (n x m)`, overwriting it.
///
/// # Panics
/// Debug-asserts the slice lengths; callers validate shapes.
pub fn transpose_slices(a: &[f32], m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

fn reuse(buffer: &mut Vec<f32>, len: usize) -> &mut [f32] {
    buffer.clear();
    buffer.resize(len, 0.0);
    buffer
}

/// [`matmul`] into a reusable buffer: clears `out`, resizes it to `m·n`
/// (keeping its capacity) and writes the product.
///
/// # Errors
/// Same as [`matmul`].
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "matmul")?;
    ensure_rank(b, 2, "matmul")?;
    let (m, k1) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    matmul_slices(a.as_slice(), m, k1, b.as_slice(), n, reuse(out, m * n));
    Ok(())
}

/// [`matvec`] into a reusable buffer: clears `out`, resizes it to `m`
/// (keeping its capacity) and writes the product.
///
/// # Errors
/// Same as [`matvec`].
pub fn matvec_into(a: &Tensor, x: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "matvec")?;
    ensure_rank(x, 1, "matvec")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec",
        });
    }
    matvec_slices(a.as_slice(), m, n, x.as_slice(), reuse(out, m));
    Ok(())
}

/// [`transpose`] into a reusable buffer: clears `out`, resizes it to `m·n`
/// (keeping its capacity) and writes the transpose.
///
/// # Errors
/// Same as [`transpose`].
pub fn transpose_into(a: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "transpose")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    transpose_slices(a.as_slice(), m, n, reuse(out, m * n));
    Ok(())
}

/// Multiplies two rank-2 tensors: `(m x k) · (k x n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// ```
/// use nrsnn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), nrsnn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    matmul_into(a, b, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[0], b.dims()[1]])
}

/// Multiplies a rank-2 matrix `(m x n)` by a rank-1 vector of length `n`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] for
/// invalid operands.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    matvec_into(a, x, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[0]])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    transpose_into(a, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[1], a.dims()[0]])
}

/// Outer product of two rank-1 tensors: `(m) ⊗ (n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 1.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 1, "outer")?;
    ensure_rank(b, 1, "outer")?;
    let (m, n) = (a.len(), b.len());
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = av[i] * bv[j];
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn ensure_rank(t: &Tensor, rank: usize, op: &'static str) -> Result<()> {
    if t.shape().rank() != rank {
        return Err(TensorError::RankMismatch {
            expected: rank,
            actual: t.shape().rank(),
            op,
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix multiplication; see [`matmul`].
    ///
    /// # Errors
    /// Same as [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Matrix transposition; see [`transpose`].
    ///
    /// # Errors
    /// Same as [`transpose`].
    pub fn transpose(&self) -> Result<Tensor> {
        transpose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let c = matmul(&a, &i).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_known_values() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap();
        let x = Tensor::from_slice(&[3.0, 4.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), 6.0);
        let tt = transpose(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn rank_checks() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let m = Tensor::zeros(&[2, 2]);
        assert!(matmul(&v, &m).is_err());
        assert!(matvec(&v, &v).is_err());
        assert!(transpose(&v).is_err());
        assert!(outer(&m, &v).is_err());
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let a = Tensor::from_vec(vec![1.0, -2.5, 0.0, 4.0, 0.125, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 1.0, -1.0, 2.0, 3.0, -0.75], &[3, 2]).unwrap();
        let x = Tensor::from_slice(&[1.5, -0.5, 2.0]);

        let mut buf = vec![9.0f32; 1]; // dirty, wrongly sized: must be reset
        matmul_into(&a, &b, &mut buf).unwrap();
        assert_eq!(buf, matmul(&a, &b).unwrap().into_vec());

        matvec_into(&a, &x, &mut buf).unwrap();
        assert_eq!(buf, matvec(&a, &x).unwrap().into_vec());

        transpose_into(&a, &mut buf).unwrap();
        assert_eq!(buf, transpose(&a).unwrap().into_vec());
    }

    #[test]
    fn into_variants_reuse_capacity() {
        let a = Tensor::eye(4);
        let mut buf = Vec::with_capacity(64);
        matmul_into(&a, &a, &mut buf).unwrap();
        let cap = buf.capacity();
        matmul_into(&a, &a, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf, Tensor::eye(4).into_vec());
    }

    #[test]
    fn into_variants_validate_shapes() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let m = Tensor::zeros(&[2, 3]);
        let mut buf = Vec::new();
        assert!(matmul_into(&m, &m, &mut buf).is_err());
        assert!(matvec_into(&m, &m, &mut buf).is_err());
        assert!(matvec_into(&m, &Tensor::from_slice(&[1.0]), &mut buf).is_err());
        assert!(transpose_into(&v, &mut buf).is_err());
    }

    #[test]
    fn matmul_matvec_agree() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0, 2.0]);
        let via_matvec = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[3, 1]).unwrap();
        let via_matmul = matmul(&a, &xm).unwrap();
        assert_eq!(via_matvec.as_slice(), via_matmul.as_slice());
    }
}
